//! Vendored minimal stand-in for the [`serde`](https://serde.rs) crate,
//! used because the build environment has no registry access.
//!
//! The design is a simplification of real serde: instead of a streaming
//! visitor architecture, serialization goes through an owned, JSON-shaped
//! [`Value`] tree.  The public trait names and signatures mirror the subset
//! of the real API this workspace uses, so the SRLB crates compile
//! unchanged:
//!
//! * [`Serialize`] / [`Deserialize`] traits (and, with the `derive` feature,
//!   the matching derive macros re-exported from `serde_derive`),
//! * [`Serializer`] / [`Deserializer`] traits for hand-written `with`
//!   modules (e.g. the `Bytes` field helper in `srlb-net`),
//! * [`ser::Error`] / [`de::Error`] constructor traits.
//!
//! `serde_json` (also vendored) provides the concrete JSON front end.

use std::net::Ipv6Addr;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (used for `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence of values.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, enum tags).
    Map(Vec<(String, Value)>),
}

/// Serialization half of the data model.
pub mod ser {
    use std::fmt::Display;

    /// Errors producible by a [`Serializer`](super::Serializer).
    pub trait Error: Sized + std::fmt::Debug + Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization half of the data model.
pub mod de {
    use std::fmt::Display;

    /// Errors producible by a [`Deserializer`](super::Deserializer).
    pub trait Error: Sized + std::fmt::Debug + Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A data format that can consume the [`Value`] data model.
pub trait Serializer: Sized {
    /// Output type produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: ser::Error;

    /// Consumes a fully built [`Value`].
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a byte slice (as a sequence of integers).
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Seq(
            v.iter().map(|&b| Value::UInt(b as u64)).collect(),
        ))
    }
}

/// A data format that can produce the [`Value`] data model.
pub trait Deserializer<'de>: Sized {
    /// Error type produced on failure.
    type Error: de::Error;

    /// Yields the input as a fully built [`Value`].
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A value that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes an instance of `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// [`Value`]-backed [`Serializer`] / [`Deserializer`] implementations.
pub mod value {
    use super::{de, ser, Deserializer, Serializer, Value};
    use std::fmt;

    /// Error for value-tree (de)serialization; also the bridge error type
    /// the derive macros route through [`de::Error::custom`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ValueError(pub String);

    impl fmt::Display for ValueError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for ValueError {}

    impl ser::Error for ValueError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            ValueError(msg.to_string())
        }
    }

    impl de::Error for ValueError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            ValueError(msg.to_string())
        }
    }

    /// Serializer that materializes the [`Value`] tree itself.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = ValueError;

        fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
            Ok(value)
        }
    }

    /// Deserializer reading from an owned [`Value`] tree.
    #[derive(Debug, Clone)]
    pub struct ValueDeserializer {
        value: Value,
    }

    impl ValueDeserializer {
        /// Wraps an owned value.
        pub fn new(value: Value) -> Self {
            ValueDeserializer { value }
        }
    }

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = ValueError;

        fn take_value(self) -> Result<Value, ValueError> {
            Ok(self.value)
        }
    }
}

/// Serializes `value` into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, value::ValueError> {
    value.serialize(value::ValueSerializer)
}

/// Deserializes a `T` out of an owned [`Value`].
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, value::ValueError> {
    T::deserialize(value::ValueDeserializer::new(value))
}

/// Support machinery for the derive macros; not part of the public API.
pub mod __private {
    use super::value::{ValueDeserializer, ValueError};
    use super::{Deserialize, Value};

    /// Removes field `name` from a struct map and deserializes it.
    pub fn take_field<'de, T: Deserialize<'de>>(
        map: &mut Vec<(String, Value)>,
        name: &str,
    ) -> Result<T, ValueError> {
        match map.iter().position(|(k, _)| k == name) {
            Some(i) => {
                let (_, v) = map.remove(i);
                T::deserialize(ValueDeserializer::new(v))
            }
            None => Err(ValueError(format!("missing field `{name}`"))),
        }
    }

    /// Removes field `name` and returns its raw [`Value`], or `None` if the
    /// field is absent (for `#[serde(default)]` fields).
    pub fn opt_field_value(map: &mut Vec<(String, Value)>, name: &str) -> Option<Value> {
        map.iter()
            .position(|(k, _)| k == name)
            .map(|i| map.remove(i).1)
    }

    /// Removes field `name` and returns its raw [`Value`] (for `with`
    /// modules).
    pub fn take_field_value(
        map: &mut Vec<(String, Value)>,
        name: &str,
    ) -> Result<Value, ValueError> {
        match map.iter().position(|(k, _)| k == name) {
            Some(i) => Ok(map.remove(i).1),
            None => Err(ValueError(format!("missing field `{name}`"))),
        }
    }

    /// Interprets a value as a struct map.
    pub fn expect_map(value: Value, what: &str) -> Result<Vec<(String, Value)>, ValueError> {
        match value {
            Value::Map(m) => Ok(m),
            other => Err(ValueError(format!(
                "expected map for {what}, found {other:?}"
            ))),
        }
    }

    /// Interprets a value as a sequence of exactly `n` elements.
    pub fn expect_seq(value: Value, n: usize, what: &str) -> Result<Vec<Value>, ValueError> {
        match value {
            Value::Seq(s) if s.len() == n => Ok(s),
            other => Err(ValueError(format!(
                "expected sequence of {n} elements for {what}, found {other:?}"
            ))),
        }
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.serialize_value(Value::UInt(*self as u64))
                }
            }

            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    let v = deserializer.take_value()?;
                    let n: u64 = match v {
                        Value::UInt(n) => n,
                        Value::Int(n) if n >= 0 => n as u64,
                        Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                            f as u64
                        }
                        other => {
                            return Err(de::Error::custom(format!(
                                concat!("expected ", stringify!($t), ", found {:?}"),
                                other
                            )))
                        }
                    };
                    <$t>::try_from(n).map_err(|_| {
                        de::Error::custom(format!(
                            concat!("value {} out of range for ", stringify!($t)),
                            n
                        ))
                    })
                }
            }
        )*
    };
}

impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.serialize_value(Value::Int(*self as i64))
                }
            }

            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    let v = deserializer.take_value()?;
                    let n: i64 = match v {
                        Value::Int(n) => n,
                        Value::UInt(n) if n <= i64::MAX as u64 => n as i64,
                        Value::Float(f)
                            if f.fract() == 0.0
                                && f >= i64::MIN as f64
                                && f <= i64::MAX as f64 =>
                        {
                            f as i64
                        }
                        other => {
                            return Err(de::Error::custom(format!(
                                concat!("expected ", stringify!($t), ", found {:?}"),
                                other
                            )))
                        }
                    };
                    <$t>::try_from(n).map_err(|_| {
                        de::Error::custom(format!(
                            concat!("value {} out of range for ", stringify!($t)),
                            n
                        ))
                    })
                }
            }
        )*
    };
}

impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Float(f) => Ok(f),
            Value::Int(n) => Ok(n as f64),
            Value::UInt(n) => Ok(n as f64),
            // The JSON writer encodes NaN as null (JSON has no NaN).
            Value::Null => Ok(f64::NAN),
            other => Err(de::Error::custom(format!("expected f64, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self as f64))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!(
                "expected string, found {other:?}"
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(de::Error::custom(format!("expected char, found {other:?}"))),
        }
    }
}

impl Serialize for Ipv6Addr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for Ipv6Addr {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => s
                .parse()
                .map_err(|e| de::Error::custom(format!("invalid IPv6 address `{s}`: {e}"))),
            other => Err(de::Error::custom(format!(
                "expected IPv6 address string, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => {
                let value = to_value(v).map_err(ser::Error::custom)?;
                serializer.serialize_value(value)
            }
            None => serializer.serialize_value(Value::Null),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            v => from_value(v)
                .map(Some)
                .map_err(|e| de::Error::custom(e.to_string())),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self[..].serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(|e| de::Error::custom(e.to_string())))
                .collect(),
            other => Err(de::Error::custom(format!(
                "expected sequence, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let items = self
            .iter()
            .map(to_value)
            .collect::<Result<Vec<Value>, _>>()
            .map_err(ser::Error::custom)?;
        serializer.serialize_value(Value::Seq(items))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self[..].serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| de::Error::custom(format!("expected array of {N} elements, found {len}")))
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeMap<String, T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let entries = self
            .iter()
            .map(|(k, v)| Ok((k.clone(), to_value(v)?)))
            .collect::<Result<Vec<(String, Value)>, value::ValueError>>()
            .map_err(ser::Error::custom)?;
        serializer.serialize_value(Value::Map(entries))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        k,
                        from_value(v).map_err(|e| de::Error::custom(e.to_string()))?,
                    ))
                })
                .collect(),
            other => Err(de::Error::custom(format!("expected map, found {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let items = vec![
            to_value(&self.0).map_err(ser::Error::custom)?,
            to_value(&self.1).map_err(ser::Error::custom)?,
        ];
        serializer.serialize_value(Value::Seq(items))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let seq = __private::expect_seq(deserializer.take_value()?, 2, "2-tuple")
            .map_err(|e| de::Error::custom(e.to_string()))?;
        let mut it = seq.into_iter();
        let a = from_value(it.next().unwrap()).map_err(|e| de::Error::custom(e.to_string()))?;
        let b = from_value(it.next().unwrap()).map_err(|e| de::Error::custom(e.to_string()))?;
        Ok((a, b))
    }
}
