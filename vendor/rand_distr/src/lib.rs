//! Vendored minimal stand-in for the
//! [`rand_distr`](https://crates.io/crates/rand_distr) crate (offline build).
//!
//! Implements the distributions the SRLB workload generators draw from, with
//! mathematically exact sampling methods (inverse transform for the
//! exponential, Box–Muller for the normal underlying the log-normal), so the
//! statistical convergence tests in `srlb-workload` hold.

use std::fmt;

use rand::{Rng, RngCore};

/// Types that produce samples of `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng` as the source of randomness.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Exp::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpError {
    /// `lambda` was non-positive or NaN.
    LambdaTooSmall,
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rate (lambda) of exponential distribution must be positive")
    }
}

impl std::error::Error for ExpError {}

/// The exponential distribution `Exp(lambda)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates the distribution with rate `lambda` (mean `1 / lambda`).
    pub fn new(lambda: f64) -> Result<Exp, ExpError> {
        if lambda > 0.0 {
            Ok(Exp { lambda })
        } else {
            Err(ExpError::LambdaTooSmall)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform: -ln(1 - U) / lambda with U uniform in [0, 1).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.lambda
    }
}

/// Error returned by [`Normal::new`] / [`LogNormal::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean was NaN.
    MeanTooSmall,
    /// The standard deviation was negative or NaN.
    BadVariance,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalError::MeanTooSmall => f.write_str("mean of normal distribution is invalid"),
            NormalError::BadVariance => {
                f.write_str("standard deviation of normal distribution must be non-negative")
            }
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution from its mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, NormalError> {
        if mean.is_nan() {
            return Err(NormalError::MeanTooSmall);
        }
        if std_dev.is_nan() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution from the mean `mu` and standard deviation
    /// `sigma` of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, NormalError> {
        if mu.is_nan() {
            return Err(NormalError::MeanTooSmall);
        }
        if sigma.is_nan() || sigma < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal draw via the Box–Muller transform.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_converges() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Exp::new(0.01).unwrap();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean was {mean}");
    }

    #[test]
    fn lognormal_median_converges() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::new(80.0f64.ln(), 0.5).unwrap();
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        assert!((median - 80.0).abs() < 2.0, "median was {median}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(LogNormal::new(0.0, -0.1).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(1.0, 0.0).is_ok());
    }
}
