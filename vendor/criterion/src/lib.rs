//! Vendored minimal stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate (offline build).
//!
//! Provides the measurement surface the SRLB benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `black_box`, `BenchmarkId` and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! median-of-samples timer instead of criterion's full statistical engine.
//! Results are printed as `bench <group>/<name> ... <time>/iter`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        BenchmarkId {
            id: value.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(value: String) -> Self {
        BenchmarkId { id: value }
    }
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    measured: Option<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its median execution time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up, then calibrate the batch size so one timed sample spans
        // at least ~50us — otherwise `Instant` overhead and clock
        // resolution dominate nanosecond-scale routines.
        black_box(routine());
        let target = Duration::from_micros(50);
        loop {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            if start.elapsed() >= target || self.iters_per_sample >= 1 << 20 {
                break;
            }
            self.iters_per_sample = self.iters_per_sample.saturating_mul(4);
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            times.push(Duration::from_nanos(
                (elapsed.as_nanos() / self.iters_per_sample as u128) as u64,
            ));
        }
        times.sort();
        self.measured = Some(times[times.len() / 2]);
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, R: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        routine: R,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, self.sample_size, routine);
        self
    }

    /// Benchmarks `routine` with an explicit input under `id`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, R: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut routine: R,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        self.run_one(id, 10, routine);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    fn run_one<R: FnMut(&mut Bencher)>(&mut self, id: &str, sample_size: usize, mut routine: R) {
        let mut bencher = Bencher {
            samples: sample_size,
            measured: None,
            iters_per_sample: 1,
        };
        routine(&mut bencher);
        match bencher.measured {
            Some(t) => println!("bench {id} ... {t:?}/iter"),
            None => println!("bench {id} ... no measurement (routine never called iter)"),
        }
    }
}

/// Defines a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group entry point generated by `criterion_group!`.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; this simple
            // harness runs everything unconditionally and ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran = black_box(ran + 1)));
        assert!(ran > 0);
    }

    #[test]
    fn groups_chain() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| black_box(7)));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8, |b, &v| {
            b.iter(|| black_box(v))
        });
        group.finish();
    }
}
