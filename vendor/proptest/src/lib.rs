//! Vendored minimal stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate (offline build).
//!
//! Implements the subset of the proptest API the SRLB property tests use:
//! the [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`any`], `prop::collection::vec`, `proptest::option::of`, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed sequence (256 cases per property) and failing inputs
//! are *not* shrunk — the panic message reports the case number so a failure
//! is still reproducible by construction.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies while generating a test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the RNG for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Failure of a single property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail<T: fmt::Display>(message: T) -> Self {
        TestCaseError {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A recipe for generating values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),* $(,)?) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*
    };
}

impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Any")
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        any::<T>()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// A size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(value: usize) -> Self {
        SizeRange {
            min: value,
            max_exclusive: value + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(value: Range<usize>) -> Self {
        SizeRange {
            min: value.start,
            max_exclusive: value.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(value: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *value.start(),
            max_exclusive: value.end() + 1,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(
                self.size.min < self.size.max_exclusive,
                "empty collection size range"
            );
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<S::Value>`; `None` about a quarter of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps a strategy to also produce `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Number of cases generated per property.
pub const CASES: u64 = 256;

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just, Strategy,
        TestCaseError, TestRng,
    };

    /// The `prop` shorthand module (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    // Mix the case index so consecutive cases are unrelated;
                    // the per-test stream is still fully deterministic.
                    let mut rng = $crate::TestRng::new(
                        0x5352_4c42u64 ^ (case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    );
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            $crate::CASES,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left),
            stringify!($right),
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn generated_values_respect_strategies(
            n in 5u32..10,
            f in 0.25f64..0.75,
            v in prop::collection::vec(any::<u8>(), 1..4),
            o in crate::option::of(1u8..3),
        ) {
            prop_assert!((5..10).contains(&n));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 4);
            if let Some(x) = o {
                prop_assert!((1..3).contains(&x));
            }
        }

        /// The harness must actually fail when a property is false —
        /// otherwise every green run is meaningless.
        #[test]
        #[should_panic(expected = "failed at case")]
        fn false_property_fails(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }

        #[test]
        #[should_panic(expected = "failed at case")]
        fn false_equality_fails(x in 0u32..10) {
            prop_assert_eq!(x, x + 1);
        }
    }

    #[test]
    fn same_case_index_reproduces_values() {
        let strat = (0u64..1_000_000, crate::collection::vec(any::<u16>(), 0..8));
        let mut a = TestRng::new(99);
        let mut b = TestRng::new(99);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
