//! Vendored minimal stand-in for the
//! [`serde_json`](https://crates.io/crates/serde_json) crate (offline build).
//!
//! Serializes the vendored `serde` crate's [`Value`] data model to JSON text
//! and parses JSON text back into it.  Supports everything the SRLB
//! workspace round-trips: objects, arrays, strings (with escapes), booleans,
//! null, and numbers (kept as `i64`/`u64` when integral so `u64` timestamps
//! survive exactly).

use std::fmt;
use std::io::{Read, Write};

use serde::{Deserialize, Serialize, Value};

/// Error produced by JSON (de)serialization.
#[derive(Debug)]
pub enum Error {
    /// An I/O error from the underlying reader or writer.
    Io(std::io::Error),
    /// A syntax or data-shape error.
    Message(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "JSON I/O error: {e}"),
            Error::Message(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(value: std::io::Error) -> Self {
        Error::Io(value)
    }
}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let value = serde::to_value(value).map_err(|e| Error::Message(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &value);
    Ok(out)
}

/// Serializes `value` as JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserializes a `T` from a JSON string slice.
pub fn from_str<'de, T: Deserialize<'de>>(s: &'de str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::Message(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    serde::from_value(value).map_err(|e| Error::Message(e.to_string()))
}

/// Deserializes a `T` from a JSON reader.
pub fn from_reader<R: Read, T: for<'de> Deserialize<'de>>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::UInt(n) => {
            out.push_str(&n.to_string());
        }
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_nan() {
        // JSON has no NaN; null is the conventional lossy encoding.
        out.push_str("null");
    } else if f.is_infinite() {
        out.push_str(if f > 0.0 { "1e999" } else { "-1e999" });
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        out.push_str(&format!("{f:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::Message(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::Message(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::Message(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::Message(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::Message(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::Message("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::Message("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::Message("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::Message("invalid \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::Message(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::Message("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::Message("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::Message(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::UInt(18_446_744_073_709_551_615)),
            ("b".to_string(), Value::Int(-42)),
            ("c".to_string(), Value::Float(0.1)),
            (
                "d".to_string(),
                Value::Seq(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::Str("x\"\n".into()),
                ]),
            ),
        ]);
        let mut s = String::new();
        write_value(&mut s, &v);
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let back = p.parse_value().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v: Vec<String> = from_str(" [ \"a\\u0041b\" , \"\\t\" ] ").unwrap();
        assert_eq!(v, vec!["aAb".to_string(), "\t".to_string()]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("truex").is_err());
        assert!(from_str::<bool>("nope").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
    }
}
