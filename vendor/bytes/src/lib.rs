//! Vendored minimal stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, providing the small slice of its API that this workspace uses.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors tiny, dependency-free implementations of the external
//! crates it needs.  `Bytes` here is a cheaply clonable, immutable byte
//! buffer backed by an `Arc<[u8]>` — the same observable semantics as the
//! real crate for the operations the SRLB packet model performs (zero-copy
//! clones, `Deref` to `[u8]`, construction from vectors and slices).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
///
/// The empty buffer is represented without a backing allocation, so
/// `Bytes::new()` (and construction from an empty slice or vector) never
/// touches the heap — this keeps decoding payload-less packets
/// allocation-free.
#[derive(Clone)]
pub struct Bytes {
    /// `None` is the canonical empty buffer.
    data: Option<Arc<[u8]>>,
}

impl Bytes {
    /// Creates a new empty `Bytes` (allocation-free).
    pub fn new() -> Self {
        Bytes { data: None }
    }

    /// Creates `Bytes` holding a copy of the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        if data.is_empty() {
            return Bytes::new();
        }
        Bytes {
            data: Some(Arc::from(data)),
        }
    }

    fn as_slice(&self) -> &[u8] {
        self.data.as_deref().unwrap_or(&[])
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_none()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(value: Vec<u8>) -> Self {
        if value.is_empty() {
            return Bytes::new();
        }
        Bytes {
            data: Some(Arc::from(value.into_boxed_slice())),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(value: &'static [u8]) -> Self {
        Bytes::copy_from_slice(value)
    }
}

impl From<&'static str> for Bytes {
    fn from(value: &'static str) -> Self {
        Bytes::copy_from_slice(value.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_compares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        let c = b.clone();
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
    }
}
