//! Vendored minimal stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8-compatible API subset), used because the build environment has
//! no registry access.
//!
//! Provided surface (exactly what this workspace consumes):
//!
//! * [`RngCore`] — `next_u32` / `next_u64` / `fill_bytes` / `try_fill_bytes`,
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool` convenience extension,
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64`,
//! * [`rngs::StdRng`] — a deterministic, statistically solid PRNG
//!   (xoshiro256++ seeded via SplitMix64),
//! * [`Error`] — the fallible-fill error type (never produced here).
//!
//! The generators are *not* cryptographically secure; they are deterministic
//! simulation-grade PRNGs, which is all the SRLB experiments need.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations.
///
/// The vendored generators are infallible; this type exists so that
/// signatures mirroring the real `rand` 0.8 API compile unchanged.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }

    /// Fallible variant of [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw output (the
/// "standard" distribution of the real `rand` crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {
        $(impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        })*
    };
}

impl_standard_int!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = u128::sample_standard(rng) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = u128::sample_standard(rng) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The fixed-size seed accepted by [`SeedableRng::from_seed`].
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256++.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12), but
    /// deterministic, fast and statistically sound for simulation use.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not be seeded with all zeros.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        rng.try_fill_bytes(&mut buf).unwrap();
    }
}
