//! Vendored minimal `#[derive(Serialize, Deserialize)]` macros for the
//! vendored `serde` crate (offline build — `syn`/`quote` are unavailable, so
//! the input is parsed directly from the token stream and code is generated
//! as strings).
//!
//! Supported input shapes — exactly what the SRLB workspace derives on:
//!
//! * structs with named fields (including `#[serde(with = "module")]`),
//! * tuple structs (newtype structs serialize transparently),
//! * enums with unit, tuple and struct variants (externally tagged).
//!
//! Generic types are rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    with: Option<String>,
    /// `#[serde(default)]` (`Some(None)`: use `Default::default()`) or
    /// `#[serde(default = "path")]` (`Some(Some(path))`: call `path()`).
    default: Option<Option<String>>,
    /// `#[serde(skip_serializing_if = "path")]`.
    skip_if: Option<String>,
}

/// Field-level serde attributes accumulated while parsing.
#[derive(Default)]
struct FieldAttrs {
    with: Option<String>,
    default: Option<Option<String>>,
    skip_if: Option<String>,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, fields } => gen_struct_serialize(name, fields),
        Input::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Input::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = expect_ident(&tokens, i, "`struct` or `enum`");
    i += 1;
    let name = expect_ident(&tokens, i, "type name");
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde derive does not support generic types (on `{name}`)");
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Input::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("expected enum body for `{name}`"),
            };
            Input::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("vendored serde derive supports struct/enum, found `{other}`"),
    }
}

fn expect_ident(tokens: &[TokenTree], i: usize, what: &str) -> String {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde derive expected {what}, found {other:?}"),
    }
}

/// Extracts the supported keys from a `#[serde(...)]` attribute body into
/// `attrs`, if the bracket group is a serde attribute at all.  Supported
/// (comma-separated): `with = "module"`, `default`, `default = "path"`,
/// `skip_serializing_if = "path"`.
fn parse_serde_attrs(group_tokens: TokenStream, attrs: &mut FieldAttrs) {
    let toks: Vec<TokenTree> = group_tokens.into_iter().collect();
    let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) = (toks.first(), toks.get(1))
    else {
        return;
    };
    if id.to_string() != "serde" {
        return;
    }
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        let key = match &inner[i] {
            TokenTree::Ident(k) => k.to_string(),
            other => panic!("vendored serde derive expected an attribute key, found {other:?}"),
        };
        i += 1;
        let value = match inner.get(i) {
            Some(TokenTree::Punct(eq)) if eq.as_char() == '=' => match inner.get(i + 1) {
                Some(TokenTree::Literal(lit)) => {
                    i += 2;
                    Some(lit.to_string().trim_matches('"').to_string())
                }
                other => panic!("vendored serde derive expected a string value, found {other:?}"),
            },
            _ => None,
        };
        if let Some(TokenTree::Punct(p)) = inner.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        match (key.as_str(), value) {
            ("with", Some(path)) => attrs.with = Some(path),
            ("default", path) => attrs.default = Some(path),
            ("skip_serializing_if", Some(path)) => attrs.skip_if = Some(path),
            (other, _) => panic!(
                "vendored serde derive supports with/default/skip_serializing_if \
                 field attributes, found `{other}`"
            ),
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Attributes (capture `#[serde(...)]`, skip the rest).
        let mut attrs = FieldAttrs::default();
        loop {
            match toks.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                        parse_serde_attrs(g.stream(), &mut attrs);
                    }
                    i += 2;
                }
                _ => break,
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = toks.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = expect_ident(&toks, i, "field name");
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth: i32 = 0;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        assert!(
            attrs.with.is_none() || attrs.default.is_none(),
            "vendored serde derive does not support combining `with` and `default` \
             (on field `{name}`)"
        );
        fields.push(Field {
            name,
            with: attrs.with,
            default: attrs.default,
            skip_if: attrs.skip_if,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth: i32 = 0;
    let mut saw_tokens_since_comma = true;
    for (idx, tok) in toks.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                // Ignore a trailing comma.
                if idx + 1 < toks.len() {
                    count += 1;
                }
                saw_tokens_since_comma = false;
            }
            _ => saw_tokens_since_comma = true,
        }
    }
    let _ = saw_tokens_since_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Skip attributes (doc comments and the like).
        loop {
            match toks.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                _ => break,
            }
        }
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, i, "variant name");
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const MAP_ERR: &str = ".map_err(|e| <D::Error as ::serde::de::Error>::custom(e))?";
const SER_MAP_ERR: &str = ".map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?";

fn gen_struct_serialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fields) => {
            let mut s = String::from(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                s.push_str(&serialize_field_push(
                    &f.name,
                    &format!("&self.{}", f.name),
                    f,
                ));
            }
            s.push_str("serializer.serialize_value(::serde::Value::Map(fields))");
            s
        }
        Fields::Tuple(1) => {
            format!("serializer.serialize_value(::serde::to_value(&self.0){SER_MAP_ERR})")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::to_value(&self.{i}){SER_MAP_ERR}"))
                .collect();
            format!(
                "serializer.serialize_value(::serde::Value::Seq(::std::vec![{}]))",
                items.join(", ")
            )
        }
        Fields::Unit => "serializer.serialize_value(::serde::Value::Null)".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
         -> ::core::result::Result<S::Ok, S::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// One `fields.push((..))` statement for a named field, honoring
/// `#[serde(with = "module")]` and `#[serde(skip_serializing_if = "path")]`.
fn serialize_field_push(key: &str, expr: &str, field: &Field) -> String {
    let push = match &field.with {
        Some(module) => format!(
            "fields.push((\"{key}\".to_string(), \
             {module}::serialize({expr}, ::serde::value::ValueSerializer){SER_MAP_ERR}));\n"
        ),
        None => format!(
            "fields.push((\"{key}\".to_string(), ::serde::to_value({expr}){SER_MAP_ERR}));\n"
        ),
    };
    match &field.skip_if {
        Some(path) => format!("if !{path}({expr}) {{\n{push}}}\n"),
        None => push,
    }
}

fn gen_struct_deserialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fields) => {
            let mut s = format!(
                "let mut map = ::serde::__private::expect_map(deserializer.take_value()?, \
                 \"struct {name}\"){MAP_ERR};\n"
            );
            s.push_str(&format!("::core::result::Result::Ok({name} {{\n"));
            for f in fields {
                s.push_str(&deserialize_field_init(&f.name, f));
            }
            s.push_str("})");
            s
        }
        Fields::Tuple(1) => format!(
            "::core::result::Result::Ok({name}(\
             ::serde::from_value(deserializer.take_value()?){MAP_ERR}))"
        ),
        Fields::Tuple(n) => {
            let mut s = format!(
                "let seq = ::serde::__private::expect_seq(deserializer.take_value()?, {n}, \
                 \"tuple struct {name}\"){MAP_ERR};\n\
                 let mut it = seq.into_iter();\n"
            );
            s.push_str(&format!("::core::result::Result::Ok({name}(\n"));
            for _ in 0..*n {
                s.push_str(&format!(
                    "::serde::from_value(it.next().unwrap()){MAP_ERR},\n"
                ));
            }
            s.push_str("))");
            s
        }
        Fields::Unit => format!("::core::result::Result::Ok({name})"),
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
         -> ::core::result::Result<Self, D::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// One `field: ...,` initializer for a named field, honoring `with` and
/// `default`.
fn deserialize_field_init(key: &str, field: &Field) -> String {
    if let Some(default) = &field.default {
        let default_expr = match default {
            Some(path) => format!("{path}()"),
            None => "::core::default::Default::default()".to_string(),
        };
        return format!(
            "{key}: match ::serde::__private::opt_field_value(&mut map, \"{key}\") {{\n\
             ::core::option::Option::Some(v) => ::serde::from_value(v){MAP_ERR},\n\
             ::core::option::Option::None => {default_expr},\n}},\n"
        );
    }
    match &field.with {
        Some(module) => format!(
            "{key}: {module}::deserialize(::serde::value::ValueDeserializer::new(\
             ::serde::__private::take_field_value(&mut map, \"{key}\"){MAP_ERR})){MAP_ERR},\n"
        ),
        None => format!("{key}: ::serde::__private::take_field(&mut map, \"{key}\"){MAP_ERR},\n"),
    }
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                arms.push_str(&format!(
                    "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                ));
            }
            Fields::Named(fields) => {
                let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut inner = String::from(
                    "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    let binding = f.name.clone();
                    inner.push_str(&serialize_field_push(&f.name, &binding, f));
                }
                arms.push_str(&format!(
                    "{name}::{vname} {{ {} }} => {{\n{inner}\
                     ::serde::Value::Map(::std::vec![(\"{vname}\".to_string(), \
                     ::serde::Value::Map(fields))])\n}}\n",
                    bindings.join(", ")
                ));
            }
            Fields::Tuple(1) => {
                arms.push_str(&format!(
                    "{name}::{vname}(x0) => \
                     ::serde::Value::Map(::std::vec![(\"{vname}\".to_string(), \
                     ::serde::to_value(x0){SER_MAP_ERR})]),\n"
                ));
            }
            Fields::Tuple(n) => {
                let bindings: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                let items: Vec<String> = bindings
                    .iter()
                    .map(|b| format!("::serde::to_value({b}){SER_MAP_ERR}"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname}({}) => \
                     ::serde::Value::Map(::std::vec![(\"{vname}\".to_string(), \
                     ::serde::Value::Seq(::std::vec![{}]))]),\n",
                    bindings.join(", "),
                    items.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
         -> ::core::result::Result<S::Ok, S::Error> {{\n\
         let value = match self {{\n{arms}}};\n\
         serializer.serialize_value(value)\n}}\n}}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            Fields::Named(fields) => {
                let mut inner = format!(
                    "let mut map = ::serde::__private::expect_map(inner, \
                     \"variant {name}::{vname}\"){MAP_ERR};\n"
                );
                inner.push_str(&format!("::core::result::Result::Ok({name}::{vname} {{\n"));
                for f in fields {
                    inner.push_str(&deserialize_field_init(&f.name, f));
                }
                inner.push_str("})");
                data_arms.push_str(&format!("\"{vname}\" => {{\n{inner}\n}}\n"));
            }
            Fields::Tuple(1) => {
                data_arms.push_str(&format!(
                    "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                     ::serde::from_value(inner){MAP_ERR})),\n"
                ));
            }
            Fields::Tuple(n) => {
                let mut inner = format!(
                    "let seq = ::serde::__private::expect_seq(inner, {n}, \
                     \"variant {name}::{vname}\"){MAP_ERR};\n\
                     let mut it = seq.into_iter();\n"
                );
                inner.push_str(&format!("::core::result::Result::Ok({name}::{vname}(\n"));
                for _ in 0..*n {
                    inner.push_str(&format!(
                        "::serde::from_value(it.next().unwrap()){MAP_ERR},\n"
                    ));
                }
                inner.push_str("))");
                data_arms.push_str(&format!("\"{vname}\" => {{\n{inner}\n}}\n"));
            }
        }
    }
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
         -> ::core::result::Result<Self, D::Error> {{\n\
         match deserializer.take_value()? {{\n\
         ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
         other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
         ::std::format!(\"unknown unit variant `{{other}}` of {name}\"))),\n}},\n\
         ::serde::Value::Map(mut m) if m.len() == 1 => {{\n\
         let (tag, inner) = m.remove(0);\n\
         let _ = &inner;\n\
         match tag.as_str() {{\n{data_arms}\
         other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
         ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
         other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
         ::std::format!(\"expected variant of {name}, found {{other:?}}\"))),\n\
         }}\n}}\n}}\n"
    )
}
