//! Load-balancer failover under load: compare how candidate-selection
//! policies cope with losing the flow table mid-run.
//!
//! The scenario establishes connections continuously, fails the load
//! balancer over to a cold standby (empty flow table) at the midpoint, and
//! relies on in-band reconstruction: packets of established flows are
//! re-hunted through the candidate list and the owning server re-announces
//! itself with an acceptance-style SRH.  With deterministic dispatchers
//! (consistent hash, Maglev) the owner is always in the re-hunt list, so
//! **zero** established connections are lost; with random candidate lists
//! the owner usually is not, and connections break.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example lb_failover
//! ```

use srlb::core::dispatch::DispatcherConfig;
use srlb::scenario::{run, Scenario};

fn main() {
    let queries = 2_000;
    println!("SRLB load-balancer failover scenario — {queries} queries, failover at mid-run");
    println!(
        "{:<22} {:>6} {:>6} {:>7} {:>8} {:>8} {:>9}",
        "dispatcher", "sent", "done", "broken", "rehunts", "adverts", "recon(ms)"
    );

    for dispatcher in [
        DispatcherConfig::ConsistentHash { vnodes: 128, k: 2 },
        DispatcherConfig::Maglev {
            table_size: 2039,
            k: 2,
        },
        DispatcherConfig::Random { k: 2 },
    ] {
        let scenario = Scenario::lb_failover(dispatcher, queries).with_seed(42);
        let outcome = run(&scenario).expect("preset scenario is valid");
        let report = outcome.report();
        println!(
            "{:<22} {:>6} {:>6} {:>7} {:>8} {:>8} {:>9}",
            report.dispatcher,
            report.sent,
            report.completed,
            report.broken_established,
            report.rehunts,
            report.ownership_adverts,
            report
                .reconstruction_ms
                .map_or("-".to_string(), |ms| format!("{ms:.1}")),
        );
    }

    println!(
        "\nDeterministic dispatchers reconstruct the flow table in-band and lose no\n\
         established connection; random candidate lists cannot be replayed, so the\n\
         re-hunt misses the owner and those connections are reset."
    );
}
