//! Poisson load sweep (a reduced version of the paper's Figure 2).
//!
//! Sweeps the normalised request rate ρ and prints the mean response time of
//! the RR baseline against SR4, SR8, SR16 and SRdyn.
//!
//! ```text
//! cargo run --release --example poisson_sweep
//! ```

use srlb::core::experiment::{ExperimentConfig, PolicyKind};

fn main() {
    let policies = [
        PolicyKind::RoundRobin,
        PolicyKind::Static { threshold: 4 },
        PolicyKind::Static { threshold: 8 },
        PolicyKind::Static { threshold: 16 },
        PolicyKind::Dynamic,
    ];
    let rhos = [0.2, 0.4, 0.6, 0.7, 0.8, 0.88, 0.96];
    let queries = 5_000;
    let seed = 7;

    println!("Mean response time (s) per policy and load factor rho ({queries} queries/point)");
    print!("{:<6}", "rho");
    for p in &policies {
        print!("{:>10}", p.label());
    }
    println!();

    for &rho in &rhos {
        print!("{rho:<6.2}");
        for &policy in &policies {
            let result = ExperimentConfig::poisson_paper(rho, policy)
                .with_queries(queries)
                .with_seed(seed)
                .run()
                .expect("experiment configuration is valid");
            print!("{:>10.3}", result.mean_response_seconds());
        }
        println!();
    }

    println!();
    println!("Paper's Figure 2 shape: every SRc curve sits below RR, SR4 is the best static");
    println!("policy at high load, and SRdyn tracks the best static policy without tuning.");
}
