//! Loads a committed `ExperimentSpec` JSON file and runs it through the
//! unified `Runner` — the whole experiment pipeline from one file.
//!
//! ```text
//! cargo run --release --example run_spec                         # default spec
//! cargo run --release --example run_spec -- examples/specs/wikipedia_replay.json
//! ```
//!
//! The default spec is the scenario × workload cross product the unified
//! API unlocked: a load-balancer failover (with in-band flow-table
//! reconstruction over consistent-hash candidates) in the middle of a
//! Wikipedia replay slice.

use srlb::core::runner::Runner;
use srlb::core::spec::ExperimentSpec;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "examples/specs/lb_failover_wikipedia.json".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("could not read {path}: {e} (run from the workspace root)"));
    let spec: ExperimentSpec =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("malformed spec {path}: {e}"));

    println!(
        "spec `{}`: seed {}, policy {}, {} scheduled event(s)",
        spec.name,
        spec.seed,
        spec.policy.label(),
        spec.scenario.len()
    );

    let outcome = Runner::new(spec).expect("committed specs are valid").run();

    println!(
        "sent {}  completed {}  resets {}  simulated {:.1} s  ({} events)",
        outcome.collector.len(),
        outcome.collector.completed_count(),
        outcome.collector.reset_count(),
        outcome.duration_seconds,
        outcome.events_processed,
    );
    println!(
        "lb: {} new flows, {} learned, {} failover(s), {} re-hunts",
        outcome.lb_stats.new_flows,
        outcome.lb_stats.flows_learned,
        outcome.lb_stats.failovers,
        outcome.lb_stats.rehunts,
    );
    if let Some(ms) = outcome.reconstruction_latency_s.map(|s| s * 1e3) {
        println!("flow-table reconstruction took {ms:.1} ms");
    }
    for phase in &outcome.phases {
        println!(
            "phase {:<16} sent {:>6}  completed {:>6}  p99 {:>8.1} ms  fairness {:.3}",
            phase.label, phase.sent, phase.completed, phase.p99_response_ms, phase.fairness,
        );
    }
}
