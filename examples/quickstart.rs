//! Quickstart: compare the paper's RR baseline against SRLB's SR4 policy on
//! a Poisson workload at high load (ρ = 0.88), as in Figure 2/3.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use srlb::core::experiment::{ExperimentConfig, PolicyKind};

fn main() {
    let rho = 0.88;
    let queries = 20_000;
    let seed = 42;

    println!("SRLB quickstart — Poisson workload, 12 servers x 32 workers, rho = {rho}");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "policy", "mean (s)", "median(s)", "p90 (s)", "p99 (s)", "resets"
    );

    for policy in [
        PolicyKind::RoundRobin,
        PolicyKind::Static { threshold: 4 },
        PolicyKind::Dynamic,
    ] {
        let result = ExperimentConfig::poisson_paper(rho, policy)
            .with_queries(queries)
            .with_seed(seed)
            .run()
            .expect("experiment configuration is valid");
        let summary = &result.response_times;
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8}",
            result.label,
            summary.mean() / 1e3,
            summary.median().unwrap_or(0.0) / 1e3,
            summary.percentile(90.0).unwrap_or(0.0) / 1e3,
            summary.percentile(99.0).unwrap_or(0.0) / 1e3,
            result.resets,
        );
    }

    println!();
    println!("Expected shape (paper, Figure 2): SR4 and SRdyn yield substantially lower");
    println!("and less dispersed response times than RR at this load.");
}
