//! Wikipedia replay (a reduced version of the paper's Figures 6 and 8).
//!
//! Replays a slice of the synthetic diurnal Wikipedia trace at 50% of peak
//! load against the RR baseline and SR4, then prints the per-bin medians and
//! the whole-run distribution of wiki-page load times.
//!
//! ```text
//! cargo run --release --example wikipedia_replay [hours]
//! ```

use srlb::core::experiment::{ExperimentConfig, PolicyKind};
use srlb::metrics::RequestClass;

fn main() {
    let hours: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let bin_seconds = 600.0_f64.min(hours * 3600.0 / 6.0);
    let seed = 11;

    println!("Wikipedia replay: {hours} h slice at 50% of peak, 12 servers, RR vs SR4");

    for policy in [PolicyKind::RoundRobin, PolicyKind::Static { threshold: 4 }] {
        let result = ExperimentConfig::wikipedia_paper(policy)
            .with_hours(hours)
            .with_seed(seed)
            .run()
            .expect("experiment configuration is valid");

        let wiki_cdf = result.cdf_seconds(Some(RequestClass::WikiPage));
        let static_cdf = result.cdf_seconds(Some(RequestClass::Static));
        println!(
            "\n== {} — {} requests ({} wiki pages), {} resets",
            result.label,
            result.sent,
            wiki_cdf.count(),
            result.resets
        );
        println!(
            "   wiki pages:   median {:.3} s   Q3 {:.3} s   p95 {:.3} s",
            wiki_cdf.median().unwrap_or(0.0),
            wiki_cdf.third_quartile().unwrap_or(0.0),
            wiki_cdf.quantile(0.95).unwrap_or(0.0),
        );
        println!(
            "   static pages: median {:.4} s (served in about a millisecond, as in the paper)",
            static_cdf.median().unwrap_or(0.0),
        );

        println!("   per-bin wiki-page rate and median load time:");
        let bins = result
            .collector
            .binned(bin_seconds, Some(RequestClass::WikiPage));
        let rates = result
            .collector
            .arrival_rate_bins(bin_seconds, Some(RequestClass::WikiPage));
        for (stat, rate) in bins.stats().iter().zip(rates.stats()) {
            println!(
                "     t = {:>6.0} s   {:>6.1} pages/s   median {:>6.3} s",
                stat.start_seconds,
                rate.rate_per_second,
                stat.median.unwrap_or(0.0) / 1e3
            );
        }
    }

    println!();
    println!("Paper's Figures 6–8 shape: RR and SR4 are equivalent off-peak, and SR4's");
    println!("median and tail grow much less than RR's as the request rate rises.");
}
