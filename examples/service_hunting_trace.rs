//! Service Hunting packet walk (the paper's Figure 1).
//!
//! Builds a three-server cluster in which every server refuses hunted
//! connections (so the walk always reaches the second candidate), sends one
//! HTTP request through the load balancer, and prints every packet delivery
//! in order: the hunted SYN, the refusal hop, the forced acceptance, the
//! SYN-ACK routed through the load balancer, the steered request and the
//! direct response.
//!
//! ```text
//! cargo run --example service_hunting_trace
//! ```

use srlb::core::dispatch::RandomDispatcher;
use srlb::core::LoadBalancerNode;
use srlb::net::{AddressPlan, Packet, PacketBuilder, ServerId, TcpFlags};
use srlb::server::server_node::encode_request_payload;
use srlb::server::{Directory, PolicyConfig, ServerConfig, ServerNode};
use srlb::sim::{Context, Network, Node, NodeId, RunUntil, SimDuration, Topology};

/// A scripted client: sends the SYN, then answers the SYN-ACK with the HTTP
/// request, and stops once the response arrives.
#[derive(Debug)]
struct ScriptedClient {
    lb: NodeId,
    plan: AddressPlan,
}

impl Node<Packet> for ScriptedClient {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        let syn = PacketBuilder::tcp(self.plan.client_addr(0), self.plan.vip(0))
            .ports(50_000, 80)
            .flags(TcpFlags::SYN)
            .build();
        ctx.send(self.lb, syn);
    }

    fn on_message(&mut self, packet: Packet, _from: NodeId, ctx: &mut Context<'_, Packet>) {
        if packet.is_syn_ack() {
            let request = PacketBuilder::tcp(self.plan.client_addr(0), self.plan.vip(0))
                .ports(50_000, 80)
                .flags(TcpFlags::ACK | TcpFlags::PSH)
                .payload(encode_request_payload(1, SimDuration::from_millis(80)))
                .build();
            ctx.send(self.lb, request);
        } else if packet.tcp.flags.contains(TcpFlags::PSH) {
            ctx.stop();
        }
    }
}

fn main() {
    let plan = AddressPlan::default();
    let servers = 3u32;

    // Node ids by insertion order: client 0, LB 1, servers 2..
    let client_id = NodeId(0);
    let lb_id = NodeId(1);
    let mut directory = Directory::new();
    directory.register(plan.client_addr(0), client_id);
    directory.register(plan.lb_addr(), lb_id);
    directory.register(plan.vip(0), lb_id);
    for i in 0..servers {
        directory.register(plan.server_addr(ServerId(i)), NodeId(2 + i as usize));
    }

    let mut net: Network<Packet> = Network::new(7, Topology::datacenter());
    net.enable_trace(|packet| packet.to_string());

    net.add_node(ScriptedClient {
        lb: lb_id,
        plan: plan.clone(),
    });
    net.add_node(LoadBalancerNode::new(
        plan.lb_addr(),
        plan.vip(0),
        directory.clone(),
        Box::new(RandomDispatcher::power_of_two(
            plan.server_addrs(servers).collect(),
        )),
    ));
    for i in 0..servers {
        // Every server refuses as first candidate, so the hunt always reaches
        // the second candidate — the refusal/acceptance roles of Figure 1.
        let config = ServerConfig::paper(
            i,
            plan.server_addr(ServerId(i)),
            plan.lb_addr(),
            PolicyConfig::NeverAccept,
        );
        net.add_node(ServerNode::new(config, directory.clone()));
    }

    net.run_until(RunUntil::Drained);

    println!("Service Hunting packet walk (paper Figure 1); every message delivery in order:\n");
    for (i, entry) in net.trace().entries().iter().enumerate() {
        println!("{:>2}. {}", i + 1, entry);
    }

    println!("\nLegend: node-0 = client, node-1 = load balancer, node-2.. = servers.");
    println!("The SYN carries the Service Hunting SRH; the first candidate refuses");
    println!("(SegmentsLeft 2 -> 1), the second accepts and answers with a SYN-ACK whose");
    println!("SRH routes through the load balancer so it can learn the flow's owner; the");
    println!("HTTP request is then steered to that server and the response returns directly.");
}
