//! Integration tests: flow-table expiry interacting with LB failover.
//!
//! In-band flow-table reconstruction (re-hunt on miss + server ownership
//! adverts) must not become a resurrection channel for flows that are
//! *dead*:
//!
//! * a connection that completed and was then swept from the flow table
//!   must stay dead — a stale packet re-hunts, finds no owner, and is
//!   reset without re-installing a flow-table entry,
//! * a connection that is still established (quiescent) when the failover
//!   wipes the table *is* legitimately re-learned from its owner's advert —
//!   and the re-learned entry is subject to the same idle expiry as any
//!   other.

use srlb::core::dispatch::RandomDispatcher;
use srlb::core::{FlowTable, LoadBalancerNode};
use srlb::net::{AddressPlan, Packet, PacketBuilder, ServerId, TcpFlags};
use srlb::server::server_node::encode_request_payload;
use srlb::server::{Directory, PolicyConfig, ServerConfig, ServerNode};
use srlb::sim::{
    Context, Network, Node, NodeId, RunUntil, SimDuration, SimTime, TimerToken, Topology,
};

const CLIENT: NodeId = NodeId(0);
const LB: NodeId = NodeId(1);
const SERVER: NodeId = NodeId(2);

fn wired_directory(plan: &AddressPlan) -> Directory {
    let mut directory = Directory::new();
    directory.register(plan.client_addr(0), CLIENT);
    directory.register(plan.lb_addr(), LB);
    directory.register(plan.vip(0), LB);
    directory.register(plan.server_addr(ServerId(0)), SERVER);
    directory
}

/// An LB with flow recovery, a 2 s idle timeout and a 1 s sweep.
fn recovering_lb(plan: &AddressPlan, directory: Directory) -> LoadBalancerNode {
    LoadBalancerNode::new(
        plan.lb_addr(),
        plan.vip(0),
        directory,
        Box::new(RandomDispatcher::single_random(vec![
            plan.server_addr(ServerId(0))
        ])),
    )
    .with_flow_table(FlowTable::new(SimDuration::from_secs(2)))
    .with_expiry_sweep(SimDuration::from_secs(1))
    .with_flow_recovery()
}

fn server(plan: &AddressPlan, directory: Directory) -> ServerNode {
    ServerNode::new(
        ServerConfig::paper(
            0,
            plan.server_addr(ServerId(0)),
            plan.lb_addr(),
            PolicyConfig::Static { threshold: 4 },
        ),
        directory,
    )
}

/// Completes one request immediately, then sends a stale data packet on the
/// same (long-finished) flow at t = 10 s.
#[derive(Debug)]
struct StaleReplayClient {
    lb: NodeId,
    responses: u32,
    resets: u32,
}

impl StaleReplayClient {
    fn data_packet(payload_id: u64) -> Packet {
        let plan = AddressPlan::default();
        PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
            .ports(55_000, 80)
            .flags(TcpFlags::ACK | TcpFlags::PSH)
            .payload(encode_request_payload(
                payload_id,
                SimDuration::from_millis(10),
            ))
            .build()
    }
}

impl Node<Packet> for StaleReplayClient {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        let plan = AddressPlan::default();
        let syn = PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
            .ports(55_000, 80)
            .flags(TcpFlags::SYN)
            .build();
        ctx.send(self.lb, syn);
        // Well past completion *and* the idle expiry of the learned entry.
        ctx.schedule_timer(SimDuration::from_secs(10), TimerToken(1));
    }

    fn on_timer(&mut self, _token: TimerToken, ctx: &mut Context<'_, Packet>) {
        ctx.send(self.lb, Self::data_packet(2));
    }

    fn on_message(&mut self, packet: Packet, _from: NodeId, ctx: &mut Context<'_, Packet>) {
        if packet.is_syn_ack() {
            ctx.send(self.lb, Self::data_packet(1));
        } else if packet.is_rst() {
            self.resets += 1;
        } else if packet.tcp.flags.contains(TcpFlags::PSH) {
            self.responses += 1;
        }
    }
}

#[test]
fn expired_entries_are_not_resurrected_by_the_rehunt() {
    let plan = AddressPlan::default();
    let directory = wired_directory(&plan);
    let mut net: Network<Packet> = Network::new(1, Topology::datacenter());
    net.add_node(StaleReplayClient {
        lb: LB,
        responses: 0,
        resets: 0,
    });
    net.add_node(recovering_lb(&plan, directory.clone()));
    net.add_node(server(&plan, directory));

    // The exchange completes and, past the idle timeout, the sweep removes
    // the learned entry.
    net.run_until(RunUntil::Time(SimTime::from_secs_f64(8.0)));
    assert_eq!(
        net.node_as::<LoadBalancerNode>(LB)
            .unwrap()
            .flow_table_len(),
        0,
        "the idle flow must be swept before the stale packet arrives"
    );

    // The stale packet at t = 10 s misses the table, is re-hunted, finds no
    // owner (the server closed the connection at completion) and is reset.
    net.run_until(RunUntil::Time(SimTime::from_secs_f64(15.0)));
    let lb = net.node_as::<LoadBalancerNode>(LB).unwrap();
    assert_eq!(lb.stats().rehunts, 1, "the stale packet was re-hunted");
    assert_eq!(
        lb.flow_table_len(),
        0,
        "a dead flow's re-hunt must not re-install a flow-table entry"
    );
    assert_eq!(
        lb.stats().flows_learned,
        1,
        "only the original SYN-ACK taught the table"
    );

    let server: ServerNode = net.take_node(SERVER).unwrap();
    assert_eq!(server.stats().orphaned, 1, "no owner for the stale flow");
    assert_eq!(server.stats().ownership_adverts, 0);
    let client: StaleReplayClient = net.take_node(CLIENT).unwrap();
    assert_eq!(client.responses, 1, "the original request completed");
    assert_eq!(client.resets, 1, "the stale packet was reset");
}

/// Establishes a connection, then waits for an external trigger before
/// sending the request (so the connection is quiescent across a failover).
#[derive(Debug)]
struct QuiescentClient {
    lb: NodeId,
    responses: u32,
    resets: u32,
}

impl Node<Packet> for QuiescentClient {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        let plan = AddressPlan::default();
        let syn = PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
            .ports(55_000, 80)
            .flags(TcpFlags::SYN)
            .build();
        ctx.send(self.lb, syn);
    }

    fn on_timer(&mut self, _token: TimerToken, ctx: &mut Context<'_, Packet>) {
        ctx.send(self.lb, StaleReplayClient::data_packet(1));
    }

    fn on_message(&mut self, packet: Packet, _from: NodeId, ctx: &mut Context<'_, Packet>) {
        if packet.is_syn_ack() {
            // Hold the request back until t = 1.5 s — after the failover.
            let delay = SimTime::from_secs_f64(1.5).duration_since(ctx.now());
            ctx.schedule_timer(delay, TimerToken(1));
        } else if packet.is_rst() {
            self.resets += 1;
        } else if packet.tcp.flags.contains(TcpFlags::PSH) {
            self.responses += 1;
        }
    }
}

#[test]
fn live_flows_are_resurrected_and_then_expire_normally() {
    let plan = AddressPlan::default();
    let directory = wired_directory(&plan);
    let mut net: Network<Packet> = Network::new(1, Topology::datacenter());
    net.add_node(QuiescentClient {
        lb: LB,
        responses: 0,
        resets: 0,
    });
    net.add_node(recovering_lb(&plan, directory.clone()));
    net.add_node(server(&plan, directory));

    // Handshake done, request still held back: fail the LB over at t = 1 s.
    net.run_until(RunUntil::Time(SimTime::from_secs_f64(1.0)));
    net.control::<LoadBalancerNode, _>(LB, |lb, ctx| {
        assert_eq!(lb.flow_table_len(), 1);
        lb.fail_over(ctx.now());
        assert_eq!(lb.flow_table_len(), 0);
    })
    .unwrap();

    // The delayed request re-hunts; the server still owns the connection,
    // adverts it back, and the entry is legitimately re-learned.
    net.run_until(RunUntil::Time(SimTime::from_secs_f64(3.0)));
    {
        let lb = net.node_as::<LoadBalancerNode>(LB).unwrap();
        assert_eq!(lb.stats().rehunts, 1);
        assert_eq!(
            lb.flow_table_len(),
            1,
            "a live flow's owner advert re-installs the entry"
        );
        assert_eq!(lb.stats().flows_learned, 2, "SYN-ACK + ownership advert");
    }

    // The re-learned entry is an ordinary entry: once idle past the 2 s
    // timeout, the sweep removes it like any other.
    net.run_until(RunUntil::Time(SimTime::from_secs_f64(10.0)));
    let lb = net.node_as::<LoadBalancerNode>(LB).unwrap();
    assert_eq!(
        lb.flow_table_len(),
        0,
        "re-learned entries honour the idle expiry"
    );

    let server: ServerNode = net.take_node(SERVER).unwrap();
    assert_eq!(server.stats().ownership_adverts, 1);
    assert_eq!(server.stats().orphaned, 0);
    let client: QuiescentClient = net.take_node(CLIENT).unwrap();
    assert_eq!(client.responses, 1, "the held-back request completed");
    assert_eq!(client.resets, 0);
}
