//! Integration tests: λ₀ calibration against the full cluster, and
//! wire-format interoperability between the crates (a packet built by the
//! load balancer decodes identically after a byte-level round trip).

use srlb::core::calibration::{analytic_lambda0, calibrate_lambda0, CalibrationConfig};
use srlb::core::dispatch::{Dispatcher, RandomDispatcher};
use srlb::net::{
    AddressPlan, FlowKey, Packet, PacketBuilder, Protocol, SegmentRoutingHeader, TcpFlags,
};
use srlb::sim::SimRng;

#[test]
fn calibrated_lambda0_is_close_to_but_below_the_analytic_capacity() {
    // A reduced cluster so the probes stay fast in debug builds.
    let config = CalibrationConfig {
        servers: 4,
        workers: 8,
        cores: 2,
        backlog: 16,
        mean_service_ms: 50.0,
        probe_queries: 800,
        iterations: 6,
        reset_tolerance: 0.0,
        seed: 7,
    };
    let result = calibrate_lambda0(&config).expect("calibration runs");
    let analytic = analytic_lambda0(4, 2, 50.0); // 160 queries/s
    assert_eq!(result.analytic_upper_bound, analytic);
    assert!(
        result.lambda0 > 0.3 * analytic,
        "lambda0 {} too low",
        result.lambda0
    );
    assert!(result.lambda0 <= analytic);
    assert_eq!(result.probes.len(), 6);
}

#[test]
fn a_hunted_syn_survives_a_wire_roundtrip() {
    // Build the exact packet the load balancer would emit, encode it to
    // bytes (RFC 8754 SRH layout) and decode it back.
    let plan = AddressPlan::default();
    let servers: Vec<_> = plan.server_addrs(12).collect();
    let mut dispatcher = RandomDispatcher::power_of_two(servers);
    let mut rng = SimRng::new(4);
    let flow = FlowKey::new(plan.client_addr(0), plan.vip(0), 50_000, 80, Protocol::Tcp);
    let mut route = dispatcher.candidates(&flow, &mut rng);
    route.push(plan.vip(0));

    let packet = PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
        .ports(50_000, 80)
        .flags(TcpFlags::SYN)
        .segment_routing(SegmentRoutingHeader::from_route(&route).unwrap())
        .build();
    let bytes = packet.encode();
    let decoded = Packet::decode(&bytes).expect("wire format round trips");
    assert_eq!(decoded, packet);

    // The decoded SRH still walks the same candidates.
    let srh = decoded.srh.expect("SRH present");
    assert_eq!(srh.route(), route);
    assert_eq!(srh.segments_left(), 2);
    assert_eq!(srh.final_segment(), plan.vip(0));
}

#[test]
fn acceptance_syn_ack_wire_roundtrip_names_the_server() {
    use srlb::server::VirtualRouter;
    let plan = AddressPlan::default();
    let router = VirtualRouter::new(plan.server_addr(srlb::net::ServerId(5)), plan.lb_addr());
    let srh = router.acceptance_srh(plan.client_addr(3)).unwrap();
    let syn_ack = PacketBuilder::tcp(plan.vip(0), plan.client_addr(3))
        .ports(80, 51_000)
        .flags(TcpFlags::SYN_ACK)
        .segment_routing(srh)
        .build();
    let decoded = Packet::decode(&syn_ack.encode()).unwrap();
    let srh = decoded.srh.expect("SRH present");
    assert_eq!(
        srh.first_segment(),
        plan.server_addr(srlb::net::ServerId(5))
    );
    assert_eq!(srh.active_segment(), plan.lb_addr());
    assert_eq!(srh.final_segment(), plan.client_addr(3));
}
