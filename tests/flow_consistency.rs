//! Integration tests: flow stickiness and cross-crate accounting
//! consistency — every connection is owned by exactly one server, the flow
//! table learns exactly one entry per connection, and the Service Hunting
//! accounting balances.

use srlb::core::experiment::{ExperimentConfig, PolicyKind};
use srlb::core::testbed::{Testbed, TestbedConfig};
use srlb::core::DispatcherConfig;
use srlb::server::PolicyConfig;
use srlb::workload::{PoissonWorkload, ServiceTime};

#[test]
fn hunting_accounting_balances() {
    let result = ExperimentConfig::poisson_paper(0.9, PolicyKind::Static { threshold: 2 })
        .with_queries(3_000)
        .with_seed(5)
        .run()
        .expect("valid configuration");

    let accepted: u64 = result
        .server_stats
        .iter()
        .map(|s| s.accepted_by_policy)
        .sum();
    let forced: u64 = result.server_stats.iter().map(|s| s.forced_accepts).sum();
    let passed: u64 = result.server_stats.iter().map(|s| s.passed_on).sum();

    // Every connection was accepted exactly once, either by the policy at a
    // non-final candidate or by force at the final one.
    assert_eq!(accepted + forced, result.sent as u64);
    // With two candidates, every pass-on leads to exactly one forced accept.
    assert_eq!(passed, forced);
    // The load balancer learned one flow per connection and steered exactly
    // one request packet per completed or reset connection.
    assert_eq!(result.lb_stats.flows_learned, result.sent as u64);
    assert_eq!(result.lb_stats.steered, result.sent as u64);
    assert_eq!(result.lb_stats.missing_flow, 0);
}

#[test]
fn served_and_queued_requests_match_client_outcomes() {
    let result = ExperimentConfig::poisson_paper(0.95, PolicyKind::Static { threshold: 4 })
        .with_queries(3_000)
        .with_seed(9)
        .run()
        .expect("valid configuration");
    let served_immediately: u64 = result
        .server_stats
        .iter()
        .map(|s| s.served_immediately)
        .sum();
    let queued: u64 = result.server_stats.iter().map(|s| s.queued).sum();
    let resets: u64 = result.server_stats.iter().map(|s| s.resets).sum();
    let completed: u64 = result.server_stats.iter().map(|s| s.completed).sum();

    assert_eq!(served_immediately + queued + resets, result.sent as u64);
    assert_eq!(completed as usize, result.completed);
    assert_eq!(resets as usize, result.resets);
}

#[test]
fn consistent_hash_dispatcher_keeps_connections_sticky() {
    // The flow table guarantees stickiness regardless of the dispatcher; a
    // consistent-hashing front end must behave identically in that respect.
    let config = TestbedConfig {
        dispatcher: DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 },
        seed: 17,
        ..TestbedConfig::paper(
            PolicyConfig::Static { threshold: 4 },
            DispatcherConfig::Random { k: 2 },
        )
    };
    let requests = PoissonWorkload::new(150.0, 2_000, ServiceTime::paper_poisson()).generate(17);
    let result = Testbed::new(config)
        .expect("valid configuration")
        .run(requests);
    assert_eq!(result.lb_stats.missing_flow, 0);
    assert_eq!(result.lb_stats.flows_learned, 2_000);
    assert_eq!(
        result.collector.completed_count() + result.collector.reset_count(),
        2_000
    );
}

#[test]
fn maglev_dispatcher_also_works_end_to_end() {
    let config = TestbedConfig {
        dispatcher: DispatcherConfig::Maglev {
            table_size: 2039,
            k: 2,
        },
        seed: 23,
        ..TestbedConfig::paper(
            PolicyConfig::paper_dynamic(),
            DispatcherConfig::Random { k: 2 },
        )
    };
    let requests = PoissonWorkload::new(180.0, 2_000, ServiceTime::paper_poisson()).generate(23);
    let result = Testbed::new(config)
        .expect("valid configuration")
        .run(requests);
    assert_eq!(result.lb_stats.missing_flow, 0);
    assert!(result.collector.completed_count() > 1_900);
}

#[test]
fn acceptance_ratio_of_srdyn_hovers_around_one_half() {
    // Section III-B: SRdyn aims to keep the first-candidate acceptance ratio
    // near 1/2 so that both choices stay useful.
    let result = ExperimentConfig::poisson_paper(0.85, PolicyKind::Dynamic)
        .with_queries(6_000)
        .with_seed(29)
        .run()
        .expect("valid configuration");
    let ratios: Vec<f64> = result
        .acceptance_ratios
        .iter()
        .copied()
        .filter(|r| *r > 0.0)
        .collect();
    assert!(!ratios.is_empty());
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (0.25..=0.75).contains(&mean_ratio),
        "mean acceptance ratio {mean_ratio:.2} should hover around 1/2"
    );
}
