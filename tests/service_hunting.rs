//! Integration test: the Service Hunting exchange of the paper's Figure 1.
//!
//! A client opens one connection towards the VIP; every server refuses as a
//! non-final candidate, so the hunt must traverse the first candidate, land
//! on the second (forced acceptance), inform the load balancer via the
//! SYN-ACK SRH, and the request/response must then complete on the accepting
//! server.

use srlb::core::dispatch::RandomDispatcher;
use srlb::core::LoadBalancerNode;
use srlb::net::{AddressPlan, Packet, PacketBuilder, ServerId, TcpFlags};
use srlb::server::server_node::encode_request_payload;
use srlb::server::{Directory, PolicyConfig, ServerConfig, ServerNode};
use srlb::sim::{Context, Network, Node, NodeId, RunUntil, SimDuration, Topology};

#[derive(Debug, Default)]
struct ScriptedClient {
    lb: Option<NodeId>,
    syn_acks: u32,
    responses: u32,
    resets: u32,
}

impl Node<Packet> for ScriptedClient {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        let plan = AddressPlan::default();
        let syn = PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
            .ports(50_000, 80)
            .flags(TcpFlags::SYN)
            .build();
        ctx.send(self.lb.expect("lb id set"), syn);
    }

    fn on_message(&mut self, packet: Packet, _from: NodeId, ctx: &mut Context<'_, Packet>) {
        let plan = AddressPlan::default();
        if packet.is_syn_ack() {
            self.syn_acks += 1;
            // The acceptance SRH must name a real server as its first
            // (already consumed) segment.
            let srh = packet
                .srh
                .as_ref()
                .expect("SYN-ACK carries the acceptance SRH");
            assert!(plan.server_of(srh.first_segment()).is_some());
            let request = PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
                .ports(50_000, 80)
                .flags(TcpFlags::ACK | TcpFlags::PSH)
                .payload(encode_request_payload(7, SimDuration::from_millis(25)))
                .build();
            ctx.send(self.lb.expect("lb id set"), request);
        } else if packet.is_rst() {
            self.resets += 1;
        } else if packet.tcp.flags.contains(TcpFlags::PSH) {
            self.responses += 1;
        }
    }
}

fn build(
    policy: PolicyConfig,
    candidates: usize,
) -> (Network<Packet>, NodeId, NodeId, Vec<NodeId>) {
    let plan = AddressPlan::default();
    let servers = 3u32;
    let client_id = NodeId(0);
    let lb_id = NodeId(1);
    let server_ids: Vec<NodeId> = (0..servers).map(|i| NodeId(2 + i as usize)).collect();

    let mut directory = Directory::new();
    directory.register(plan.client_addr(0), client_id);
    directory.register(plan.lb_addr(), lb_id);
    directory.register(plan.vip(0), lb_id);
    for i in 0..servers {
        directory.register(plan.server_addr(ServerId(i)), server_ids[i as usize]);
    }

    let mut net: Network<Packet> = Network::new(3, Topology::datacenter());
    net.enable_trace(|p| p.to_string());
    let c = net.add_node(ScriptedClient {
        lb: Some(lb_id),
        ..ScriptedClient::default()
    });
    let lb = net.add_node(LoadBalancerNode::new(
        plan.lb_addr(),
        plan.vip(0),
        directory.clone(),
        Box::new(RandomDispatcher::new(
            plan.server_addrs(servers).collect(),
            candidates,
        )),
    ));
    for i in 0..servers {
        let config = ServerConfig::paper(i, plan.server_addr(ServerId(i)), plan.lb_addr(), policy);
        net.add_node(ServerNode::new(config, directory.clone()));
    }
    assert_eq!(c, client_id);
    assert_eq!(lb, lb_id);
    (net, client_id, lb_id, server_ids)
}

#[test]
fn hunted_connection_reaches_the_second_candidate_when_the_first_refuses() {
    let (mut net, client_id, lb_id, server_ids) = build(PolicyConfig::NeverAccept, 2);
    net.run_until(RunUntil::Drained);

    // Exactly one server passed the connection on, exactly one was forced to
    // accept, and that same server completed the request.
    let mut passed = 0;
    let mut forced = 0;
    let mut completed = 0;
    for sid in server_ids {
        let s: ServerNode = net.take_node(sid).unwrap();
        passed += s.stats().passed_on;
        forced += s.stats().forced_accepts;
        completed += s.stats().completed;
    }
    assert_eq!(passed, 1, "the first candidate must refuse");
    assert_eq!(forced, 1, "the second candidate must be forced to accept");
    assert_eq!(completed, 1, "the accepting server serves the request");

    let lb: LoadBalancerNode = net.take_node(lb_id).unwrap();
    assert_eq!(lb.stats().new_flows, 1);
    assert_eq!(lb.stats().flows_learned, 1);
    assert_eq!(
        lb.stats().steered,
        1,
        "the HTTP request is steered via the flow table"
    );

    let client: ScriptedClient = net.take_node(client_id).unwrap();
    assert_eq!(client.syn_acks, 1);
    assert_eq!(client.responses, 1);
    assert_eq!(client.resets, 0);

    // The trace contains the full exchange: SYN (client->LB, LB->cand1,
    // cand1->cand2), SYN-ACK (server->LB, LB->client), request (client->LB,
    // LB->server), response (server->client) = 8 deliveries (plus the
    // server's internal CPU-completion timer, which is not a delivery).
    assert_eq!(
        net.trace().matching("SYN").count(),
        5,
        "SYN and SYN-ACK hops"
    );
    let deliveries = net
        .trace()
        .entries()
        .iter()
        .filter(|e| e.kind == srlb::sim::TraceKind::MessageDelivered)
        .count();
    assert_eq!(deliveries, 8);
}

#[test]
fn idle_first_candidate_accepts_immediately() {
    // With the paper's SR4 policy and an idle cluster, the first candidate
    // accepts: no pass-on happens and the hunt never reaches the second
    // candidate.
    let (mut net, client_id, _lb, server_ids) = build(PolicyConfig::Static { threshold: 4 }, 2);
    net.run_until(RunUntil::Drained);
    let mut passed = 0;
    let mut accepted_by_policy = 0;
    for sid in server_ids {
        let s: ServerNode = net.take_node(sid).unwrap();
        passed += s.stats().passed_on;
        accepted_by_policy += s.stats().accepted_by_policy;
    }
    assert_eq!(passed, 0);
    assert_eq!(accepted_by_policy, 1);
    let client: ScriptedClient = net.take_node(client_id).unwrap();
    assert_eq!(client.responses, 1);
    // One fewer hop than the refusal case (no candidate-to-candidate hop).
    let deliveries = net
        .trace()
        .entries()
        .iter()
        .filter(|e| e.kind == srlb::sim::TraceKind::MessageDelivered)
        .count();
    assert_eq!(deliveries, 7);
}

#[test]
fn single_candidate_behaves_like_the_rr_baseline() {
    let (mut net, client_id, _lb, server_ids) = build(PolicyConfig::NeverAccept, 1);
    net.run_until(RunUntil::Drained);
    let mut forced = 0;
    let mut passed = 0;
    for sid in server_ids {
        let s: ServerNode = net.take_node(sid).unwrap();
        forced += s.stats().forced_accepts;
        passed += s.stats().passed_on;
    }
    assert_eq!(forced, 1, "the single candidate must accept");
    assert_eq!(passed, 0, "no hunting with a single candidate");
    let client: ScriptedClient = net.take_node(client_id).unwrap();
    assert_eq!(client.responses, 1);
}
