//! Integration tests: the synthetic Wikipedia replay (paper Section VI).

use srlb::core::experiment::{ExperimentConfig, ExperimentResult, PolicyKind};
use srlb::metrics::RequestClass;

fn run(policy: PolicyKind, hours: f64, seed: u64) -> ExperimentResult {
    ExperimentConfig::wikipedia_paper(policy)
        .with_hours(hours)
        .with_seed(seed)
        .run()
        .expect("experiment configuration is valid")
}

#[test]
fn replay_contains_both_request_classes_with_expected_costs() {
    let result = run(PolicyKind::Static { threshold: 4 }, 0.02, 5);
    let wiki = result
        .collector
        .response_times_ms(Some(RequestClass::WikiPage));
    let statics = result
        .collector
        .response_times_ms(Some(RequestClass::Static));
    assert!(!wiki.is_empty());
    assert!(!statics.is_empty());
    // Static pages are served in about a millisecond (plus a few network
    // hops); wiki pages are orders of magnitude more expensive.
    let static_median = {
        let mut v = statics.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let wiki_median = {
        let mut v = wiki.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    assert!(static_median < 5.0, "static median {static_median} ms");
    assert!(wiki_median > 30.0, "wiki median {wiki_median} ms");
}

#[test]
fn every_request_is_accounted_for() {
    let result = run(PolicyKind::RoundRobin, 0.02, 7);
    assert!(result.sent > 0);
    let unfinished = result.sent - result.completed - result.resets;
    // At 50% of peak nothing should be reset and only requests still in
    // flight at the very end of the trace may be unfinished.
    assert_eq!(result.resets, 0);
    assert!(unfinished < 20, "unfinished {unfinished}");
    let served: u64 = result.server_stats.iter().map(|s| s.completed).sum();
    assert_eq!(served as usize, result.completed);
}

#[test]
fn sr4_improves_the_wiki_page_tail_over_rr() {
    // Figure 8: the median and third quartile of wiki-page load times drop
    // when SR4 replaces RR.  A 0.1-hour slice around the diurnal peak is
    // enough to see the effect.
    let hours = 0.1;
    let rr = run(PolicyKind::RoundRobin, hours, 21);
    let sr4 = run(PolicyKind::Static { threshold: 4 }, hours, 21);
    let rr_cdf = rr.cdf_seconds(Some(RequestClass::WikiPage));
    let sr4_cdf = sr4.cdf_seconds(Some(RequestClass::WikiPage));
    assert!(
        sr4_cdf.third_quartile().unwrap() <= rr_cdf.third_quartile().unwrap(),
        "SR4 Q3 {:.3}s should not exceed RR Q3 {:.3}s",
        sr4_cdf.third_quartile().unwrap(),
        rr_cdf.third_quartile().unwrap()
    );
    assert!(
        sr4_cdf.median().unwrap() <= rr_cdf.median().unwrap() * 1.05,
        "SR4 median {:.3}s should not exceed RR median {:.3}s",
        sr4_cdf.median().unwrap(),
        rr_cdf.median().unwrap()
    );
}

#[test]
fn static_pages_are_unaffected_by_the_policy() {
    // Section VI-C: static page response times were found to be equivalent
    // regardless of whether SR4 or RR was used.
    let hours = 0.05;
    let rr = run(PolicyKind::RoundRobin, hours, 31);
    let sr4 = run(PolicyKind::Static { threshold: 4 }, hours, 31);
    let rr_median = rr.cdf_seconds(Some(RequestClass::Static)).median().unwrap();
    let sr4_median = sr4
        .cdf_seconds(Some(RequestClass::Static))
        .median()
        .unwrap();
    assert!(
        (rr_median - sr4_median).abs() < 0.01,
        "static medians should be equivalent: RR {rr_median:.4}s vs SR4 {sr4_median:.4}s"
    );
}

#[test]
fn request_rate_is_binnable_into_the_paper_series() {
    let result = run(PolicyKind::RoundRobin, 0.05, 41);
    let bins = result
        .collector
        .arrival_rate_bins(30.0, Some(RequestClass::WikiPage));
    assert!(bins.bin_count() >= 5);
    // At 50% of the Figure 6 trough the wiki-page rate should be around
    // 27 pages/s at the start of the day (the trace starts at 00:00 UTC,
    // where the profile sits between trough and peak).
    let stats = bins.stats();
    assert!(stats.iter().all(|b| b.rate_per_second < 70.0));
    assert!(stats.iter().any(|b| b.rate_per_second > 10.0));
}
