//! Integration tests: end-to-end Poisson experiments across all crates,
//! checking the qualitative results the paper reports (Section V).

use srlb::core::experiment::{ExperimentConfig, ExperimentResult, PolicyKind};

fn run(rho: f64, policy: PolicyKind, queries: usize, seed: u64) -> ExperimentResult {
    ExperimentConfig::poisson_paper(rho, policy)
        .with_queries(queries)
        .with_seed(seed)
        .run()
        .expect("experiment configuration is valid")
}

#[test]
fn every_request_is_accounted_for() {
    let result = run(0.7, PolicyKind::Static { threshold: 4 }, 2_000, 3);
    assert_eq!(result.sent, 2_000);
    assert_eq!(
        result.completed + result.resets + (result.sent - result.completed - result.resets),
        result.sent
    );
    // Under rho = 0.7 with the paper's backlog nothing should be reset.
    assert_eq!(result.resets, 0);
    assert_eq!(result.completed, 2_000);
    // The load balancer learned exactly one flow per connection.
    assert_eq!(result.lb_stats.new_flows as usize, result.sent);
    assert_eq!(result.lb_stats.flows_learned as usize, result.sent);
    // Each completed request was served by exactly one server.
    let served: u64 = result.server_stats.iter().map(|s| s.completed).sum();
    assert_eq!(served as usize, result.completed);
}

#[test]
fn sr4_beats_rr_at_high_load() {
    // The paper's headline result (Figure 2): at high load the SR4 policy
    // yields substantially lower mean response times than random assignment.
    let queries = 4_000;
    let rr = run(0.88, PolicyKind::RoundRobin, queries, 11);
    let sr4 = run(0.88, PolicyKind::Static { threshold: 4 }, queries, 11);
    assert!(
        sr4.response_times.mean() < 0.75 * rr.response_times.mean(),
        "SR4 mean {:.1} ms should be well below RR mean {:.1} ms",
        sr4.response_times.mean(),
        rr.response_times.mean()
    );
    // The tail also shrinks (Figure 3).
    let rr_p90 = rr.response_times.percentile(90.0).unwrap();
    let sr4_p90 = sr4.response_times.percentile(90.0).unwrap();
    assert!(sr4_p90 < rr_p90);
}

#[test]
fn srdyn_tracks_the_best_static_policy() {
    // Figure 2: SRdyn offers results close to the best static policy, so
    // manual tuning is not needed.
    let queries = 4_000;
    let rr = run(0.88, PolicyKind::RoundRobin, queries, 13);
    let sr4 = run(0.88, PolicyKind::Static { threshold: 4 }, queries, 13);
    let dynamic = run(0.88, PolicyKind::Dynamic, queries, 13);
    assert!(dynamic.response_times.mean() < rr.response_times.mean());
    assert!(
        dynamic.response_times.mean() < 1.5 * sr4.response_times.mean(),
        "SRdyn ({:.1} ms) should be in the neighbourhood of SR4 ({:.1} ms)",
        dynamic.response_times.mean(),
        sr4.response_times.mean()
    );
}

#[test]
fn high_thresholds_give_no_benefit_at_light_load() {
    // Figure 5: at rho = 0.61, SR16 yields no improvement over RR while SR4
    // still provides one.
    let queries = 4_000;
    let rr = run(0.61, PolicyKind::RoundRobin, queries, 17);
    let sr16 = run(0.61, PolicyKind::Static { threshold: 16 }, queries, 17);
    let sr4 = run(0.61, PolicyKind::Static { threshold: 4 }, queries, 17);
    let rr_mean = rr.response_times.mean();
    let sr16_mean = sr16.response_times.mean();
    let sr4_mean = sr4.response_times.mean();
    assert!(
        (sr16_mean - rr_mean).abs() / rr_mean < 0.15,
        "SR16 ({sr16_mean:.1} ms) should be close to RR ({rr_mean:.1} ms) at light load"
    );
    assert!(
        sr4_mean < rr_mean,
        "SR4 ({sr4_mean:.1} ms) should still improve on RR ({rr_mean:.1} ms)"
    );
}

#[test]
fn sr4_spreads_load_more_fairly_than_rr() {
    // Figure 4: the Jain fairness index of per-server loads is closer to 1
    // with SR4 than with RR.  We compare the fairness of per-server completed
    // request counts (a time-aggregate proxy for the instantaneous index).
    use srlb::metrics::jain_fairness;
    let queries = 4_000;
    let rr = run(0.88, PolicyKind::RoundRobin, queries, 19);
    let sr4 = run(0.88, PolicyKind::Static { threshold: 4 }, queries, 19);
    let to_f64 = |v: Vec<u64>| v.into_iter().map(|x| x as f64).collect::<Vec<_>>();
    let rr_fair = jain_fairness(&to_f64(rr.per_server_completed()));
    let sr4_fair = jain_fairness(&to_f64(sr4.per_server_completed()));
    assert!(
        sr4_fair >= rr_fair - 1e-6,
        "SR4 fairness {sr4_fair:.4} should not be below RR fairness {rr_fair:.4}"
    );
    assert!(sr4_fair > 0.95);
}

#[test]
fn degenerate_thresholds_reduce_to_random_balancing() {
    // Section III-A: c = 0 and c = n + 1 both reduce to random load
    // balancing, so their response times should be similar to RR's.
    let queries = 2_500;
    let rr = run(0.8, PolicyKind::RoundRobin, queries, 23);
    let never = run(
        0.8,
        PolicyKind::Custom {
            candidates: 2,
            policy: srlb::server::PolicyConfig::NeverAccept,
        },
        queries,
        23,
    );
    let always = run(
        0.8,
        PolicyKind::Custom {
            candidates: 2,
            policy: srlb::server::PolicyConfig::AlwaysAccept,
        },
        queries,
        23,
    );
    let rr_mean = rr.response_times.mean();
    for (label, result) in [("c=0", &never), ("c=n+1", &always)] {
        let mean = result.response_times.mean();
        assert!(
            (mean - rr_mean).abs() / rr_mean < 0.25,
            "{label} mean {mean:.1} ms should be close to RR {rr_mean:.1} ms"
        );
    }
}

#[test]
fn overload_produces_resets_and_bounded_queues() {
    // Push the cluster past saturation: connections must start being reset
    // (tcp_abort_on_overflow) rather than queueing without bound.
    let config = ExperimentConfig::poisson_paper(1.0, PolicyKind::RoundRobin).with_queries(8_000);
    let mut config = config;
    if let srlb::core::experiment::WorkloadKind::Poisson { lambda0, .. } = &mut config.workload {
        // Two and a half times the 240/s capacity: the aggregate backlog
        // (12 x (32 workers + 128 backlog slots)) fills within a few seconds.
        *lambda0 = Some(600.0);
    }
    let result = config.run().expect("valid configuration");
    assert!(result.resets > 0, "overload must trigger resets");
    assert!(result.completed > 0, "some requests still complete");
    assert_eq!(result.completed + result.resets, result.sent);
}

#[test]
fn results_are_deterministic_for_a_given_seed() {
    let a = run(0.85, PolicyKind::Static { threshold: 4 }, 1_500, 99);
    let b = run(0.85, PolicyKind::Static { threshold: 4 }, 1_500, 99);
    assert_eq!(a.response_times.mean(), b.response_times.mean());
    assert_eq!(a.per_server_completed(), b.per_server_completed());
    let c = run(0.85, PolicyKind::Static { threshold: 4 }, 1_500, 100);
    assert_ne!(a.response_times.mean(), c.response_times.mean());
}
