//! Integration test: the load balancer's periodic flow-table expiry sweep.
//!
//! Long-idle flows must disappear from the flow table (so the table does not
//! grow without bound across a 24-hour replay), while the stickiness of
//! active flows is unaffected.

use srlb::core::dispatch::RandomDispatcher;
use srlb::core::{FlowTable, LoadBalancerNode};
use srlb::net::{AddressPlan, Packet, PacketBuilder, ServerId, TcpFlags};
use srlb::server::server_node::encode_request_payload;
use srlb::server::{Directory, PolicyConfig, ServerConfig, ServerNode};
use srlb::sim::{Context, Network, Node, NodeId, RunUntil, SimDuration, SimTime, Topology};

/// A client that opens one connection at start-up and nothing else.
#[derive(Debug)]
struct OneShotClient {
    lb: NodeId,
    responses: u32,
}

impl Node<Packet> for OneShotClient {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        let plan = AddressPlan::default();
        let syn = PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
            .ports(55_000, 80)
            .flags(TcpFlags::SYN)
            .build();
        ctx.send(self.lb, syn);
    }

    fn on_message(&mut self, packet: Packet, _from: NodeId, ctx: &mut Context<'_, Packet>) {
        let plan = AddressPlan::default();
        if packet.is_syn_ack() {
            let request = PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
                .ports(55_000, 80)
                .flags(TcpFlags::ACK | TcpFlags::PSH)
                .payload(encode_request_payload(1, SimDuration::from_millis(10)))
                .build();
            ctx.send(self.lb, request);
        } else if packet.tcp.flags.contains(TcpFlags::PSH) {
            self.responses += 1;
        }
    }
}

#[test]
fn idle_flows_are_swept_from_the_flow_table() {
    let plan = AddressPlan::default();
    let client_id = NodeId(0);
    let lb_id = NodeId(1);
    let server_id = NodeId(2);

    let mut directory = Directory::new();
    directory.register(plan.client_addr(0), client_id);
    directory.register(plan.lb_addr(), lb_id);
    directory.register(plan.vip(0), lb_id);
    directory.register(plan.server_addr(ServerId(0)), server_id);

    let mut net: Network<Packet> = Network::new(1, Topology::datacenter());
    net.add_node(OneShotClient {
        lb: lb_id,
        responses: 0,
    });
    // A short idle timeout and a frequent sweep so the test stays fast.
    let lb = LoadBalancerNode::new(
        plan.lb_addr(),
        plan.vip(0),
        directory.clone(),
        Box::new(RandomDispatcher::single_random(vec![
            plan.server_addr(ServerId(0))
        ])),
    )
    .with_flow_table(FlowTable::new(SimDuration::from_secs(2)))
    .with_expiry_sweep(SimDuration::from_secs(1));
    net.add_node(lb);
    net.add_node(ServerNode::new(
        ServerConfig::paper(
            0,
            plan.server_addr(ServerId(0)),
            plan.lb_addr(),
            PolicyConfig::Static { threshold: 4 },
        ),
        directory,
    ));

    // Shortly after the exchange, the flow is still in the table.
    net.run_until(RunUntil::Time(SimTime::from_secs_f64(0.5)));
    let still_there = net
        .node_as::<LoadBalancerNode>(lb_id)
        .expect("lb node present")
        .flow_table_len();
    assert_eq!(
        still_there, 1,
        "the learned flow is present right after the exchange"
    );

    // Well past the idle timeout, the sweep has removed it.
    net.run_until(RunUntil::Time(SimTime::from_secs_f64(10.0)));
    let after_sweep = net
        .node_as::<LoadBalancerNode>(lb_id)
        .expect("lb node present")
        .flow_table_len();
    assert_eq!(after_sweep, 0, "the idle flow must be swept");

    // The request itself completed normally.
    let client: OneShotClient = net.take_node(client_id).unwrap();
    assert_eq!(client.responses, 1);
    let lb_node: LoadBalancerNode = net.take_node(lb_id).unwrap();
    assert_eq!(lb_node.stats().flows_learned, 1);
}
