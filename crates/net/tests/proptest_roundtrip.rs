//! Property-based tests: wire-format round trips and SR endpoint invariants.

use std::net::Ipv6Addr;

use proptest::prelude::*;
use srlb_net::{
    Ipv6Header, NextHeader, Packet, PacketBuilder, SegmentRoutingHeader, TcpFlags, TcpHeader,
};

fn arb_ipv6_addr() -> impl Strategy<Value = Ipv6Addr> {
    any::<[u8; 16]>().prop_map(Ipv6Addr::from)
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    any::<u8>().prop_map(TcpFlags::from_bits)
}

fn arb_tcp_header() -> impl Strategy<Value = TcpHeader> {
    (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        arb_flags(),
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(
            |(sp, dp, seq, ack, flags, window, checksum, urgent)| TcpHeader {
                source_port: sp,
                destination_port: dp,
                sequence: seq,
                acknowledgment: ack,
                flags,
                window,
                checksum,
                urgent,
            },
        )
}

fn arb_ipv6_header() -> impl Strategy<Value = Ipv6Header> {
    (
        any::<u8>(),
        0u32..=0x000f_ffff,
        any::<u16>(),
        any::<u8>(),
        any::<u8>(),
        arb_ipv6_addr(),
        arb_ipv6_addr(),
    )
        .prop_map(|(tc, fl, plen, nh, hops, src, dst)| Ipv6Header {
            traffic_class: tc,
            flow_label: fl,
            payload_length: plen,
            next_header: NextHeader::from(nh),
            hop_limit: hops,
            source: src,
            destination: dst,
        })
}

fn arb_route() -> impl Strategy<Value = Vec<Ipv6Addr>> {
    prop::collection::vec(arb_ipv6_addr(), 1..=srlb_net::MAX_SEGMENTS)
}

/// The historical `Vec<Ipv6Addr>`-backed SRH encoder, reproduced here as an
/// executable reference: the inline-array representation must emit exactly
/// these bytes for every route it accepts.
fn reference_encode(route: &[Ipv6Addr], tag: u16, flags: u8) -> Vec<u8> {
    let mut wire_order: Vec<Ipv6Addr> = route.to_vec();
    wire_order.reverse();
    let last_entry = (wire_order.len() - 1) as u8;
    let mut out = vec![
        6, // next header: TCP
        (2 * wire_order.len()) as u8,
        4, // routing type 4
        last_entry,
        last_entry,
        flags,
    ];
    out.extend_from_slice(&tag.to_be_bytes());
    for segment in &wire_order {
        out.extend_from_slice(&segment.octets());
    }
    out
}

proptest! {
    #[test]
    fn ipv6_header_roundtrip(hdr in arb_ipv6_header()) {
        let decoded = Ipv6Header::decode(&hdr.encode()).unwrap();
        prop_assert_eq!(decoded, hdr);
    }

    #[test]
    fn tcp_header_roundtrip(hdr in arb_tcp_header()) {
        let (decoded, consumed) = TcpHeader::decode(&hdr.encode()).unwrap();
        prop_assert_eq!(consumed, srlb_net::TCP_HEADER_LEN);
        prop_assert_eq!(decoded, hdr);
    }

    #[test]
    fn srh_roundtrip(route in arb_route(), tag in any::<u16>(), flags in any::<u8>()) {
        let mut srh = SegmentRoutingHeader::from_route(&route).unwrap();
        srh.tag = tag;
        srh.flags = flags;
        let bytes = srh.encode();
        let (decoded, consumed) = SegmentRoutingHeader::decode(&bytes).unwrap();
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, srh);
    }

    #[test]
    fn srh_inline_encoding_matches_vec_reference(
        route in arb_route(),
        tag in any::<u16>(),
        flags in any::<u8>(),
    ) {
        // The inline-array segment list must be byte-identical on the wire
        // to the old heap-Vec representation, for every 1..=MAX_SEGMENTS
        // route (fresh `from_route` headers have segments_left = last
        // entry, as the reference emits).
        let mut srh = SegmentRoutingHeader::from_route(&route).unwrap();
        srh.tag = tag;
        srh.flags = flags;
        prop_assert_eq!(srh.encode(), reference_encode(&route, tag, flags));
    }

    #[test]
    fn srh_route_accessor_matches_input(route in arb_route()) {
        let srh = SegmentRoutingHeader::from_route(&route).unwrap();
        prop_assert_eq!(srh.route(), route.clone());
        prop_assert_eq!(srh.active_segment(), route[0]);
        prop_assert_eq!(srh.final_segment(), *route.last().unwrap());
    }

    #[test]
    fn srh_advance_visits_route_in_order(route in arb_route()) {
        let mut srh = SegmentRoutingHeader::from_route(&route).unwrap();
        let mut visited = vec![srh.active_segment()];
        while let Ok(next) = srh.advance() {
            visited.push(next);
        }
        prop_assert_eq!(visited, route);
        prop_assert_eq!(srh.segments_left(), 0);
    }

    #[test]
    fn packet_roundtrip(
        src in arb_ipv6_addr(),
        dst in arb_ipv6_addr(),
        route in proptest::option::of(arb_route()),
        tcp in arb_tcp_header(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut builder = PacketBuilder::tcp(src, dst)
            .ports(tcp.source_port, tcp.destination_port)
            .flags(tcp.flags)
            .sequence(tcp.sequence)
            .acknowledgment(tcp.acknowledgment)
            .payload(payload);
        if let Some(route) = route {
            builder = builder.segment_routing(SegmentRoutingHeader::from_route(&route).unwrap());
        }
        let pkt = builder.build();
        let decoded = Packet::decode(&pkt.encode()).unwrap();
        prop_assert_eq!(decoded, pkt);
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Must not panic; errors are fine.
        let _ = Packet::decode(&bytes);
        let _ = Ipv6Header::decode(&bytes);
        let _ = TcpHeader::decode(&bytes);
        let _ = SegmentRoutingHeader::decode(&bytes);
    }

    #[test]
    fn stable_hash_is_direction_invariant_under_flow_key_helpers(
        client in arb_ipv6_addr(),
        vip in arb_ipv6_addr(),
        cport in any::<u16>(),
        vport in any::<u16>(),
    ) {
        let req = PacketBuilder::tcp(client, vip)
            .ports(cport, vport)
            .flags(TcpFlags::SYN)
            .build();
        let reply = PacketBuilder::tcp(vip, client)
            .ports(vport, cport)
            .flags(TcpFlags::SYN_ACK)
            .build();
        prop_assert_eq!(req.flow_key_forward(), reply.flow_key_reverse());
    }
}
