//! Asserts that the per-packet hot path performs **zero heap allocations**:
//! SRH decode, encode into a reused buffer, `Segments Left` manipulation,
//! flow-key extraction/hashing, and whole-packet decode of payload-less
//! packets (every SYN / SYN-ACK the load balancer handles).
//!
//! The whole file is a single `#[test]` so the counting global allocator is
//! never polluted by a concurrently running sibling test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use srlb_net::{AddressPlan, Packet, PacketBuilder, SegmentRoutingHeader, ServerId, TcpFlags};

/// Wraps the system allocator, counting every allocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter has no
// effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Runs `f` and returns `(allocations performed, result)`.
fn counting_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

#[test]
fn per_packet_hot_path_is_allocation_free() {
    let plan = AddressPlan::default();
    let route = vec![
        plan.server_addr(ServerId(3)),
        plan.server_addr(ServerId(7)),
        plan.vip(0),
    ];
    let srh = SegmentRoutingHeader::from_route(&route).unwrap();
    let packet = PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
        .ports(49_152, 80)
        .flags(TcpFlags::SYN)
        .segment_routing(srh.clone())
        .build();
    let srh_bytes = srh.encode();
    let wire = packet.encode();
    // Reused encode buffer, pre-grown once outside the measured region.
    let mut out = Vec::with_capacity(wire.len().max(srh_bytes.len()));

    // SRH decode: the segment list is inline, no Vec per header.
    let (allocs, decoded) = counting_allocs(|| SegmentRoutingHeader::decode(&srh_bytes).unwrap().0);
    assert_eq!(allocs, 0, "SRH decode must not allocate");
    assert_eq!(decoded, srh);

    // SRH encode into a reused buffer.
    let (allocs, ()) = counting_allocs(|| {
        out.clear();
        srh.encode_into(&mut out);
    });
    assert_eq!(allocs, 0, "SRH encode_into a warm buffer must not allocate");
    assert_eq!(out, srh_bytes);

    // Segments Left manipulation (Algorithm 1's local decisions).
    let mut walking = srh.clone();
    let (allocs, _) = counting_allocs(|| {
        walking.advance().unwrap();
        walking.set_segments_left(0).unwrap();
        walking.set_segments_left(2).unwrap();
        walking.active_segment()
    });
    assert_eq!(allocs, 0, "segments-left manipulation must not allocate");

    // Whole-packet decode of a payload-less packet (handshake traffic).
    let (allocs, decoded_packet) = counting_allocs(|| Packet::decode(&wire).unwrap());
    assert_eq!(allocs, 0, "payload-less packet decode must not allocate");
    assert_eq!(decoded_packet, packet);

    // Packet encode into a reused buffer is covered by encode_into above for
    // the SRH; whole-packet encode returns a fresh Vec by design (one
    // allocation), so just sanity-check it is exactly one.
    let (allocs, _) = counting_allocs(|| packet.encode());
    assert!(
        allocs <= 1,
        "packet encode should allocate at most the output Vec, got {allocs}"
    );

    // Flow-key extraction and hashing.
    let (allocs, _) = counting_allocs(|| {
        let key = decoded_packet.flow_key_forward();
        (key.stable_hash(), key.reversed().stable_hash())
    });
    assert_eq!(allocs, 0, "flow-key extraction/hashing must not allocate");

    // SR endpoint behaviour on the packet itself.
    let mut hunted = packet.clone();
    let (allocs, _) = counting_allocs(|| {
        hunted.advance_segment().unwrap();
        hunted.set_segments_left(0).unwrap();
        hunted.current_destination()
    });
    assert_eq!(allocs, 0, "packet SR endpoint operations must not allocate");
}
