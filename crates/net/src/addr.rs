//! Addressing plan of the simulated data centre.
//!
//! The paper assumes an IPv6 data centre in which applications are identified
//! by *virtual IP addresses* (VIPs) and replicated across servers identified
//! by their *physical* addresses.  This module provides a deterministic
//! addressing scheme for clients, servers, the load balancer and VIPs so that
//! every component of the workspace agrees on who is who.

use std::fmt;
use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

/// Identifier of a backend server (0-based index into the server pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u32);

impl ServerId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

impl From<u32> for ServerId {
    fn from(value: u32) -> Self {
        ServerId(value)
    }
}

impl From<ServerId> for u32 {
    fn from(value: ServerId) -> Self {
        value.0
    }
}

/// A virtual IP address identifying a replicated application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Vip(pub Ipv6Addr);

impl Vip {
    /// Returns the underlying IPv6 address.
    pub fn addr(self) -> Ipv6Addr {
        self.0
    }
}

impl fmt::Display for Vip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vip:{}", self.0)
    }
}

impl From<Vip> for Ipv6Addr {
    fn from(value: Vip) -> Self {
        value.0
    }
}

/// Deterministic addressing plan for clients, servers, VIPs and the load
/// balancer.
///
/// The defaults mirror the paper's testbed layout: the load balancer sits at
/// the edge of the data centre and advertises the VIPs; servers have
/// physical addresses on an internal prefix; clients are external.
///
/// # Example
///
/// ```
/// use srlb_net::AddressPlan;
///
/// let plan = AddressPlan::default();
/// assert_ne!(plan.server_addr(srlb_net::ServerId(0)), plan.server_addr(srlb_net::ServerId(1)));
/// assert_eq!(plan.server_of(plan.server_addr(srlb_net::ServerId(5))), Some(srlb_net::ServerId(5)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressPlan {
    /// Prefix (first four 16-bit groups) of server physical addresses.
    server_prefix: [u16; 4],
    /// Prefix of client addresses.
    client_prefix: [u16; 4],
    /// Prefix of VIPs.
    vip_prefix: [u16; 4],
    /// Address of the load balancer itself.
    lb_addr: Ipv6Addr,
}

impl Default for AddressPlan {
    fn default() -> Self {
        AddressPlan {
            server_prefix: [0xfd00, 0x0, 0x0, 0x1],
            client_prefix: [0x2001, 0x0db8, 0xc11e, 0x0],
            vip_prefix: [0x2001, 0x0db8, 0x0001, 0x0],
            lb_addr: Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 0x1b),
        }
    }
}

impl AddressPlan {
    /// Creates a plan with the default prefixes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Address of the load balancer.
    pub fn lb_addr(&self) -> Ipv6Addr {
        self.lb_addr
    }

    /// Physical address of backend server `id`.
    pub fn server_addr(&self, id: impl Into<ServerId>) -> Ipv6Addr {
        let id = id.into();
        let [a, b, c, d] = self.server_prefix;
        Ipv6Addr::new(
            a,
            b,
            c,
            d,
            0,
            0,
            (id.0 >> 16) as u16,
            (id.0 & 0xffff) as u16,
        )
    }

    /// Address of client `id`.
    pub fn client_addr(&self, id: u32) -> Ipv6Addr {
        let [a, b, c, d] = self.client_prefix;
        Ipv6Addr::new(a, b, c, d, 0, 0, (id >> 16) as u16, (id & 0xffff) as u16)
    }

    /// Virtual IP address of application `app`.
    pub fn vip(&self, app: u32) -> Ipv6Addr {
        let [a, b, c, d] = self.vip_prefix;
        Ipv6Addr::new(a, b, c, d, 0, 0, (app >> 16) as u16, (app & 0xffff) as u16)
    }

    /// Virtual IP address of application `app`, wrapped in the [`Vip`] newtype.
    pub fn vip_typed(&self, app: u32) -> Vip {
        Vip(self.vip(app))
    }

    /// Reverse lookup: which server owns `addr`, if any.
    pub fn server_of(&self, addr: Ipv6Addr) -> Option<ServerId> {
        let seg = addr.segments();
        if seg[0..4] == self.server_prefix && seg[4] == 0 && seg[5] == 0 {
            Some(ServerId(((seg[6] as u32) << 16) | seg[7] as u32))
        } else {
            None
        }
    }

    /// Reverse lookup: which client owns `addr`, if any.
    pub fn client_of(&self, addr: Ipv6Addr) -> Option<u32> {
        let seg = addr.segments();
        if seg[0..4] == self.client_prefix && seg[4] == 0 && seg[5] == 0 {
            Some(((seg[6] as u32) << 16) | seg[7] as u32)
        } else {
            None
        }
    }

    /// Returns `true` if `addr` is one of the plan's VIPs.
    pub fn is_vip(&self, addr: Ipv6Addr) -> bool {
        let seg = addr.segments();
        seg[0..4] == self.vip_prefix
    }

    /// Reverse lookup: which application a VIP identifies, if any.
    pub fn app_of(&self, addr: Ipv6Addr) -> Option<u32> {
        let seg = addr.segments();
        if seg[0..4] == self.vip_prefix && seg[4] == 0 && seg[5] == 0 {
            Some(((seg[6] as u32) << 16) | seg[7] as u32)
        } else {
            None
        }
    }

    /// Returns `true` if `addr` belongs to the server prefix.
    pub fn is_server(&self, addr: Ipv6Addr) -> bool {
        self.server_of(addr).is_some()
    }

    /// Iterator over the physical addresses of the first `n` servers.
    pub fn server_addrs(&self, n: u32) -> impl Iterator<Item = Ipv6Addr> + '_ {
        (0..n).map(move |i| self.server_addr(ServerId(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_addresses_are_distinct_and_reversible() {
        let plan = AddressPlan::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u32 {
            let addr = plan.server_addr(ServerId(i));
            assert!(seen.insert(addr), "duplicate address for server {i}");
            assert_eq!(plan.server_of(addr), Some(ServerId(i)));
            assert!(plan.is_server(addr));
            assert!(!plan.is_vip(addr));
            assert!(plan.client_of(addr).is_none());
        }
    }

    #[test]
    fn client_addresses_are_reversible() {
        let plan = AddressPlan::default();
        for i in [0u32, 1, 17, 65535, 65536, 1 << 20] {
            let addr = plan.client_addr(i);
            assert_eq!(plan.client_of(addr), Some(i));
            assert!(plan.server_of(addr).is_none());
        }
    }

    #[test]
    fn vips_are_recognized() {
        let plan = AddressPlan::default();
        let vip = plan.vip(3);
        assert!(plan.is_vip(vip));
        assert_eq!(plan.app_of(vip), Some(3));
        assert!(!plan.is_vip(plan.server_addr(ServerId(3))));
        assert!(!plan.is_vip(plan.lb_addr()));
    }

    #[test]
    fn lb_address_is_not_a_server_or_client() {
        let plan = AddressPlan::default();
        assert!(plan.server_of(plan.lb_addr()).is_none());
        assert!(plan.client_of(plan.lb_addr()).is_none());
    }

    #[test]
    fn server_addrs_iterator_matches_indexed_lookup() {
        let plan = AddressPlan::default();
        let all: Vec<_> = plan.server_addrs(12).collect();
        assert_eq!(all.len(), 12);
        for (i, addr) in all.iter().enumerate() {
            assert_eq!(*addr, plan.server_addr(ServerId(i as u32)));
        }
    }

    #[test]
    fn server_id_display_and_conversions() {
        let id = ServerId(7);
        assert_eq!(id.to_string(), "server-7");
        assert_eq!(u32::from(id), 7);
        assert_eq!(ServerId::from(7u32), id);
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn vip_newtype_roundtrip() {
        let plan = AddressPlan::default();
        let vip = plan.vip_typed(1);
        assert_eq!(vip.addr(), plan.vip(1));
        assert_eq!(Ipv6Addr::from(vip), plan.vip(1));
        assert!(vip.to_string().starts_with("vip:"));
    }
}
