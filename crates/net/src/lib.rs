//! # srlb-net — IPv6 / SRv6 / TCP packet model for SRLB
//!
//! This crate provides the packet-level substrate on which the SRLB load
//! balancer ([paper: *SRLB: The Power of Choices in Load Balancing with
//! Segment Routing*, ICDCS 2017]) operates:
//!
//! * [`Ipv6Header`] — the fixed IPv6 header (RFC 8200),
//! * [`SegmentRoutingHeader`] — the IPv6 Segment Routing extension header
//!   (RFC 8754), the mechanism behind *Service Hunting*,
//! * [`TcpHeader`] / [`TcpFlags`] — enough of TCP to model connection
//!   establishment (SYN / SYN-ACK / ACK / RST / FIN),
//! * [`Packet`] — the composition of the above, with byte-accurate
//!   encoding/decoding,
//! * [`FlowKey`] — 5-tuple flow identification used by the load balancer's
//!   flow table,
//! * [`AddressPlan`] — the addressing scheme of the simulated data centre
//!   (VIPs, server physical addresses, client addresses).
//!
//! The simulator passes [`Packet`] values around in structured form for
//! speed; the wire encoding exists so that the SR behaviour is validated
//! against the actual RFC 8754 format (and is exercised by round-trip
//! property tests).
//!
//! ## Example
//!
//! ```
//! use srlb_net::{AddressPlan, PacketBuilder, SegmentRoutingHeader, TcpFlags};
//!
//! # fn main() -> Result<(), srlb_net::NetError> {
//! let plan = AddressPlan::default();
//! let client = plan.client_addr(0);
//! let vip = plan.vip(0);
//! let candidates = vec![plan.server_addr(3), plan.server_addr(7), vip];
//!
//! // The load balancer builds a SYN carrying a Service Hunting SRH.
//! let packet = PacketBuilder::tcp(client, vip)
//!     .ports(49152, 80)
//!     .flags(TcpFlags::SYN)
//!     .segment_routing(SegmentRoutingHeader::from_route(&candidates)?)
//!     .build();
//!
//! let bytes = packet.encode();
//! let decoded = srlb_net::Packet::decode(&bytes)?;
//! assert_eq!(decoded, packet);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod error;
pub mod flow;
pub mod ipv6;
pub mod packet;
pub mod srh;
pub mod tcp;

pub use addr::{AddressPlan, ServerId, Vip};
pub use error::NetError;
pub use flow::{mix64, FlowKey, Protocol};
pub use ipv6::{Ipv6Header, NextHeader, IPV6_HEADER_LEN};
pub use packet::{Packet, PacketBuilder};
pub use srh::{SegmentRoutingHeader, MAX_SEGMENTS, SRH_FIXED_LEN};
pub use tcp::{RetransmitPolicy, TcpFlags, TcpHeader, TCP_HEADER_LEN};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NetError>;
