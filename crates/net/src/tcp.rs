//! Minimal TCP header model: enough to represent connection establishment
//! (SYN / SYN-ACK / ACK), teardown (FIN) and rejection (RST), which is all the
//! load-balancer control logic observes.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::Result;

/// Length in bytes of the TCP header as encoded by this crate (no options).
pub const TCP_HEADER_LEN: usize = 20;

/// TCP control flags.
///
/// Implemented as a transparent bit set (rather than an enum) because flags
/// combine freely (`SYN | ACK`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// FIN: sender has finished sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronise sequence numbers (connection request).
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: acknowledgment field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// The SYN-ACK combination used for connection acceptance.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);

    /// Builds a flag set from the raw wire bits.
    pub fn from_bits(bits: u8) -> Self {
        TcpFlags(bits)
    }

    /// Raw wire bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Returns `true` if every flag in `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if no flags are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for TcpFlags {
    type Output = TcpFlags;
    fn bitand(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 & rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        if self.contains(TcpFlags::SYN) {
            names.push("SYN");
        }
        if self.contains(TcpFlags::ACK) {
            names.push("ACK");
        }
        if self.contains(TcpFlags::RST) {
            names.push("RST");
        }
        if self.contains(TcpFlags::FIN) {
            names.push("FIN");
        }
        if self.contains(TcpFlags::PSH) {
            names.push("PSH");
        }
        if names.is_empty() {
            write!(f, "-")
        } else {
            write!(f, "{}", names.join("|"))
        }
    }
}

/// A (simplified) TCP header: ports, sequence numbers, flags and window.
///
/// Options are not modelled; the data offset always encodes 5 words.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub source_port: u16,
    /// Destination port.
    pub destination_port: u16,
    /// Sequence number.
    pub sequence: u32,
    /// Acknowledgment number.
    pub acknowledgment: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Checksum (carried verbatim; the simulator does not verify it).
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
}

impl TcpHeader {
    /// Creates a header with the given ports and flags and zeroed counters.
    pub fn new(source_port: u16, destination_port: u16, flags: TcpFlags) -> Self {
        TcpHeader {
            source_port,
            destination_port,
            sequence: 0,
            acknowledgment: 0,
            flags,
            window: 65535,
            checksum: 0,
            urgent: 0,
        }
    }

    /// Returns `true` for a pure SYN (connection request).
    pub fn is_syn(&self) -> bool {
        self.flags.contains(TcpFlags::SYN) && !self.flags.contains(TcpFlags::ACK)
    }

    /// Returns `true` for a SYN-ACK (connection acceptance).
    pub fn is_syn_ack(&self) -> bool {
        self.flags.contains(TcpFlags::SYN) && self.flags.contains(TcpFlags::ACK)
    }

    /// Returns `true` if the RST flag is set.
    pub fn is_rst(&self) -> bool {
        self.flags.contains(TcpFlags::RST)
    }

    /// Returns `true` if the FIN flag is set.
    pub fn is_fin(&self) -> bool {
        self.flags.contains(TcpFlags::FIN)
    }

    /// Encodes the header into `out` (appends exactly [`TCP_HEADER_LEN`] bytes).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.source_port.to_be_bytes());
        out.extend_from_slice(&self.destination_port.to_be_bytes());
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&self.acknowledgment.to_be_bytes());
        out.push(5 << 4); // data offset: 5 words, no options
        out.push(self.flags.bits());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
        out.extend_from_slice(&self.urgent.to_be_bytes());
    }

    /// Encodes the header into a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(TCP_HEADER_LEN);
        self.encode_into(&mut out);
        out
    }

    /// Decodes a header from the start of `bytes`, returning the header and
    /// the number of bytes consumed (the encoded data offset).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] if the buffer is shorter than the data
    /// offset announces, or [`NetError::InvalidLength`] for a data offset
    /// below the minimum of 5 words.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize)> {
        if bytes.len() < TCP_HEADER_LEN {
            return Err(NetError::Truncated {
                what: "tcp header",
                needed: TCP_HEADER_LEN,
                available: bytes.len(),
            });
        }
        let data_offset_words = bytes[12] >> 4;
        if data_offset_words < 5 {
            return Err(NetError::InvalidLength {
                what: "tcp header",
                detail: format!("data offset {data_offset_words} below minimum of 5"),
            });
        }
        let header_len = data_offset_words as usize * 4;
        if bytes.len() < header_len {
            return Err(NetError::Truncated {
                what: "tcp header options",
                needed: header_len,
                available: bytes.len(),
            });
        }
        Ok((
            TcpHeader {
                source_port: u16::from_be_bytes([bytes[0], bytes[1]]),
                destination_port: u16::from_be_bytes([bytes[2], bytes[3]]),
                sequence: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
                acknowledgment: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
                flags: TcpFlags::from_bits(bytes[13]),
                window: u16::from_be_bytes([bytes[14], bytes[15]]),
                checksum: u16::from_be_bytes([bytes[16], bytes[17]]),
                urgent: u16::from_be_bytes([bytes[18], bytes[19]]),
            },
            header_len,
        ))
    }
}

/// End-to-end retransmission parameters: how long a sender waits for the
/// reply to a SYN or request before sending it again, and when it gives up.
///
/// The timeout for attempt `n` (0-based: the wait after the `n`-th
/// transmission) is `timeout_ms × backoff^n`, optionally spread by up to
/// `jitter` (a fraction of the computed timeout) drawn by the caller from
/// its own random stream to avoid synchronized retry storms.  After
/// `max_retries` retransmissions the request is aborted, so a request is
/// transmitted at most `1 + max_retries` times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetransmitPolicy {
    /// Base retransmission timeout in milliseconds.
    // srlb-lint: allow(serde-no-skip) -- always serialised in full so committed fault specs stay self-describing even when a field happens to equal its default
    #[serde(default = "default_timeout_ms")]
    pub timeout_ms: f64,
    /// Exponential backoff factor applied per retry.
    // srlb-lint: allow(serde-no-skip) -- always serialised in full so committed fault specs stay self-describing even when a field happens to equal its default
    #[serde(default = "default_backoff")]
    pub backoff: f64,
    /// Maximum jitter as a fraction of the computed timeout (`0.1` adds up
    /// to 10%).
    // srlb-lint: allow(serde-no-skip) -- always serialised in full so committed fault specs stay self-describing even when a field happens to equal its default
    #[serde(default = "default_jitter")]
    pub jitter: f64,
    /// Number of retransmissions before the request is aborted.
    // srlb-lint: allow(serde-no-skip) -- always serialised in full so committed fault specs stay self-describing even when a field happens to equal its default
    #[serde(default = "default_max_retries")]
    pub max_retries: u32,
}

fn default_timeout_ms() -> f64 {
    200.0
}
fn default_backoff() -> f64 {
    2.0
}
fn default_jitter() -> f64 {
    0.1
}
fn default_max_retries() -> u32 {
    5
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            timeout_ms: default_timeout_ms(),
            backoff: default_backoff(),
            jitter: default_jitter(),
            max_retries: default_max_retries(),
        }
    }
}

impl RetransmitPolicy {
    /// The timeout before retry `retries + 1`, in integer nanoseconds
    /// (before jitter): `timeout_ms × backoff^retries`.
    pub fn timeout_nanos(&self, retries: u32) -> u64 {
        let ms = self.timeout_ms * self.backoff.powi(retries as i32);
        (ms * 1_000_000.0).round() as u64
    }

    /// The largest jitter (in nanoseconds) that may be added to the timeout
    /// for the given retry count.
    pub fn max_jitter_nanos(&self, retries: u32) -> u64 {
        (self.timeout_nanos(retries) as f64 * self.jitter).round() as u64
    }

    /// Checks the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first invalid parameter: a non-positive
    /// timeout, a backoff below 1, or a jitter fraction outside `[0, 1]`.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if !self.timeout_ms.is_finite() || self.timeout_ms <= 0.0 {
            return Err(format!(
                "retransmit timeout {} ms must be positive",
                self.timeout_ms
            ));
        }
        if !self.backoff.is_finite() || self.backoff < 1.0 {
            return Err(format!(
                "retransmit backoff {} must be at least 1",
                self.backoff
            ));
        }
        if !self.jitter.is_finite() || !(0.0..=1.0).contains(&self.jitter) {
            return Err(format!(
                "retransmit jitter {} must be within [0, 1]",
                self.jitter
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_combine_and_query() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert_eq!(f, TcpFlags::SYN_ACK);
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::RST));
        assert!(!f.is_empty());
        assert!(TcpFlags::EMPTY.is_empty());
        assert_eq!((f & TcpFlags::SYN), TcpFlags::SYN);
        let mut g = TcpFlags::EMPTY;
        g |= TcpFlags::FIN;
        assert!(g.contains(TcpFlags::FIN));
    }

    #[test]
    fn flags_display_names_each_bit() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::RST.to_string(), "RST");
        assert_eq!(TcpFlags::EMPTY.to_string(), "-");
        assert_eq!((TcpFlags::FIN | TcpFlags::PSH).to_string(), "FIN|PSH");
    }

    #[test]
    fn retransmit_policy_backs_off_exponentially() {
        let policy = RetransmitPolicy::default();
        policy.validate().unwrap();
        assert_eq!(policy.timeout_nanos(0), 200_000_000);
        assert_eq!(policy.timeout_nanos(1), 400_000_000);
        assert_eq!(policy.timeout_nanos(3), 1_600_000_000);
        assert_eq!(policy.max_jitter_nanos(0), 20_000_000);

        let json = serde_json::to_string(&policy).unwrap();
        let back: RetransmitPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, policy);
        // Omitted fields fall back to the defaults.
        let partial: RetransmitPolicy = serde_json::from_str("{\"max_retries\":2}").unwrap();
        assert_eq!(partial.max_retries, 2);
        assert_eq!(partial.timeout_ms, 200.0);

        assert!(RetransmitPolicy {
            timeout_ms: 0.0,
            ..RetransmitPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RetransmitPolicy {
            backoff: 0.5,
            ..RetransmitPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RetransmitPolicy {
            jitter: 2.0,
            ..RetransmitPolicy::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn classification_helpers() {
        let syn = TcpHeader::new(1000, 80, TcpFlags::SYN);
        assert!(syn.is_syn());
        assert!(!syn.is_syn_ack());
        let syn_ack = TcpHeader::new(80, 1000, TcpFlags::SYN_ACK);
        assert!(syn_ack.is_syn_ack());
        assert!(!syn_ack.is_syn());
        let rst = TcpHeader::new(80, 1000, TcpFlags::RST);
        assert!(rst.is_rst());
        let fin = TcpHeader::new(80, 1000, TcpFlags::FIN | TcpFlags::ACK);
        assert!(fin.is_fin());
    }

    #[test]
    fn roundtrip() {
        let mut hdr = TcpHeader::new(49152, 80, TcpFlags::SYN);
        hdr.sequence = 0xdead_beef;
        hdr.acknowledgment = 0x1234_5678;
        hdr.window = 1024;
        hdr.checksum = 0xabcd;
        hdr.urgent = 7;
        let bytes = hdr.encode();
        assert_eq!(bytes.len(), TCP_HEADER_LEN);
        let (decoded, consumed) = TcpHeader::decode(&bytes).unwrap();
        assert_eq!(consumed, TCP_HEADER_LEN);
        assert_eq!(decoded, hdr);
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = TcpHeader::new(1, 2, TcpFlags::SYN).encode();
        assert!(matches!(
            TcpHeader::decode(&bytes[..10]).unwrap_err(),
            NetError::Truncated { .. }
        ));
    }

    #[test]
    fn decode_rejects_bad_data_offset() {
        let mut bytes = TcpHeader::new(1, 2, TcpFlags::SYN).encode();
        bytes[12] = 2 << 4;
        assert!(matches!(
            TcpHeader::decode(&bytes).unwrap_err(),
            NetError::InvalidLength { .. }
        ));
    }

    #[test]
    fn decode_skips_options_when_data_offset_larger() {
        let mut bytes = TcpHeader::new(1, 2, TcpFlags::SYN).encode();
        bytes[12] = 6 << 4; // 24-byte header
        bytes.extend_from_slice(&[0u8; 4]);
        let (_, consumed) = TcpHeader::decode(&bytes).unwrap();
        assert_eq!(consumed, 24);
    }
}
