//! Full packet composition: IPv6 header, optional SRH, TCP header, payload.

use std::fmt;
use std::net::Ipv6Addr;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::flow::{FlowKey, Protocol};
use crate::ipv6::{Ipv6Header, NextHeader, IPV6_HEADER_LEN};
use crate::srh::SegmentRoutingHeader;
use crate::tcp::{TcpFlags, TcpHeader};
use crate::Result;

/// A structured IPv6/TCP packet, optionally carrying a Segment Routing
/// header.
///
/// The simulator passes packets around in this structured form;
/// [`Packet::encode`] / [`Packet::decode`] provide the byte-accurate wire
/// representation (validated by round-trip property tests).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Fixed IPv6 header.
    pub ipv6: Ipv6Header,
    /// Optional segment routing header.
    pub srh: Option<SegmentRoutingHeader>,
    /// TCP header.
    pub tcp: TcpHeader,
    /// Application payload carried by the packet (zero-copy shared bytes).
    #[serde(with = "bytes_serde")]
    pub payload: Bytes,
}

mod bytes_serde {
    //! Serde helpers so `Bytes` round-trips through serde as a byte vector.
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(bytes: &Bytes, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(bytes)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Bytes, D::Error> {
        let v = Vec::<u8>::deserialize(deserializer)?;
        Ok(Bytes::from(v))
    }
}

impl Packet {
    /// The address the network will deliver this packet to next (the IPv6
    /// destination address).
    pub fn current_destination(&self) -> Ipv6Addr {
        self.ipv6.destination
    }

    /// The source address of the packet.
    pub fn source(&self) -> Ipv6Addr {
        self.ipv6.source
    }

    /// The final destination of the packet: the last SRH segment if an SRH is
    /// present, the IPv6 destination otherwise.
    pub fn final_destination(&self) -> Ipv6Addr {
        match &self.srh {
            Some(srh) => srh.final_segment(),
            None => self.ipv6.destination,
        }
    }

    /// Returns `true` for a pure SYN (new connection request).
    pub fn is_syn(&self) -> bool {
        self.tcp.is_syn()
    }

    /// Returns `true` for a SYN-ACK (connection acceptance).
    pub fn is_syn_ack(&self) -> bool {
        self.tcp.is_syn_ack()
    }

    /// Returns `true` if the RST flag is set.
    pub fn is_rst(&self) -> bool {
        self.tcp.is_rst()
    }

    /// Returns `true` if the FIN flag is set.
    pub fn is_fin(&self) -> bool {
        self.tcp.is_fin()
    }

    /// Extracts the flow key in the client → VIP direction, assuming this
    /// packet travels client → VIP (i.e. as seen by the load balancer on the
    /// way in).
    pub fn flow_key_forward(&self) -> FlowKey {
        FlowKey::new(
            self.ipv6.source,
            self.final_destination(),
            self.tcp.source_port,
            self.tcp.destination_port,
            Protocol::Tcp,
        )
    }

    /// Extracts the flow key in the client → VIP direction, assuming this
    /// packet travels VIP/server → client (i.e. a return packet).
    pub fn flow_key_reverse(&self) -> FlowKey {
        FlowKey::new(
            self.final_destination(),
            self.ipv6.source,
            self.tcp.destination_port,
            self.tcp.source_port,
            Protocol::Tcp,
        )
    }

    /// Advances the SRH to the next segment and rewrites the IPv6 destination
    /// address accordingly (the standard SR endpoint "End" behaviour).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::MissingSegmentRoutingHeader`] if no SRH is present
    /// or [`NetError::NoSegmentsLeft`] if the header is exhausted.
    pub fn advance_segment(&mut self) -> Result<Ipv6Addr> {
        let srh = self
            .srh
            .as_mut()
            .ok_or(NetError::MissingSegmentRoutingHeader)?;
        let next = srh.advance()?;
        self.ipv6.destination = next;
        Ok(next)
    }

    /// Sets `Segments Left` on the SRH and rewrites the IPv6 destination to
    /// the segment it now designates.  Used to express the paper's
    /// `SegmentsLeft ← 0` (deliver locally / jump to VIP) and
    /// `SegmentsLeft ← 1` (forward to second candidate) operations.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::MissingSegmentRoutingHeader`] if no SRH is present
    /// or [`NetError::SegmentsLeftOutOfRange`] for an invalid index.
    pub fn set_segments_left(&mut self, value: u8) -> Result<Ipv6Addr> {
        let srh = self
            .srh
            .as_mut()
            .ok_or(NetError::MissingSegmentRoutingHeader)?;
        srh.set_segments_left(value)?;
        let active = srh.active_segment();
        self.ipv6.destination = active;
        Ok(active)
    }

    /// Inserts (or replaces) a segment routing header, pointing the IPv6
    /// destination at its active segment.
    pub fn insert_srh(&mut self, srh: SegmentRoutingHeader) {
        self.ipv6.destination = srh.active_segment();
        self.srh = Some(srh);
        self.normalize();
    }

    /// Removes the SRH, if any, setting the IPv6 destination to the final
    /// segment (the behaviour of penultimate-segment decapsulation).
    pub fn strip_srh(&mut self) -> Option<SegmentRoutingHeader> {
        let srh = self.srh.take();
        if let Some(ref h) = srh {
            self.ipv6.destination = h.final_segment();
        }
        self.normalize();
        srh
    }

    /// Recomputes the IPv6 `payload_length` and `next_header` fields (and the
    /// SRH `next_header`) so that the structured form matches what
    /// [`Packet::encode`] will emit.  Called automatically by
    /// [`PacketBuilder::build`] and the SRH mutators.
    pub fn normalize(&mut self) {
        self.ipv6.payload_length = (self.encoded_len() - IPV6_HEADER_LEN) as u16;
        self.ipv6.next_header = if self.srh.is_some() {
            NextHeader::Routing
        } else {
            NextHeader::Tcp
        };
        if let Some(srh) = &mut self.srh {
            srh.next_header = NextHeader::Tcp;
        }
    }

    /// Total length of the encoded packet in bytes.
    pub fn encoded_len(&self) -> usize {
        IPV6_HEADER_LEN
            + self.srh.as_ref().map_or(0, |s| s.encoded_len())
            + crate::tcp::TCP_HEADER_LEN
            + self.payload.len()
    }

    /// Encodes the packet to its wire representation.
    ///
    /// The IPv6 `payload_length` and `next_header` fields, and the SRH
    /// `next_header` field, are set consistently regardless of the values
    /// stored in the structured form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        let payload_after_ipv6 = self.encoded_len() - IPV6_HEADER_LEN;

        let mut ipv6 = self.ipv6.clone();
        ipv6.payload_length = payload_after_ipv6 as u16;
        ipv6.next_header = if self.srh.is_some() {
            NextHeader::Routing
        } else {
            NextHeader::Tcp
        };
        ipv6.encode_into(&mut out);

        if let Some(srh) = &self.srh {
            let mut srh = srh.clone();
            srh.next_header = NextHeader::Tcp;
            srh.encode_into(&mut out);
        }
        self.tcp.encode_into(&mut out);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes a packet from its wire representation.
    ///
    /// # Errors
    ///
    /// Returns a [`NetError`] for truncated input, a non-IPv6 version, an
    /// unknown routing header type, or an upper-layer protocol other than
    /// TCP.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let ipv6 = Ipv6Header::decode(bytes)?;
        let mut offset = IPV6_HEADER_LEN;
        let declared_end = IPV6_HEADER_LEN + ipv6.payload_length as usize;
        if bytes.len() < declared_end {
            return Err(NetError::Truncated {
                what: "ipv6 payload",
                needed: declared_end,
                available: bytes.len(),
            });
        }
        let mut next = ipv6.next_header;
        let mut srh = None;
        if next == NextHeader::Routing {
            let (parsed, consumed) = SegmentRoutingHeader::decode(&bytes[offset..declared_end])?;
            next = parsed.next_header;
            srh = Some(parsed);
            offset += consumed;
        }
        if next != NextHeader::Tcp {
            return Err(NetError::UnsupportedProtocol(next.number()));
        }
        let (tcp, consumed) = TcpHeader::decode(&bytes[offset..declared_end])?;
        offset += consumed;
        // `Bytes::new()` is allocation-free, so decoding a payload-less
        // packet (every SYN / SYN-ACK the load balancer handles) performs no
        // heap allocation at all.
        let payload = if offset == declared_end {
            Bytes::new()
        } else {
            Bytes::copy_from_slice(&bytes[offset..declared_end])
        };
        Ok(Packet {
            ipv6,
            srh,
            tcp,
            payload,
        })
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] -> [{}]",
            self.tcp.flags, self.ipv6.source, self.ipv6.destination
        )?;
        if let Some(srh) = &self.srh {
            write!(f, " {srh}")?;
        }
        if !self.payload.is_empty() {
            write!(f, " +{}B", self.payload.len())?;
        }
        Ok(())
    }
}

/// Builder for [`Packet`] values.
///
/// # Example
///
/// ```
/// use srlb_net::{PacketBuilder, TcpFlags};
///
/// let pkt = PacketBuilder::tcp("2001:db8::1".parse().unwrap(), "2001:db8::2".parse().unwrap())
///     .ports(49152, 80)
///     .flags(TcpFlags::SYN)
///     .payload(b"GET / HTTP/1.1".as_slice())
///     .build();
/// assert!(pkt.is_syn());
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    packet: Packet,
}

impl PacketBuilder {
    /// Starts building a TCP packet from `source` to `destination`.
    pub fn tcp(source: Ipv6Addr, destination: Ipv6Addr) -> Self {
        PacketBuilder {
            packet: Packet {
                ipv6: Ipv6Header::new(source, destination, NextHeader::Tcp),
                srh: None,
                tcp: TcpHeader::new(0, 0, TcpFlags::EMPTY),
                payload: Bytes::new(),
            },
        }
    }

    /// Sets source and destination ports.
    pub fn ports(mut self, source: u16, destination: u16) -> Self {
        self.packet.tcp.source_port = source;
        self.packet.tcp.destination_port = destination;
        self
    }

    /// Sets the TCP flags.
    pub fn flags(mut self, flags: TcpFlags) -> Self {
        self.packet.tcp.flags = flags;
        self
    }

    /// Sets the TCP sequence number.
    pub fn sequence(mut self, seq: u32) -> Self {
        self.packet.tcp.sequence = seq;
        self
    }

    /// Sets the TCP acknowledgment number.
    pub fn acknowledgment(mut self, ack: u32) -> Self {
        self.packet.tcp.acknowledgment = ack;
        self
    }

    /// Attaches a segment routing header; the IPv6 destination is rewritten
    /// to the SRH's active segment.
    pub fn segment_routing(mut self, srh: SegmentRoutingHeader) -> Self {
        self.packet.insert_srh(srh);
        self
    }

    /// Sets the payload.
    pub fn payload(mut self, payload: impl Into<Bytes>) -> Self {
        self.packet.payload = payload.into();
        self
    }

    /// Sets the hop limit.
    pub fn hop_limit(mut self, hops: u8) -> Self {
        self.packet.ipv6.hop_limit = hops;
        self
    }

    /// Finishes building the packet, normalising the length and next-header
    /// fields so the structured form agrees with the wire encoding.
    pub fn build(self) -> Packet {
        let mut packet = self.packet;
        packet.normalize();
        packet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, n)
    }

    fn syn_with_srh() -> Packet {
        let srh = SegmentRoutingHeader::from_route(&[a(1), a(2), a(100)]).unwrap();
        PacketBuilder::tcp(a(10), a(100))
            .ports(50000, 80)
            .flags(TcpFlags::SYN)
            .segment_routing(srh)
            .build()
    }

    #[test]
    fn builder_sets_destination_to_active_segment() {
        let pkt = syn_with_srh();
        assert_eq!(pkt.current_destination(), a(1));
        assert_eq!(pkt.final_destination(), a(100));
        assert!(pkt.is_syn());
    }

    #[test]
    fn advance_segment_rewrites_destination() {
        let mut pkt = syn_with_srh();
        assert_eq!(pkt.advance_segment().unwrap(), a(2));
        assert_eq!(pkt.current_destination(), a(2));
        assert_eq!(pkt.advance_segment().unwrap(), a(100));
        assert_eq!(pkt.advance_segment().unwrap_err(), NetError::NoSegmentsLeft);
    }

    #[test]
    fn set_segments_left_rewrites_destination() {
        let mut pkt = syn_with_srh();
        assert_eq!(pkt.set_segments_left(0).unwrap(), a(100));
        assert_eq!(pkt.current_destination(), a(100));
    }

    #[test]
    fn operations_without_srh_fail() {
        let mut pkt = PacketBuilder::tcp(a(1), a(2)).build();
        assert_eq!(
            pkt.advance_segment().unwrap_err(),
            NetError::MissingSegmentRoutingHeader
        );
        assert_eq!(
            pkt.set_segments_left(0).unwrap_err(),
            NetError::MissingSegmentRoutingHeader
        );
        assert!(pkt.strip_srh().is_none());
    }

    #[test]
    fn strip_srh_restores_final_destination() {
        let mut pkt = syn_with_srh();
        let srh = pkt.strip_srh().unwrap();
        assert_eq!(srh.num_segments(), 3);
        assert_eq!(pkt.current_destination(), a(100));
        assert!(pkt.srh.is_none());
    }

    #[test]
    fn flow_keys_are_symmetric() {
        let pkt = syn_with_srh();
        let forward = pkt.flow_key_forward();
        assert_eq!(forward.client(), a(10));
        assert_eq!(forward.vip(), a(100));
        assert_eq!(forward.client_port(), 50000);
        assert_eq!(forward.vip_port(), 80);

        // A reply from the VIP to the client maps to the same key.
        let reply = PacketBuilder::tcp(a(100), a(10))
            .ports(80, 50000)
            .flags(TcpFlags::SYN_ACK)
            .build();
        assert_eq!(reply.flow_key_reverse(), forward);
    }

    #[test]
    fn encode_decode_roundtrip_with_srh() {
        let pkt = syn_with_srh();
        let bytes = pkt.encode();
        assert_eq!(bytes.len(), pkt.encoded_len());
        let decoded = Packet::decode(&bytes).unwrap();
        assert_eq!(decoded, pkt);
    }

    #[test]
    fn encode_decode_roundtrip_without_srh() {
        let pkt = PacketBuilder::tcp(a(1), a(2))
            .ports(1234, 80)
            .flags(TcpFlags::ACK)
            .payload(vec![1u8, 2, 3, 4, 5])
            .build();
        let decoded = Packet::decode(&pkt.encode()).unwrap();
        assert_eq!(decoded, pkt);
        assert_eq!(decoded.payload.as_ref(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn encode_sets_consistent_lengths_and_next_headers() {
        let pkt = syn_with_srh();
        let bytes = pkt.encode();
        // payload length covers SRH + TCP
        let payload_len = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        assert_eq!(payload_len, bytes.len() - IPV6_HEADER_LEN);
        // next header after IPv6 is routing (43), after SRH is TCP (6)
        assert_eq!(bytes[6], 43);
        assert_eq!(bytes[IPV6_HEADER_LEN], 6);
    }

    #[test]
    fn decode_rejects_non_tcp_payload() {
        let mut pkt = PacketBuilder::tcp(a(1), a(2)).build();
        pkt.ipv6.next_header = NextHeader::Udp;
        let mut bytes = pkt.encode();
        // encode() normalises next_header, so corrupt it after the fact
        bytes[6] = 17;
        assert_eq!(
            Packet::decode(&bytes).unwrap_err(),
            NetError::UnsupportedProtocol(17)
        );
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        let pkt = syn_with_srh();
        let bytes = pkt.encode();
        assert!(matches!(
            Packet::decode(&bytes[..bytes.len() - 4]).unwrap_err(),
            NetError::Truncated { .. }
        ));
    }

    #[test]
    fn display_mentions_flags_and_addresses() {
        let pkt = syn_with_srh();
        let text = pkt.to_string();
        assert!(text.contains("SYN"));
        assert!(text.contains("SRH"));
    }
}
