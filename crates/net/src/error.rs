//! Error type for packet parsing and construction.

use std::error::Error;
use std::fmt;

/// Errors produced when parsing or constructing packets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The byte buffer ended before the structure was complete.
    Truncated {
        /// What was being parsed when the buffer ran out.
        what: &'static str,
        /// Number of bytes that would have been needed.
        needed: usize,
        /// Number of bytes actually available.
        available: usize,
    },
    /// The IPv6 version field was not 6.
    InvalidVersion(u8),
    /// The routing header type was not 4 (Segment Routing).
    InvalidRoutingType(u8),
    /// A length field was inconsistent with the data present.
    InvalidLength {
        /// What carried the inconsistent length.
        what: &'static str,
        /// Explanation of the inconsistency.
        detail: String,
    },
    /// `Segments Left` points outside the segment list.
    SegmentsLeftOutOfRange {
        /// The offending `Segments Left` value.
        segments_left: u8,
        /// Number of segments present in the list.
        segments: usize,
    },
    /// A segment list was empty where at least one segment is required.
    EmptySegmentList,
    /// A segment list exceeded the inline maximum
    /// ([`MAX_SEGMENTS`](crate::srh::MAX_SEGMENTS) entries).
    SegmentListTooLong(usize),
    /// An upper-layer protocol that this model does not understand.
    UnsupportedProtocol(u8),
    /// Attempted an SR endpoint operation on a packet without an SRH.
    MissingSegmentRoutingHeader,
    /// Attempted to advance an SRH whose `Segments Left` is already zero.
    NoSegmentsLeft,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated {what}: needed {needed} bytes, only {available} available"
            ),
            NetError::InvalidVersion(v) => write!(f, "invalid IP version {v}, expected 6"),
            NetError::InvalidRoutingType(t) => {
                write!(f, "invalid routing header type {t}, expected 4 (SRH)")
            }
            NetError::InvalidLength { what, detail } => {
                write!(f, "invalid length in {what}: {detail}")
            }
            NetError::SegmentsLeftOutOfRange {
                segments_left,
                segments,
            } => write!(
                f,
                "segments left {segments_left} out of range for a list of {segments} segments"
            ),
            NetError::EmptySegmentList => write!(f, "segment list must not be empty"),
            NetError::SegmentListTooLong(n) => {
                write!(
                    f,
                    "segment list of {n} entries exceeds the supported maximum of {}",
                    crate::srh::MAX_SEGMENTS
                )
            }
            NetError::UnsupportedProtocol(p) => write!(f, "unsupported upper-layer protocol {p}"),
            NetError::MissingSegmentRoutingHeader => {
                write!(f, "packet carries no segment routing header")
            }
            NetError::NoSegmentsLeft => write!(f, "segments left is already zero"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let samples = [
            NetError::Truncated {
                what: "ipv6 header",
                needed: 40,
                available: 12,
            },
            NetError::InvalidVersion(4),
            NetError::InvalidRoutingType(2),
            NetError::InvalidLength {
                what: "srh",
                detail: "hdr ext len 3 does not cover 2 segments".to_string(),
            },
            NetError::SegmentsLeftOutOfRange {
                segments_left: 9,
                segments: 2,
            },
            NetError::EmptySegmentList,
            NetError::SegmentListTooLong(300),
            NetError::UnsupportedProtocol(132),
            NetError::MissingSegmentRoutingHeader,
            NetError::NoSegmentsLeft,
        ];
        for err in samples {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(
                text.chars().next().unwrap().is_lowercase(),
                "error message should start lowercase: {text}"
            );
            assert!(!format!("{err:?}").is_empty());
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }

    #[test]
    fn error_source_is_none() {
        assert!(NetError::EmptySegmentList.source().is_none());
    }
}
