//! Flow identification.
//!
//! The load balancer's only state is a *flow table* mapping flows to the
//! server that accepted them; this module defines the key of that table.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
    /// Any other protocol number.
    Other(u8),
}

impl Protocol {
    /// Protocol number as carried in the IPv6 next-header chain.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }
}

impl From<u8> for Protocol {
    fn from(value: u8) -> Self {
        match value {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

/// A 5-tuple identifying a flow from the point of view of the load balancer:
/// (client address, VIP, client port, VIP port, protocol).
///
/// The key is always expressed in the *client → VIP* direction, regardless of
/// the direction of the packet it was extracted from, so that both directions
/// of a connection map to the same entry.
///
/// The stable 64-bit hash of the tuple is computed once at construction and
/// carried with the key, so per-packet map operations and consistent-hashing
/// decisions never re-hash the tuple fields.  Fields are private to keep the
/// cached hash coherent; use the accessors.
#[derive(Debug, Clone, Copy)]
pub struct FlowKey {
    client: Ipv6Addr,
    vip: Ipv6Addr,
    client_port: u16,
    vip_port: u16,
    protocol: Protocol,
    /// FNV-1a + SplitMix64 finaliser over the tuple fields, cached at
    /// construction.
    hash: u64,
}

impl FlowKey {
    /// Creates a flow key in the client → VIP direction.
    pub fn new(
        client: Ipv6Addr,
        vip: Ipv6Addr,
        client_port: u16,
        vip_port: u16,
        protocol: Protocol,
    ) -> Self {
        FlowKey {
            client,
            vip,
            client_port,
            vip_port,
            protocol,
            hash: Self::compute_hash(client, vip, client_port, vip_port, protocol),
        }
    }

    /// Client (external) address.
    pub fn client(&self) -> Ipv6Addr {
        self.client
    }

    /// Virtual IP address the client targeted.
    pub fn vip(&self) -> Ipv6Addr {
        self.vip
    }

    /// Client source port.
    pub fn client_port(&self) -> u16 {
        self.client_port
    }

    /// Destination (service) port.
    pub fn vip_port(&self) -> u16 {
        self.vip_port
    }

    /// Transport protocol.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The key of the reverse direction (VIP → client); mostly useful in
    /// tests and assertions, since [`FlowKey`]s are normally always stored in
    /// the forward direction.
    pub fn reversed(&self) -> FlowKey {
        FlowKey::new(
            self.vip,
            self.client,
            self.vip_port,
            self.client_port,
            self.protocol,
        )
    }

    /// A stable 64-bit hash of the flow key, usable for consistent hashing
    /// and ECMP-style decisions.  This is a deterministic FNV-1a over the
    /// tuple fields followed by a SplitMix64 finaliser (FNV alone leaves the
    /// high bits poorly mixed for short, similar inputs), so that results
    /// are reproducible across runs and platforms and usable directly as
    /// ring points, table indices or hash-map bucket indices.  It is
    /// computed once at construction, so this accessor is a plain field
    /// load on the per-packet fast path.
    pub fn stable_hash(&self) -> u64 {
        self.hash
    }

    fn compute_hash(
        client: Ipv6Addr,
        vip: Ipv6Addr,
        client_port: u16,
        vip_port: u16,
        protocol: Protocol,
    ) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        };
        for b in client.octets() {
            eat(b);
        }
        for b in vip.octets() {
            eat(b);
        }
        for b in client_port.to_be_bytes() {
            eat(b);
        }
        for b in vip_port.to_be_bytes() {
            eat(b);
        }
        eat(protocol.number());
        mix64(h)
    }
}

/// SplitMix64 finaliser, spreading hash values uniformly over the full
/// 64-bit range.
///
/// This is the single definition shared by the whole workspace:
/// [`FlowKey::stable_hash`] is pre-finalised with it, and the dispatchers in
/// `srlb-core` use the same function for ring points and table indices so
/// the two stay aligned by construction.
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl PartialEq for FlowKey {
    fn eq(&self, other: &Self) -> bool {
        // The cached hash is a fast reject; the tuple comparison keeps
        // correctness under (astronomically unlikely) FNV collisions.
        self.hash == other.hash
            && self.client == other.client
            && self.vip == other.vip
            && self.client_port == other.client_port
            && self.vip_port == other.vip_port
            && self.protocol == other.protocol
    }
}

impl Eq for FlowKey {}

impl Hash for FlowKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Wire/serde form of the key: exactly the 5 tuple fields, so the cached
/// hash never appears in serialized output and is recomputed on load.
#[derive(Serialize, Deserialize)]
struct FlowKeyWire {
    client: Ipv6Addr,
    vip: Ipv6Addr,
    client_port: u16,
    vip_port: u16,
    protocol: Protocol,
}

impl Serialize for FlowKey {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        FlowKeyWire {
            client: self.client,
            vip: self.vip,
            client_port: self.client_port,
            vip_port: self.vip_port,
            protocol: self.protocol,
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for FlowKey {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let wire = FlowKeyWire::deserialize(deserializer)?;
        Ok(FlowKey::new(
            wire.client,
            wire.vip,
            wire.client_port,
            wire.vip_port,
            wire.protocol,
        ))
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}]:{} -> [{}]:{}/{}",
            self.client,
            self.client_port,
            self.vip,
            self.vip_port,
            self.protocol.number()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn key(port: u16) -> FlowKey {
        FlowKey::new(
            "2001:db8::1".parse().unwrap(),
            "2001:db8:1::80".parse().unwrap(),
            port,
            80,
            Protocol::Tcp,
        )
    }

    #[test]
    fn protocol_number_roundtrip() {
        for n in 0..=255u8 {
            assert_eq!(Protocol::from(n).number(), n);
        }
        assert_eq!(Protocol::Tcp.number(), 6);
        assert_eq!(Protocol::Udp.number(), 17);
    }

    #[test]
    fn reversed_twice_is_identity() {
        let k = key(4242);
        assert_eq!(k.reversed().reversed(), k);
        assert_ne!(k.reversed(), k);
    }

    #[test]
    fn accessors_expose_tuple_fields() {
        let k = key(4242);
        assert_eq!(k.client(), "2001:db8::1".parse::<Ipv6Addr>().unwrap());
        assert_eq!(k.vip(), "2001:db8:1::80".parse::<Ipv6Addr>().unwrap());
        assert_eq!(k.client_port(), 4242);
        assert_eq!(k.vip_port(), 80);
        assert_eq!(k.protocol(), Protocol::Tcp);
    }

    #[test]
    fn stable_hash_distinguishes_ports() {
        let mut hashes = std::collections::HashSet::new();
        for port in 1024..2048 {
            assert!(hashes.insert(key(port).stable_hash()));
        }
    }

    #[test]
    fn stable_hash_is_deterministic() {
        assert_eq!(key(1000).stable_hash(), key(1000).stable_hash());
    }

    #[test]
    fn cached_hash_matches_recomputation() {
        // The hash carried by the key is exactly the FNV-1a of the tuple
        // fields, i.e. what a freshly constructed identical key computes.
        let k = key(999);
        let fresh = FlowKey::new(
            k.client(),
            k.vip(),
            k.client_port(),
            k.vip_port(),
            k.protocol(),
        );
        assert_eq!(k.stable_hash(), fresh.stable_hash());
        assert_eq!(k, fresh);
    }

    #[test]
    fn serde_roundtrip_recomputes_hash() {
        let k = key(31000);
        let value = serde::to_value(&k).unwrap();
        // The serialized form carries only the 5 tuple fields.
        match &value {
            serde::Value::Map(fields) => {
                assert_eq!(fields.len(), 5);
                assert!(fields.iter().all(|(name, _)| name != "hash"));
            }
            other => panic!("expected map, got {other:?}"),
        }
        let back: FlowKey = serde::from_value(value).unwrap();
        assert_eq!(back, k);
        assert_eq!(back.stable_hash(), k.stable_hash());
    }

    #[test]
    fn usable_as_hash_map_key() {
        let mut map = HashMap::new();
        map.insert(key(1), "a");
        map.insert(key(2), "b");
        assert_eq!(map.get(&key(1)), Some(&"a"));
        assert_eq!(map.get(&key(2)), Some(&"b"));
        assert_eq!(map.get(&key(3)), None);
    }

    #[test]
    fn display_contains_both_endpoints() {
        let text = key(5).to_string();
        assert!(text.contains("2001:db8::1"));
        assert!(text.contains(":80/6"));
    }
}
