//! Flow identification.
//!
//! The load balancer's only state is a *flow table* mapping flows to the
//! server that accepted them; this module defines the key of that table.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
    /// Any other protocol number.
    Other(u8),
}

impl Protocol {
    /// Protocol number as carried in the IPv6 next-header chain.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }
}

impl From<u8> for Protocol {
    fn from(value: u8) -> Self {
        match value {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

/// A 5-tuple identifying a flow from the point of view of the load balancer:
/// (client address, VIP, client port, VIP port, protocol).
///
/// The key is always expressed in the *client → VIP* direction, regardless of
/// the direction of the packet it was extracted from, so that both directions
/// of a connection map to the same entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowKey {
    /// Client (external) address.
    pub client: Ipv6Addr,
    /// Virtual IP address the client targeted.
    pub vip: Ipv6Addr,
    /// Client source port.
    pub client_port: u16,
    /// Destination (service) port.
    pub vip_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FlowKey {
    /// Creates a flow key in the client → VIP direction.
    pub fn new(
        client: Ipv6Addr,
        vip: Ipv6Addr,
        client_port: u16,
        vip_port: u16,
        protocol: Protocol,
    ) -> Self {
        FlowKey {
            client,
            vip,
            client_port,
            vip_port,
            protocol,
        }
    }

    /// The key of the reverse direction (VIP → client); mostly useful in
    /// tests and assertions, since [`FlowKey`]s are normally always stored in
    /// the forward direction.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            client: self.vip,
            vip: self.client,
            client_port: self.vip_port,
            vip_port: self.client_port,
            protocol: self.protocol,
        }
    }

    /// A stable 64-bit hash of the flow key, usable for consistent hashing
    /// and ECMP-style decisions.  This is *not* the `Hash` impl used by hash
    /// maps; it is a deterministic FNV-1a over the tuple fields so that
    /// results are reproducible across runs and platforms.
    pub fn stable_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        };
        for b in self.client.octets() {
            eat(b);
        }
        for b in self.vip.octets() {
            eat(b);
        }
        for b in self.client_port.to_be_bytes() {
            eat(b);
        }
        for b in self.vip_port.to_be_bytes() {
            eat(b);
        }
        eat(self.protocol.number());
        h
    }
}

impl Hash for FlowKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.stable_hash());
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}]:{} -> [{}]:{}/{}",
            self.client,
            self.client_port,
            self.vip,
            self.vip_port,
            self.protocol.number()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn key(port: u16) -> FlowKey {
        FlowKey::new(
            "2001:db8::1".parse().unwrap(),
            "2001:db8:1::80".parse().unwrap(),
            port,
            80,
            Protocol::Tcp,
        )
    }

    #[test]
    fn protocol_number_roundtrip() {
        for n in 0..=255u8 {
            assert_eq!(Protocol::from(n).number(), n);
        }
        assert_eq!(Protocol::Tcp.number(), 6);
        assert_eq!(Protocol::Udp.number(), 17);
    }

    #[test]
    fn reversed_twice_is_identity() {
        let k = key(4242);
        assert_eq!(k.reversed().reversed(), k);
        assert_ne!(k.reversed(), k);
    }

    #[test]
    fn stable_hash_distinguishes_ports() {
        let mut hashes = std::collections::HashSet::new();
        for port in 1024..2048 {
            assert!(hashes.insert(key(port).stable_hash()));
        }
    }

    #[test]
    fn stable_hash_is_deterministic() {
        assert_eq!(key(1000).stable_hash(), key(1000).stable_hash());
    }

    #[test]
    fn usable_as_hash_map_key() {
        let mut map = HashMap::new();
        map.insert(key(1), "a");
        map.insert(key(2), "b");
        assert_eq!(map.get(&key(1)), Some(&"a"));
        assert_eq!(map.get(&key(2)), Some(&"b"));
        assert_eq!(map.get(&key(3)), None);
    }

    #[test]
    fn display_contains_both_endpoints() {
        let text = key(5).to_string();
        assert!(text.contains("2001:db8::1"));
        assert!(text.contains(":80/6"));
    }
}
