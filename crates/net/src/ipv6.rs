//! Fixed IPv6 header (RFC 8200) encoding and decoding.

use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::Result;

/// Length in bytes of the fixed IPv6 header.
pub const IPV6_HEADER_LEN: usize = 40;

/// Value of the IPv6 `Next Header` field (also used by extension headers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NextHeader {
    /// TCP (protocol number 6).
    Tcp,
    /// UDP (protocol number 17).
    Udp,
    /// IPv6 Routing extension header (protocol number 43); used for the SRH.
    Routing,
    /// No next header (59).
    NoNextHeader,
    /// Any other protocol number.
    Other(u8),
}

impl NextHeader {
    /// Protocol number carried on the wire.
    pub fn number(self) -> u8 {
        match self {
            NextHeader::Tcp => 6,
            NextHeader::Udp => 17,
            NextHeader::Routing => 43,
            NextHeader::NoNextHeader => 59,
            NextHeader::Other(n) => n,
        }
    }
}

impl From<u8> for NextHeader {
    fn from(value: u8) -> Self {
        match value {
            6 => NextHeader::Tcp,
            17 => NextHeader::Udp,
            43 => NextHeader::Routing,
            59 => NextHeader::NoNextHeader,
            other => NextHeader::Other(other),
        }
    }
}

impl From<NextHeader> for u8 {
    fn from(value: NextHeader) -> Self {
        value.number()
    }
}

/// The fixed 40-byte IPv6 header.
///
/// Only the fields that matter to the load balancer model are given dedicated
/// accessors; the header still encodes and decodes every field faithfully.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv6Header {
    /// Traffic class (DSCP + ECN).
    pub traffic_class: u8,
    /// 20-bit flow label; the upper 12 bits are ignored on encode.
    pub flow_label: u32,
    /// Payload length in bytes (everything after the fixed header).
    pub payload_length: u16,
    /// Next header selector.
    pub next_header: NextHeader,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub source: Ipv6Addr,
    /// Destination address.
    pub destination: Ipv6Addr,
}

impl Ipv6Header {
    /// Creates a header with sensible defaults (hop limit 64, empty payload).
    pub fn new(source: Ipv6Addr, destination: Ipv6Addr, next_header: NextHeader) -> Self {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_length: 0,
            next_header,
            hop_limit: 64,
            source,
            destination,
        }
    }

    /// Encodes the header into `out` (appends exactly [`IPV6_HEADER_LEN`] bytes).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let flow = self.flow_label & 0x000f_ffff;
        let first = (6u32 << 28) | ((self.traffic_class as u32) << 20) | flow;
        out.extend_from_slice(&first.to_be_bytes());
        out.extend_from_slice(&self.payload_length.to_be_bytes());
        out.push(self.next_header.number());
        out.push(self.hop_limit);
        out.extend_from_slice(&self.source.octets());
        out.extend_from_slice(&self.destination.octets());
    }

    /// Encodes the header into a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(IPV6_HEADER_LEN);
        self.encode_into(&mut out);
        out
    }

    /// Decodes a header from the start of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] if fewer than 40 bytes are available and
    /// [`NetError::InvalidVersion`] if the version nibble is not 6.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < IPV6_HEADER_LEN {
            return Err(NetError::Truncated {
                what: "ipv6 header",
                needed: IPV6_HEADER_LEN,
                available: bytes.len(),
            });
        }
        let first = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let version = (first >> 28) as u8;
        if version != 6 {
            return Err(NetError::InvalidVersion(version));
        }
        let traffic_class = ((first >> 20) & 0xff) as u8;
        let flow_label = first & 0x000f_ffff;
        let payload_length = u16::from_be_bytes([bytes[4], bytes[5]]);
        let next_header = NextHeader::from(bytes[6]);
        let hop_limit = bytes[7];
        let mut src = [0u8; 16];
        src.copy_from_slice(&bytes[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&bytes[24..40]);
        Ok(Ipv6Header {
            traffic_class,
            flow_label,
            payload_length,
            next_header,
            hop_limit,
            source: Ipv6Addr::from(src),
            destination: Ipv6Addr::from(dst),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv6Header {
        Ipv6Header {
            traffic_class: 0x2e,
            flow_label: 0xabcde,
            payload_length: 1234,
            next_header: NextHeader::Tcp,
            hop_limit: 57,
            source: "2001:db8::1".parse().unwrap(),
            destination: "fd00::42".parse().unwrap(),
        }
    }

    #[test]
    fn encode_is_forty_bytes() {
        assert_eq!(sample().encode().len(), IPV6_HEADER_LEN);
    }

    #[test]
    fn roundtrip_preserves_all_fields() {
        let hdr = sample();
        let decoded = Ipv6Header::decode(&hdr.encode()).unwrap();
        assert_eq!(decoded, hdr);
    }

    #[test]
    fn version_nibble_is_six() {
        let bytes = sample().encode();
        assert_eq!(bytes[0] >> 4, 6);
    }

    #[test]
    fn flow_label_is_masked_to_20_bits() {
        let mut hdr = sample();
        hdr.flow_label = 0xfff_fffff;
        let decoded = Ipv6Header::decode(&hdr.encode()).unwrap();
        assert_eq!(decoded.flow_label, 0x000f_ffff);
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let bytes = sample().encode();
        let err = Ipv6Header::decode(&bytes[..20]).unwrap_err();
        assert!(matches!(err, NetError::Truncated { needed: 40, .. }));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = 0x45; // IPv4-looking version nibble
        assert_eq!(
            Ipv6Header::decode(&bytes).unwrap_err(),
            NetError::InvalidVersion(4)
        );
    }

    #[test]
    fn next_header_number_roundtrip() {
        for n in 0..=255u8 {
            assert_eq!(NextHeader::from(n).number(), n);
            assert_eq!(u8::from(NextHeader::from(n)), n);
        }
        assert_eq!(NextHeader::Tcp.number(), 6);
        assert_eq!(NextHeader::Routing.number(), 43);
        assert_eq!(NextHeader::Udp.number(), 17);
        assert_eq!(NextHeader::NoNextHeader.number(), 59);
    }

    #[test]
    fn new_sets_defaults() {
        let hdr = Ipv6Header::new(
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            NextHeader::Routing,
        );
        assert_eq!(hdr.hop_limit, 64);
        assert_eq!(hdr.payload_length, 0);
        assert_eq!(hdr.next_header, NextHeader::Routing);
    }
}
