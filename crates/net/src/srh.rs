//! IPv6 Segment Routing Header (SRH, RFC 8754).
//!
//! The SRH is the mechanism behind *Service Hunting*: the load balancer
//! inserts an SRH listing candidate servers followed by the VIP, and each
//! candidate's virtual router either delivers the packet locally or advances
//! the header to the next candidate.
//!
//! ## Wire format
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! | Next Header   |  Hdr Ext Len  | Routing Type=4| Segments Left |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |  Last Entry   |     Flags     |              Tag              |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |  Segment List[0] (128 bits, the FINAL segment of the path)    |
//! |  ...                                                          |
//! |  Segment List[n-1] (128 bits, the FIRST segment of the path)  |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```
//!
//! The segment list is stored in *reverse* traversal order: `Segment List[0]`
//! is the last segment and `Segment List[Last Entry]` the first.  The active
//! segment is `Segment List[Segments Left]`.
//!
//! ## Allocation-free representation
//!
//! SRLB routes are short — `k` candidates plus the VIP, with `k + 1 ≤`
//! [`MAX_SEGMENTS`] — so the segment list is stored inline as a
//! fixed-capacity array rather than a heap `Vec`.  Decoding, encoding into a
//! reused buffer and `Segments Left` manipulation therefore never touch the
//! allocator (asserted by the `alloc_free` integration test).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::ipv6::NextHeader;
use crate::Result;

/// Length in bytes of the fixed (non segment-list) part of the SRH.
pub const SRH_FIXED_LEN: usize = 8;

/// Maximum number of segments an SRH can carry in this workspace.
///
/// SRLB Service Hunting routes are `[candidate₁, …, candidateₖ, VIP]` with
/// `k ≤ 7`, so eight inline slots cover every route the load balancer or a
/// server ever builds while keeping the header a fixed-size, allocation-free
/// value.
pub const MAX_SEGMENTS: usize = 8;

/// The SRH's segment list: a fixed-capacity inline array of IPv6 addresses.
///
/// Equality, hashing, ordering of serialization and the `Debug` output all
/// consider only the live prefix, so scratch space beyond `len` can never
/// influence observable behaviour.
#[derive(Clone, Copy)]
struct SegmentList {
    segments: [Ipv6Addr; MAX_SEGMENTS],
    len: u8,
}

impl SegmentList {
    /// Builds a list from a slice in the same order.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptySegmentList`] for an empty slice and
    /// [`NetError::SegmentListTooLong`] for more than [`MAX_SEGMENTS`]
    /// entries.
    fn from_slice(segments: &[Ipv6Addr]) -> Result<Self> {
        if segments.is_empty() {
            return Err(NetError::EmptySegmentList);
        }
        if segments.len() > MAX_SEGMENTS {
            return Err(NetError::SegmentListTooLong(segments.len()));
        }
        let mut list = SegmentList {
            segments: [Ipv6Addr::UNSPECIFIED; MAX_SEGMENTS],
            len: segments.len() as u8,
        };
        list.segments[..segments.len()].copy_from_slice(segments);
        Ok(list)
    }

    fn as_slice(&self) -> &[Ipv6Addr] {
        &self.segments[..self.len as usize]
    }

    fn len(&self) -> usize {
        self.len as usize
    }

    /// Reverses the live prefix in place (wire order ↔ traversal order).
    fn reverse(&mut self) {
        self.segments[..self.len as usize].reverse();
    }
}

impl PartialEq for SegmentList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SegmentList {}

impl Hash for SegmentList {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for SegmentList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl Serialize for SegmentList {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        // Serializes exactly like the historical `Vec<Ipv6Addr>` field: a
        // sequence of address strings, live prefix only.
        self.as_slice().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for SegmentList {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let segments = Vec::<Ipv6Addr>::deserialize(deserializer)?;
        SegmentList::from_slice(&segments)
            .map_err(|e| <D::Error as serde::de::Error>::custom(e.to_string()))
    }
}

/// An IPv6 Segment Routing extension header.
///
/// Segments are stored in wire order (`segment_list[0]` is the final
/// segment); most callers should use the traversal-order constructors and
/// accessors ([`SegmentRoutingHeader::from_route`],
/// [`SegmentRoutingHeader::route`], [`SegmentRoutingHeader::active_segment`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SegmentRoutingHeader {
    /// Protocol of the header following the SRH (normally TCP).
    pub next_header: NextHeader,
    /// Index of the active segment in the wire-order segment list.
    segments_left: u8,
    /// Flags field (unused by SRLB, carried for fidelity).
    pub flags: u8,
    /// Tag field (unused by SRLB, carried for fidelity).
    pub tag: u16,
    /// Segment list in wire order: `[0]` is the final segment.
    segment_list: SegmentList,
}

impl SegmentRoutingHeader {
    /// Builds an SRH from a route given in traversal order: the first element
    /// is the first segment to visit, the last element the final destination
    /// (for Service Hunting: `[candidate1, candidate2, VIP]`).
    ///
    /// `Segments Left` is initialised to point at the first segment, matching
    /// what an SR source node emits.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptySegmentList`] for an empty route and
    /// [`NetError::SegmentListTooLong`] for more than [`MAX_SEGMENTS`]
    /// segments.
    pub fn from_route(route: &[Ipv6Addr]) -> Result<Self> {
        let mut segment_list = SegmentList::from_slice(route)?;
        segment_list.reverse();
        Ok(SegmentRoutingHeader {
            next_header: NextHeader::Tcp,
            segments_left: (segment_list.len() - 1) as u8,
            flags: 0,
            tag: 0,
            segment_list,
        })
    }

    /// Builds an SRH directly from a wire-order segment list and an explicit
    /// `Segments Left` value.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptySegmentList`], [`NetError::SegmentListTooLong`]
    /// or [`NetError::SegmentsLeftOutOfRange`] on invalid input.
    pub fn from_wire_order(segment_list: &[Ipv6Addr], segments_left: u8) -> Result<Self> {
        let segment_list = SegmentList::from_slice(segment_list)?;
        if segments_left as usize >= segment_list.len() {
            return Err(NetError::SegmentsLeftOutOfRange {
                segments_left,
                segments: segment_list.len(),
            });
        }
        Ok(SegmentRoutingHeader {
            next_header: NextHeader::Tcp,
            segments_left,
            flags: 0,
            tag: 0,
            segment_list,
        })
    }

    /// Number of segments in the list.
    pub fn num_segments(&self) -> usize {
        self.segment_list.len()
    }

    /// Current `Segments Left` value.
    pub fn segments_left(&self) -> u8 {
        self.segments_left
    }

    /// The currently active segment, `Segment List[Segments Left]`.
    pub fn active_segment(&self) -> Ipv6Addr {
        self.segment_list.as_slice()[self.segments_left as usize]
    }

    /// The final segment of the path (`Segment List[0]`); for Service Hunting
    /// this is the VIP.
    pub fn final_segment(&self) -> Ipv6Addr {
        self.segment_list.as_slice()[0]
    }

    /// The first segment of the path (`Segment List[Last Entry]`).
    pub fn first_segment(&self) -> Ipv6Addr {
        *self
            .segment_list
            .as_slice()
            .last()
            // srlb-lint: allow(panic-hygiene) -- from_route rejects empty routes, so a constructed SRH always has ≥ 1 segment
            .expect("segment list is never empty")
    }

    /// The `Last Entry` field (index of the last element of the list).
    pub fn last_entry(&self) -> u8 {
        (self.segment_list.len() - 1) as u8
    }

    /// The route in traversal order (first segment first).
    ///
    /// Allocates; intended for reporting and tests.  Fast-path code should
    /// use [`SegmentRoutingHeader::segment_list`] (wire order) or the
    /// positional accessors instead.
    pub fn route(&self) -> Vec<Ipv6Addr> {
        let mut r = self.segment_list.as_slice().to_vec();
        r.reverse();
        r
    }

    /// Wire-order segment list (`[0]` is the final segment).
    pub fn segment_list(&self) -> &[Ipv6Addr] {
        self.segment_list.as_slice()
    }

    /// Advances to the next segment: decrements `Segments Left` and returns
    /// the new active segment, which the forwarder must copy into the IPv6
    /// destination address.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoSegmentsLeft`] if `Segments Left` is already 0.
    pub fn advance(&mut self) -> Result<Ipv6Addr> {
        if self.segments_left == 0 {
            return Err(NetError::NoSegmentsLeft);
        }
        self.segments_left -= 1;
        Ok(self.active_segment())
    }

    /// Sets `Segments Left` to an arbitrary valid value.
    ///
    /// This is how the paper's Algorithm 1 expresses local delivery
    /// (`SegmentsLeft ← 0`) and hand-off to the second candidate
    /// (`SegmentsLeft ← 1`).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::SegmentsLeftOutOfRange`] if `value` does not index
    /// into the segment list.
    pub fn set_segments_left(&mut self, value: u8) -> Result<()> {
        if value as usize >= self.segment_list.len() {
            return Err(NetError::SegmentsLeftOutOfRange {
                segments_left: value,
                segments: self.segment_list.len(),
            });
        }
        self.segments_left = value;
        Ok(())
    }

    /// Length of the encoded header in bytes.
    pub fn encoded_len(&self) -> usize {
        SRH_FIXED_LEN + 16 * self.segment_list.len()
    }

    /// The `Hdr Ext Len` field: header length in 8-octet units, not counting
    /// the first 8 octets.
    pub fn hdr_ext_len(&self) -> u8 {
        (2 * self.segment_list.len()) as u8
    }

    /// Encodes the SRH into `out` (appends [`Self::encoded_len`] bytes).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.next_header.number());
        out.push(self.hdr_ext_len());
        out.push(4); // routing type 4 = segment routing
        out.push(self.segments_left);
        out.push(self.last_entry());
        out.push(self.flags);
        out.extend_from_slice(&self.tag.to_be_bytes());
        for segment in self.segment_list.as_slice() {
            out.extend_from_slice(&segment.octets());
        }
    }

    /// Encodes the SRH into a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes an SRH from the start of `bytes`, returning the header and the
    /// number of bytes consumed.  Performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns a [`NetError`] if the buffer is truncated, the routing type is
    /// not 4, the length fields are inconsistent, or the segment list exceeds
    /// [`MAX_SEGMENTS`] entries.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize)> {
        if bytes.len() < SRH_FIXED_LEN {
            return Err(NetError::Truncated {
                what: "segment routing header",
                needed: SRH_FIXED_LEN,
                available: bytes.len(),
            });
        }
        let next_header = NextHeader::from(bytes[0]);
        let hdr_ext_len = bytes[1];
        let routing_type = bytes[2];
        if routing_type != 4 {
            return Err(NetError::InvalidRoutingType(routing_type));
        }
        let segments_left = bytes[3];
        let last_entry = bytes[4];
        let flags = bytes[5];
        let tag = u16::from_be_bytes([bytes[6], bytes[7]]);

        let total_len = SRH_FIXED_LEN + 8 * hdr_ext_len as usize;
        if bytes.len() < total_len {
            return Err(NetError::Truncated {
                what: "segment routing header segment list",
                needed: total_len,
                available: bytes.len(),
            });
        }
        let n_segments = last_entry as usize + 1;
        if n_segments > MAX_SEGMENTS {
            return Err(NetError::SegmentListTooLong(n_segments));
        }
        if 16 * n_segments != 8 * hdr_ext_len as usize {
            return Err(NetError::InvalidLength {
                what: "segment routing header",
                detail: format!(
                    "hdr ext len {hdr_ext_len} inconsistent with last entry {last_entry}"
                ),
            });
        }
        if segments_left as usize >= n_segments {
            return Err(NetError::SegmentsLeftOutOfRange {
                segments_left,
                segments: n_segments,
            });
        }
        let mut segment_list = SegmentList {
            segments: [Ipv6Addr::UNSPECIFIED; MAX_SEGMENTS],
            len: n_segments as u8,
        };
        for i in 0..n_segments {
            let start = SRH_FIXED_LEN + 16 * i;
            let mut octets = [0u8; 16];
            octets.copy_from_slice(&bytes[start..start + 16]);
            segment_list.segments[i] = Ipv6Addr::from(octets);
        }
        Ok((
            SegmentRoutingHeader {
                next_header,
                segments_left,
                flags,
                tag,
                segment_list,
            },
            total_len,
        ))
    }
}

impl fmt::Display for SegmentRoutingHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SRH(sl={}, route=[", self.segments_left)?;
        for (i, seg) in self.segment_list.as_slice().iter().rev().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{seg}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<Ipv6Addr> {
        (0..n)
            .map(|i| Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, i as u16 + 1))
            .collect()
    }

    #[test]
    fn from_route_points_at_first_segment() {
        let route = addrs(3);
        let srh = SegmentRoutingHeader::from_route(&route).unwrap();
        assert_eq!(srh.segments_left(), 2);
        assert_eq!(srh.active_segment(), route[0]);
        assert_eq!(srh.final_segment(), route[2]);
        assert_eq!(srh.first_segment(), route[0]);
        assert_eq!(srh.route(), route);
        assert_eq!(srh.num_segments(), 3);
        assert_eq!(srh.last_entry(), 2);
    }

    #[test]
    fn empty_route_is_rejected() {
        assert_eq!(
            SegmentRoutingHeader::from_route(&[]).unwrap_err(),
            NetError::EmptySegmentList
        );
    }

    #[test]
    fn oversized_route_is_rejected() {
        let route = addrs(MAX_SEGMENTS + 1);
        assert_eq!(
            SegmentRoutingHeader::from_route(&route).unwrap_err(),
            NetError::SegmentListTooLong(MAX_SEGMENTS + 1)
        );
    }

    #[test]
    fn max_segments_route_roundtrips() {
        let route = addrs(MAX_SEGMENTS);
        let srh = SegmentRoutingHeader::from_route(&route).unwrap();
        assert_eq!(srh.num_segments(), MAX_SEGMENTS);
        assert_eq!(srh.route(), route);
        let (decoded, consumed) = SegmentRoutingHeader::decode(&srh.encode()).unwrap();
        assert_eq!(consumed, srh.encoded_len());
        assert_eq!(decoded, srh);
    }

    #[test]
    fn advance_walks_the_route_in_order() {
        let route = addrs(4);
        let mut srh = SegmentRoutingHeader::from_route(&route).unwrap();
        assert_eq!(srh.active_segment(), route[0]);
        assert_eq!(srh.advance().unwrap(), route[1]);
        assert_eq!(srh.advance().unwrap(), route[2]);
        assert_eq!(srh.advance().unwrap(), route[3]);
        assert_eq!(srh.advance().unwrap_err(), NetError::NoSegmentsLeft);
    }

    #[test]
    fn set_segments_left_models_service_hunting_decisions() {
        let route = addrs(3); // [candidate1, candidate2, vip]
        let mut srh = SegmentRoutingHeader::from_route(&route).unwrap();
        // Candidate 1 refuses: SegmentsLeft <- 1 (second candidate).
        srh.set_segments_left(1).unwrap();
        assert_eq!(srh.active_segment(), route[1]);
        // Candidate 2 accepts: SegmentsLeft <- 0 (deliver to application/VIP).
        srh.set_segments_left(0).unwrap();
        assert_eq!(srh.active_segment(), route[2]);
        // Out-of-range values are rejected.
        assert!(matches!(
            srh.set_segments_left(3),
            Err(NetError::SegmentsLeftOutOfRange { .. })
        ));
    }

    #[test]
    fn encode_matches_rfc8754_layout() {
        let route = addrs(2);
        let srh = SegmentRoutingHeader::from_route(&route).unwrap();
        let bytes = srh.encode();
        assert_eq!(bytes.len(), 8 + 32);
        assert_eq!(bytes[0], 6); // next header: TCP
        assert_eq!(bytes[1], 4); // hdr ext len: 2 segments * 2
        assert_eq!(bytes[2], 4); // routing type 4
        assert_eq!(bytes[3], 1); // segments left
        assert_eq!(bytes[4], 1); // last entry
                                 // Segment List[0] must be the FINAL segment of the path.
        assert_eq!(&bytes[8..24], &route[1].octets());
        assert_eq!(&bytes[24..40], &route[0].octets());
    }

    #[test]
    fn decode_roundtrip() {
        for n in 1..=MAX_SEGMENTS {
            let route = addrs(n);
            let mut srh = SegmentRoutingHeader::from_route(&route).unwrap();
            srh.tag = 0xbeef;
            srh.flags = 0x08;
            let bytes = srh.encode();
            let (decoded, consumed) = SegmentRoutingHeader::decode(&bytes).unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, srh);
        }
    }

    #[test]
    fn decode_rejects_wrong_routing_type() {
        let mut bytes = SegmentRoutingHeader::from_route(&addrs(2))
            .unwrap()
            .encode();
        bytes[2] = 0;
        assert_eq!(
            SegmentRoutingHeader::decode(&bytes).unwrap_err(),
            NetError::InvalidRoutingType(0)
        );
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = SegmentRoutingHeader::from_route(&addrs(2))
            .unwrap()
            .encode();
        assert!(matches!(
            SegmentRoutingHeader::decode(&bytes[..4]).unwrap_err(),
            NetError::Truncated { .. }
        ));
        assert!(matches!(
            SegmentRoutingHeader::decode(&bytes[..20]).unwrap_err(),
            NetError::Truncated { .. }
        ));
    }

    #[test]
    fn decode_rejects_inconsistent_lengths() {
        let mut bytes = SegmentRoutingHeader::from_route(&addrs(2))
            .unwrap()
            .encode();
        bytes[4] = 0; // last entry says 1 segment but hdr ext len says 2
        assert!(matches!(
            SegmentRoutingHeader::decode(&bytes).unwrap_err(),
            NetError::InvalidLength { .. }
        ));
    }

    #[test]
    fn decode_rejects_segments_left_out_of_range() {
        let mut bytes = SegmentRoutingHeader::from_route(&addrs(2))
            .unwrap()
            .encode();
        bytes[3] = 7;
        assert!(matches!(
            SegmentRoutingHeader::decode(&bytes).unwrap_err(),
            NetError::SegmentsLeftOutOfRange { .. }
        ));
    }

    #[test]
    fn decode_rejects_oversized_segment_list() {
        // A syntactically plausible SRH announcing 16 segments: more than
        // the inline capacity, so it must be rejected (SRLB never emits
        // routes this long).
        let n = 16u8;
        let mut bytes = vec![6u8, 2 * n, 4, 0, n - 1, 0, 0, 0];
        bytes.extend(std::iter::repeat_n(0u8, 16 * n as usize));
        assert_eq!(
            SegmentRoutingHeader::decode(&bytes).unwrap_err(),
            NetError::SegmentListTooLong(16)
        );
    }

    #[test]
    fn from_wire_order_validates() {
        let list = addrs(3);
        let srh = SegmentRoutingHeader::from_wire_order(&list, 1).unwrap();
        assert_eq!(srh.segments_left(), 1);
        assert_eq!(srh.active_segment(), list[1]);
        assert!(SegmentRoutingHeader::from_wire_order(&[], 0).is_err());
        assert!(SegmentRoutingHeader::from_wire_order(&list, 3).is_err());
    }

    #[test]
    fn equality_ignores_scratch_capacity() {
        // Two SRHs with the same live segments compare equal regardless of
        // how their inline scratch space was produced.
        let route = addrs(2);
        let a = SegmentRoutingHeader::from_route(&route).unwrap();
        let b = SegmentRoutingHeader::decode(&a.encode()).unwrap().0;
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn display_lists_route_in_traversal_order() {
        let route = addrs(2);
        let srh = SegmentRoutingHeader::from_route(&route).unwrap();
        let text = srh.to_string();
        assert!(text.contains("sl=1"));
        let first = text.find(&route[0].to_string()).unwrap();
        let second = text.find(&route[1].to_string()).unwrap();
        assert!(first < second);
    }
}
