//! Processor-sharing CPU model.
//!
//! The paper's servers are 2-core VMs running Apache with 32 worker threads:
//! every busy worker thread contends for the same two cores, so when many
//! threads are busy each request progresses proportionally slower.  This is
//! the application state SRLB exploits — a server with few busy threads will
//! finish a request quickly, one with many will not — so modelling it is
//! essential to reproducing the paper's results.
//!
//! [`ProcessorSharingCpu`] implements the classic egalitarian
//! processor-sharing discipline: with `b` busy threads on `c` cores, each
//! thread receives `min(1, c/b)` of a core.  The simulation advances the
//! remaining work of every running job lazily (on each arrival or
//! completion) and exposes the next completion instant so the owning node
//! can schedule a single wake-up timer.

use std::collections::BTreeMap;

use srlb_sim::{SimDuration, SimTime};

/// Remaining-work accounting for jobs sharing a fixed number of cores.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorSharingCpu {
    cores: f64,
    /// Remaining CPU demand of each running job, in seconds of dedicated-core
    /// time.  A `BTreeMap` so every traversal — the lazy work advance, the
    /// minimum-remaining scan and especially the completed-job sweep that
    /// feeds response ordering — runs in job-id order by construction,
    /// with no per-instance hash randomness to depend on.
    remaining: BTreeMap<u64, f64>,
    last_update: SimTime,
}

impl ProcessorSharingCpu {
    /// Creates a CPU with the given number of cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "at least one core is required");
        ProcessorSharingCpu {
            cores: cores as f64,
            remaining: BTreeMap::new(),
            last_update: SimTime::ZERO,
        }
    }

    /// Changes the number of cores at runtime (capacity re-provisioning in
    /// dynamic-cluster scenarios).  Work already performed is preserved:
    /// running jobs are advanced to `now` at the old rate before the new
    /// core count takes effect.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn set_cores(&mut self, cores: usize, now: SimTime) {
        assert!(cores > 0, "at least one core is required");
        self.progress_to(now);
        self.cores = cores as f64;
    }

    /// Number of jobs currently running.
    pub fn job_count(&self) -> usize {
        self.remaining.len()
    }

    /// Returns `true` if no job is running.
    pub fn is_idle(&self) -> bool {
        self.remaining.is_empty()
    }

    /// The per-job service rate (fraction of a dedicated core) at the current
    /// multiprogramming level.
    pub fn rate(&self) -> f64 {
        let n = self.remaining.len() as f64;
        if n == 0.0 {
            1.0
        } else {
            (self.cores / n).min(1.0)
        }
    }

    /// Advances every running job's remaining work to `now`.
    pub fn progress_to(&mut self, now: SimTime) {
        let elapsed = now.duration_since(self.last_update).as_secs_f64();
        if elapsed > 0.0 && !self.remaining.is_empty() {
            let rate = self.rate();
            for work in self.remaining.values_mut() {
                *work -= elapsed * rate;
            }
        }
        if now > self.last_update {
            self.last_update = now;
        }
    }

    /// Adds a job with the given CPU demand, advancing existing jobs first.
    ///
    /// # Panics
    ///
    /// Panics if a job with the same id is already running.
    pub fn add_job(&mut self, id: u64, demand: SimDuration, now: SimTime) {
        self.progress_to(now);
        let previous = self.remaining.insert(id, demand.as_secs_f64());
        assert!(previous.is_none(), "job {id} is already running");
    }

    /// Removes a job regardless of its remaining work (connection aborted).
    /// Returns `true` if the job was running.
    pub fn abort_job(&mut self, id: u64, now: SimTime) -> bool {
        self.progress_to(now);
        self.remaining.remove(&id).is_some()
    }

    /// Advances to `now` and removes every job whose remaining work has
    /// dropped to (approximately) zero, returning their ids sorted
    /// ascending for determinism.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<u64> {
        self.progress_to(now);
        // One microsecond of dedicated-core work: far below any meaningful
        // request cost, far above the sub-nanosecond error introduced by
        // rounding completion times to integer nanoseconds, so completions
        // are always detected by the timer scheduled from
        // [`ProcessorSharingCpu::next_completion`].
        const EPSILON: f64 = 1e-6;
        // BTreeMap iteration is id-ordered, so the returned list is sorted
        // ascending by construction.
        let done: Vec<u64> = self
            .remaining
            .iter()
            .filter(|(_, &w)| w <= EPSILON)
            .map(|(&id, _)| id)
            .collect();
        for id in &done {
            self.remaining.remove(id);
        }
        done
    }

    /// The absolute time at which the next job will complete if no further
    /// job arrives, or `None` if the CPU is idle.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let min_remaining = self
            .remaining
            .values()
            .fold(f64::INFINITY, |acc, &w| acc.min(w));
        if !min_remaining.is_finite() {
            return None;
        }
        let rate = self.rate();
        let delay_seconds = (min_remaining / rate).max(0.0);
        Some(now + SimDuration::from_secs_f64(delay_seconds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn single_job_on_idle_cpu_runs_at_full_speed() {
        let mut cpu = ProcessorSharingCpu::new(2);
        assert!(cpu.is_idle());
        cpu.add_job(1, SimDuration::from_millis(100), t(0));
        assert_eq!(cpu.job_count(), 1);
        assert_eq!(cpu.rate(), 1.0);
        assert_eq!(cpu.next_completion(t(0)), Some(t(100)));
        assert!(cpu.take_completed(t(99)).is_empty());
        assert_eq!(cpu.take_completed(t(100)), vec![1]);
        assert!(cpu.is_idle());
    }

    #[test]
    fn jobs_beyond_core_count_share_the_cpu() {
        let mut cpu = ProcessorSharingCpu::new(2);
        // Four 100 ms jobs on two cores: each runs at half speed -> 200 ms.
        for id in 0..4 {
            cpu.add_job(id, SimDuration::from_millis(100), t(0));
        }
        assert_eq!(cpu.rate(), 0.5);
        assert_eq!(cpu.next_completion(t(0)), Some(t(200)));
        let done = cpu.take_completed(t(200));
        assert_eq!(done, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fewer_jobs_than_cores_run_at_full_speed() {
        let mut cpu = ProcessorSharingCpu::new(4);
        cpu.add_job(0, SimDuration::from_millis(50), t(0));
        cpu.add_job(1, SimDuration::from_millis(80), t(0));
        assert_eq!(cpu.rate(), 1.0);
        assert_eq!(cpu.next_completion(t(0)), Some(t(50)));
        assert_eq!(cpu.take_completed(t(50)), vec![0]);
        assert_eq!(cpu.next_completion(t(50)), Some(t(80)));
        assert_eq!(cpu.take_completed(t(80)), vec![1]);
    }

    #[test]
    fn late_arrival_slows_down_the_running_job() {
        let mut cpu = ProcessorSharingCpu::new(1);
        cpu.add_job(0, SimDuration::from_millis(100), t(0));
        // After 50 ms, job 0 has 50 ms of work left; a second job arrives and
        // they now share the single core, so job 0 needs 100 ms more.
        cpu.add_job(1, SimDuration::from_millis(100), t(50));
        assert_eq!(cpu.rate(), 0.5);
        assert_eq!(cpu.next_completion(t(50)), Some(t(150)));
        assert_eq!(cpu.take_completed(t(150)), vec![0]);
        // Job 1 then has 50 ms left at full speed.
        assert_eq!(cpu.next_completion(t(150)), Some(t(200)));
        assert_eq!(cpu.take_completed(t(200)), vec![1]);
    }

    #[test]
    fn abort_removes_work_and_speeds_up_the_rest() {
        let mut cpu = ProcessorSharingCpu::new(1);
        cpu.add_job(0, SimDuration::from_millis(100), t(0));
        cpu.add_job(1, SimDuration::from_millis(100), t(0));
        assert!(cpu.abort_job(1, t(50)));
        assert!(!cpu.abort_job(1, t(50)));
        // Job 0 progressed 25 ms (half speed for 50 ms); 75 ms remain at full
        // speed.
        assert_eq!(cpu.next_completion(t(50)), Some(t(125)));
    }

    #[test]
    fn processor_sharing_trajectory_is_exact() {
        // Jobs of 50 / 100 / 250 ms on 2 cores, all present from t = 0.
        // Phase 1 (3 jobs, rate 2/3 each): job 0 finishes at 75 ms.
        // Phase 2 (2 jobs, rate 1 each): job 1 had 50 ms left -> 125 ms.
        // Phase 3 (1 job, rate 1): job 2 had 150 ms left -> 275 ms.
        let mut cpu = ProcessorSharingCpu::new(2);
        cpu.add_job(0, SimDuration::from_millis(50), t(0));
        cpu.add_job(1, SimDuration::from_millis(100), t(0));
        cpu.add_job(2, SimDuration::from_millis(250), t(0));
        let mut now = t(0);
        let mut completions = Vec::new();
        while let Some(next) = cpu.next_completion(now) {
            now = next;
            for id in cpu.take_completed(now) {
                completions.push((id, now.as_secs_f64()));
            }
        }
        assert_eq!(completions.len(), 3);
        let expected = [(0u64, 0.075), (1, 0.125), (2, 0.275)];
        for ((id, at), (exp_id, exp_at)) in completions.iter().zip(expected) {
            assert_eq!(*id, exp_id);
            assert!(
                (at - exp_at).abs() < 1e-6,
                "job {id} completed at {at}, expected {exp_at}"
            );
        }
    }

    #[test]
    fn set_cores_preserves_progress() {
        let mut cpu = ProcessorSharingCpu::new(1);
        // Two 100 ms jobs share one core; after 100 ms each has 50 ms left.
        cpu.add_job(0, SimDuration::from_millis(100), t(0));
        cpu.add_job(1, SimDuration::from_millis(100), t(0));
        cpu.set_cores(2, t(100));
        // With two cores both now run at full speed: done 50 ms later.
        assert_eq!(cpu.rate(), 1.0);
        assert_eq!(cpu.next_completion(t(100)), Some(t(150)));
        assert_eq!(cpu.take_completed(t(150)), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn set_cores_to_zero_panics() {
        ProcessorSharingCpu::new(1).set_cores(0, t(0));
    }

    #[test]
    fn idle_cpu_has_no_completion() {
        let cpu = ProcessorSharingCpu::new(2);
        assert_eq!(cpu.next_completion(t(10)), None);
    }

    #[test]
    #[should_panic(expected = "already running")]
    fn duplicate_job_id_panics() {
        let mut cpu = ProcessorSharingCpu::new(1);
        cpu.add_job(0, SimDuration::from_millis(10), t(0));
        cpu.add_job(0, SimDuration::from_millis(10), t(0));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        ProcessorSharingCpu::new(0);
    }
}
