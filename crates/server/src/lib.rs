//! # srlb-server — the backend server model
//!
//! This crate models the application servers of the SRLB testbed: in the
//! paper, twelve 2-core VMs each running an Apache HTTP server
//! (`mpm_prefork`, 32 worker threads, TCP backlog of 128,
//! `tcp_abort_on_overflow` enabled) behind a VPP virtual router with the
//! SRLB *server agent* plugin.  Here each server is a single simulation node
//! composed of:
//!
//! * [`WorkerPool`] — the fixed pool of worker threads; its [`Scoreboard`]
//!   (busy/idle counts) is the application state the paper's agent reads
//!   from Apache's scoreboard shared memory,
//! * [`ProcessorSharingCpu`] — the 2-core CPU every busy worker thread
//!   contends for; this contention is what makes a loaded server slow and is
//!   the signal the acceptance policies exploit,
//! * [`Backlog`] — the TCP accept queue; when it overflows the connection is
//!   reset, mirroring `tcp_abort_on_overflow`,
//! * [`AcceptPolicy`] — the connection acceptance policies of Section III:
//!   the static [`policy::StaticThreshold`] (SRc) and the dynamic
//!   [`policy::DynamicThreshold`] (SRdyn), plus always/never baselines,
//! * [`VirtualRouter`] — the SR endpoint behaviour of Algorithm 1: decide
//!   locally whether to deliver a hunted connection to the application or to
//!   forward it to the next candidate,
//! * [`ServerNode`] — the [`srlb_sim::Node`] tying it all together: TCP
//!   handshakes, request service with per-request CPU demand, backlog
//!   queueing, RST on overflow, and response generation,
//! * [`Directory`] — the mapping between data-plane IPv6 addresses and
//!   simulation node ids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agent;
pub mod backlog;
pub mod cpu;
pub mod directory;
pub mod policy;
pub mod server_node;
pub mod vrouter;
pub mod worker;

pub use agent::ApplicationAgent;
pub use backlog::Backlog;
pub use cpu::ProcessorSharingCpu;
pub use directory::{tier_members, Directory, TierMembers};
pub use policy::{AcceptDecision, AcceptPolicy, PolicyConfig};
pub use server_node::{ServerConfig, ServerNode, ServerStats};
pub use vrouter::{RouterAction, VirtualRouter};
pub use worker::{Scoreboard, WorkerId, WorkerPool};
