//! The worker-thread pool and its scoreboard.
//!
//! Models Apache's `mpm_prefork` worker model used in the paper's testbed:
//! a fixed pool of worker threads, each either idle or busy serving exactly
//! one request.  The pool's [`Scoreboard`] (busy/idle counts) is the
//! application state the SRLB agent exposes to the virtual router.

use serde::{Deserialize, Serialize};

/// Identifier of a worker thread within one server's pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub usize);

/// A snapshot of the pool state, equivalent to what the paper's agent reads
/// from Apache's scoreboard shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scoreboard {
    /// Number of busy worker threads.
    pub busy: usize,
    /// Total number of worker threads.
    pub total: usize,
}

impl Scoreboard {
    /// Number of idle worker threads.
    pub fn idle(&self) -> usize {
        self.total - self.busy
    }

    /// Utilisation in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.busy as f64 / self.total as f64
        }
    }
}

/// A pool of worker threads.
///
/// The pool size is normally fixed (Apache's `mpm_prefork` model), but it
/// can be [resized](WorkerPool::resize) at runtime to model heterogeneous
/// or re-provisioned servers in dynamic-cluster scenarios.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerPool {
    /// `true` for busy workers.
    busy: Vec<bool>,
    busy_count: usize,
    /// Number of live slots still to be retired by a pending shrink; they
    /// are popped from the tail as the workers occupying it finish.
    pending_shrink: usize,
}

impl WorkerPool {
    /// Creates a pool of `n` idle workers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a worker pool needs at least one worker");
        WorkerPool {
            busy: vec![false; n],
            busy_count: 0,
            pending_shrink: 0,
        }
    }

    /// Resizes the pool to `target` workers.
    ///
    /// Growth takes effect immediately (new idle workers are appended).
    /// Shrinking never interrupts a running request: idle workers at the
    /// tail of the pool are retired immediately, and any remainder is
    /// retired lazily as busy tail workers release
    /// ([`WorkerPool::pending_shrink`] reports the backlog).
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero.
    pub fn resize(&mut self, target: usize) {
        assert!(target > 0, "a worker pool needs at least one worker");
        self.pending_shrink = 0;
        if target >= self.busy.len() {
            self.busy.resize(target, false);
            return;
        }
        while self.busy.len() > target && self.busy.last() == Some(&false) {
            self.busy.pop();
        }
        self.pending_shrink = self.busy.len() - target;
    }

    /// Number of live slots still awaiting retirement by a deferred shrink.
    pub fn pending_shrink(&self) -> usize {
        self.pending_shrink
    }

    /// The paper's configuration: 32 worker threads per server.
    pub fn paper_default() -> Self {
        Self::new(32)
    }

    /// Total number of workers.
    pub fn total(&self) -> usize {
        self.busy.len()
    }

    /// Number of busy workers.
    pub fn busy_count(&self) -> usize {
        self.busy_count
    }

    /// Number of idle workers.
    pub fn idle_count(&self) -> usize {
        self.total() - self.busy_count
    }

    /// Returns `true` if every worker is busy.
    pub fn is_saturated(&self) -> bool {
        self.busy_count == self.total()
    }

    /// Current scoreboard snapshot.
    pub fn scoreboard(&self) -> Scoreboard {
        Scoreboard {
            busy: self.busy_count,
            total: self.total(),
        }
    }

    /// Claims an idle worker, marking it busy.  Returns `None` if the pool is
    /// saturated.
    pub fn claim(&mut self) -> Option<WorkerId> {
        let index = self.busy.iter().position(|&b| !b)?;
        self.busy[index] = true;
        self.busy_count += 1;
        Some(WorkerId(index))
    }

    /// Releases a previously claimed worker.
    ///
    /// # Panics
    ///
    /// Panics if the worker id is out of range or the worker is already idle
    /// (both indicate a bookkeeping bug in the caller).
    pub fn release(&mut self, worker: WorkerId) {
        let slot = self
            .busy
            .get_mut(worker.0)
            .unwrap_or_else(|| panic!("worker {} out of range", worker.0));
        assert!(*slot, "releasing an idle worker {}", worker.0);
        *slot = false;
        self.busy_count -= 1;
        // Complete any deferred shrink that this release unblocks.
        while self.pending_shrink > 0 && self.busy.last() == Some(&false) {
            self.busy.pop();
            self.pending_shrink -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_and_releases_track_busy_count() {
        let mut pool = WorkerPool::new(3);
        assert_eq!(pool.total(), 3);
        assert_eq!(pool.busy_count(), 0);
        assert_eq!(pool.idle_count(), 3);
        assert!(!pool.is_saturated());

        let a = pool.claim().unwrap();
        let b = pool.claim().unwrap();
        assert_eq!(pool.busy_count(), 2);
        assert_ne!(a, b);

        let c = pool.claim().unwrap();
        assert!(pool.is_saturated());
        assert_eq!(pool.claim(), None);

        pool.release(b);
        assert_eq!(pool.busy_count(), 2);
        let d = pool.claim().unwrap();
        assert_eq!(d, b, "released worker is reused");
        pool.release(a);
        pool.release(c);
        pool.release(d);
        assert_eq!(pool.busy_count(), 0);
    }

    #[test]
    fn scoreboard_reflects_pool() {
        let mut pool = WorkerPool::paper_default();
        assert_eq!(pool.total(), 32);
        for _ in 0..10 {
            pool.claim();
        }
        let sb = pool.scoreboard();
        assert_eq!(sb.busy, 10);
        assert_eq!(sb.total, 32);
        assert_eq!(sb.idle(), 22);
        assert!((sb.utilization() - 10.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn empty_scoreboard_utilization_is_zero() {
        let sb = Scoreboard { busy: 0, total: 0 };
        assert_eq!(sb.utilization(), 0.0);
    }

    #[test]
    fn resize_grows_immediately() {
        let mut pool = WorkerPool::new(2);
        pool.resize(5);
        assert_eq!(pool.total(), 5);
        assert_eq!(pool.idle_count(), 5);
        assert_eq!(pool.pending_shrink(), 0);
    }

    #[test]
    fn resize_shrinks_idle_workers_immediately() {
        let mut pool = WorkerPool::new(8);
        pool.resize(3);
        assert_eq!(pool.total(), 3);
        assert_eq!(pool.pending_shrink(), 0);
    }

    #[test]
    fn resize_defers_shrink_past_busy_workers() {
        let mut pool = WorkerPool::new(4);
        let a = pool.claim().unwrap();
        let b = pool.claim().unwrap();
        let c = pool.claim().unwrap();
        let d = pool.claim().unwrap();
        // Every worker busy: shrinking to 1 retires nothing yet.
        pool.resize(1);
        assert_eq!(pool.total(), 4);
        assert_eq!(pool.pending_shrink(), 3);
        // Releasing a mid-pool worker cannot retire the busy tail.
        pool.release(b);
        assert_eq!(pool.total(), 4);
        assert_eq!(pool.pending_shrink(), 3);
        // Releasing the tail retires it; the busy slot before it stays.
        pool.release(d);
        assert_eq!(pool.total(), 3);
        assert_eq!(pool.pending_shrink(), 2);
        // Releasing c retires its slot *and* the already-idle b slot.
        pool.release(c);
        assert_eq!(pool.total(), 1);
        assert_eq!(pool.pending_shrink(), 0);
        assert!(pool.is_saturated(), "only worker a remains, and it is busy");
        pool.release(a);
        assert_eq!(pool.idle_count(), 1);
    }

    #[test]
    fn regrowing_cancels_a_pending_shrink() {
        let mut pool = WorkerPool::new(3);
        let _a = pool.claim().unwrap();
        let _b = pool.claim().unwrap();
        let _c = pool.claim().unwrap();
        pool.resize(1);
        assert_eq!(pool.pending_shrink(), 2);
        pool.resize(6);
        assert_eq!(pool.pending_shrink(), 0);
        assert_eq!(pool.total(), 6);
        assert_eq!(pool.idle_count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        WorkerPool::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn resize_to_zero_panics() {
        WorkerPool::new(2).resize(0);
    }

    #[test]
    #[should_panic(expected = "releasing an idle worker")]
    fn double_release_panics() {
        let mut pool = WorkerPool::new(1);
        let w = pool.claim().unwrap();
        pool.release(w);
        pool.release(w);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_release_panics() {
        let mut pool = WorkerPool::new(1);
        pool.release(WorkerId(5));
    }
}
