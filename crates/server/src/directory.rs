//! Mapping between data-plane IPv6 addresses and simulation node ids.
//!
//! In the real system packets are routed by the network; in the simulator a
//! node that wants to transmit a packet must know which [`NodeId`] hosts the
//! destination address.  The `Directory` is that routing table, built once
//! by the experiment driver and cloned into every node.
//!
//! Two kinds of entry exist:
//!
//! * **unicast** — one address, one node ([`Directory::register`]),
//! * **ECMP tier** — one *anycast* address advertised by a whole tier of
//!   equal-cost nodes (a load-balancer fleet and its VIPs), resolved
//!   per-flow with the resilient ECMP hash of
//!   [`srlb_sim::ecmp_steer`] ([`Directory::register_tier`]).
//!
//! Tier membership is **shared** across directory clones through an
//! [`Arc`]: the experiment runner keeps the [`TierMembers`] handle it
//! registered and mutates it mid-run (route advertisement / withdrawal on
//! `AddLb` / `RemoveLb` events), and every node's directory copy observes
//! the change on its next lookup — exactly like a routing-table update
//! propagating to the fabric.

use std::collections::HashMap;
use std::net::Ipv6Addr;
use std::sync::{Arc, RwLock};

use srlb_sim::{NodeId, Steering};

/// Shared, mutable membership of one ECMP tier: the
/// [`Steering`] model behind a lock, so route
/// advertisement/withdrawal ([`Steering::add`] / [`Steering::remove`])
/// through any clone of the handle is observed by every directory that
/// registered it.
pub type TierMembers = Arc<RwLock<Steering>>;

/// Creates a [`TierMembers`] handle over the given nodes.
pub fn tier_members(members: Vec<NodeId>) -> TierMembers {
    Arc::new(RwLock::new(Steering::new(members)))
}

/// An address → node lookup table with optional ECMP tiers.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<Ipv6Addr, NodeId>,
    tiers: HashMap<Ipv6Addr, TierMembers>,
}

impl PartialEq for Directory {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
            && self.tiers.len() == other.tiers.len()
            // srlb-lint: allow(unordered-iter) -- `.all()` over every entry is order-independent; no order-sensitive value escapes
            && self.tiers.iter().all(|(addr, members)| {
                other.tiers.get(addr).is_some_and(|o| {
                    *members.read().expect("tier lock poisoned")
                        == *o.read().expect("tier lock poisoned")
                })
            })
    }
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `addr` as hosted by `node`.  Registering the same address
    /// twice overwrites the previous owner and returns it.
    pub fn register(&mut self, addr: Ipv6Addr, node: NodeId) -> Option<NodeId> {
        self.entries.insert(addr, node)
    }

    /// Registers `addr` as an ECMP anycast address advertised by the tier
    /// behind `members`.  The handle is shared: later mutations through any
    /// clone of it are visible to every directory that holds the tier.
    /// A tier entry shadows a unicast entry for the same address.
    pub fn register_tier(&mut self, addr: Ipv6Addr, members: TierMembers) {
        self.tiers.insert(addr, members);
    }

    /// Looks up the node hosting `addr` (unicast entries only; a tier
    /// address needs a flow hash — use [`Directory::lookup_flow`]).
    pub fn lookup(&self, addr: Ipv6Addr) -> Option<NodeId> {
        self.entries.get(&addr).copied()
    }

    /// Looks up the node a packet of the flow with `flow_hash` should be
    /// delivered to: ECMP-steered across the tier if `addr` is an anycast
    /// tier address (`None` if the tier is currently empty), the unicast
    /// owner otherwise.
    pub fn lookup_flow(&self, addr: Ipv6Addr, flow_hash: u64) -> Option<NodeId> {
        match self.tiers.get(&addr) {
            Some(members) => members
                .read()
                .expect("tier lock poisoned")
                .select(flow_hash),
            None => self.lookup(addr),
        }
    }

    /// Removes the registration for `addr`, returning the node that hosted
    /// it.
    ///
    /// The directory is **cloned** into every node at construction, so this
    /// only affects the instance it is called on — use it while *composing*
    /// a directory, before distribution.  To black-hole a live address
    /// mid-run, remove the node from the network instead (packets to an
    /// empty node slot are dropped and counted), which is what the scenario
    /// engine does for server removal; to take a node out of a tier mid-run,
    /// mutate the shared [`TierMembers`] handle instead.
    pub fn unregister(&mut self, addr: Ipv6Addr) -> Option<NodeId> {
        self.entries.remove(&addr)
    }

    /// Number of registered addresses, unicast and tier alike (so
    /// `len() == 0` coincides with [`Directory::is_empty`]).
    pub fn len(&self) -> usize {
        self.entries.len() + self.tiers.len()
    }

    /// Returns `true` if no addresses (unicast or tier) are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.tiers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, n)
    }

    #[test]
    fn register_and_lookup() {
        let mut dir = Directory::new();
        assert!(dir.is_empty());
        assert_eq!(dir.register(addr(1), NodeId(10)), None);
        assert_eq!(dir.register(addr(2), NodeId(11)), None);
        assert_eq!(dir.lookup(addr(1)), Some(NodeId(10)));
        assert_eq!(dir.lookup(addr(2)), Some(NodeId(11)));
        assert_eq!(dir.lookup(addr(3)), None);
        assert_eq!(dir.len(), 2);
    }

    #[test]
    fn unregister_removes_the_entry() {
        let mut dir = Directory::new();
        dir.register(addr(1), NodeId(10));
        assert_eq!(dir.unregister(addr(1)), Some(NodeId(10)));
        assert_eq!(dir.unregister(addr(1)), None);
        assert_eq!(dir.lookup(addr(1)), None);
        assert!(dir.is_empty());
    }

    #[test]
    fn reregistering_overwrites() {
        let mut dir = Directory::new();
        dir.register(addr(1), NodeId(10));
        assert_eq!(dir.register(addr(1), NodeId(20)), Some(NodeId(10)));
        assert_eq!(dir.lookup(addr(1)), Some(NodeId(20)));
        assert_eq!(dir.len(), 1);
    }

    #[test]
    fn flow_lookup_falls_back_to_unicast() {
        let mut dir = Directory::new();
        dir.register(addr(1), NodeId(10));
        assert_eq!(dir.lookup_flow(addr(1), 42), Some(NodeId(10)));
        assert_eq!(dir.lookup_flow(addr(9), 42), None);
    }

    #[test]
    fn tier_lookup_is_deterministic_and_member_bound() {
        let mut dir = Directory::new();
        let members = tier_members(vec![NodeId(1), NodeId(2), NodeId(3)]);
        dir.register_tier(addr(7), members.clone());
        assert!(!dir.is_empty());
        for h in 0..256u64 {
            let picked = dir.lookup_flow(addr(7), h).unwrap();
            assert_eq!(dir.lookup_flow(addr(7), h), Some(picked), "deterministic");
            assert!((1..=3).contains(&picked.0));
        }
        // A tier address has no unicast owner.
        assert_eq!(dir.lookup(addr(7)), None);
    }

    #[test]
    fn tier_membership_updates_propagate_to_clones() {
        let mut dir = Directory::new();
        let members = tier_members(vec![NodeId(1), NodeId(2)]);
        dir.register_tier(addr(7), members.clone());
        let cloned = dir.clone();
        assert_eq!(cloned, dir);

        // Withdraw NodeId(2) through the shared handle: both copies see it.
        assert!(members
            .write()
            .expect("tier lock poisoned")
            .remove(NodeId(2)));
        for h in 0..128u64 {
            assert_eq!(cloned.lookup_flow(addr(7), h), Some(NodeId(1)));
            assert_eq!(dir.lookup_flow(addr(7), h), Some(NodeId(1)));
        }

        // An emptied tier black-holes its flows.
        assert!(members
            .write()
            .expect("tier lock poisoned")
            .remove(NodeId(1)));
        assert_eq!(cloned.lookup_flow(addr(7), 3), None);
    }
}
