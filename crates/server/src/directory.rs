//! Mapping between data-plane IPv6 addresses and simulation node ids.
//!
//! In the real system packets are routed by the network; in the simulator a
//! node that wants to transmit a packet must know which [`NodeId`] hosts the
//! destination address.  The `Directory` is that (static) routing table,
//! built once by the experiment driver and cloned into every node.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use srlb_sim::NodeId;

/// An address → node lookup table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Directory {
    entries: HashMap<Ipv6Addr, NodeId>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `addr` as hosted by `node`.  Registering the same address
    /// twice overwrites the previous owner and returns it.
    pub fn register(&mut self, addr: Ipv6Addr, node: NodeId) -> Option<NodeId> {
        self.entries.insert(addr, node)
    }

    /// Looks up the node hosting `addr`.
    pub fn lookup(&self, addr: Ipv6Addr) -> Option<NodeId> {
        self.entries.get(&addr).copied()
    }

    /// Removes the registration for `addr`, returning the node that hosted
    /// it.
    ///
    /// The directory is **cloned** into every node at construction, so this
    /// only affects the instance it is called on — use it while *composing*
    /// a directory, before distribution.  To black-hole a live address
    /// mid-run, remove the node from the network instead (packets to an
    /// empty node slot are dropped and counted), which is what the scenario
    /// engine does for server removal.
    pub fn unregister(&mut self, addr: Ipv6Addr) -> Option<NodeId> {
        self.entries.remove(&addr)
    }

    /// Number of registered addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no addresses are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, n)
    }

    #[test]
    fn register_and_lookup() {
        let mut dir = Directory::new();
        assert!(dir.is_empty());
        assert_eq!(dir.register(addr(1), NodeId(10)), None);
        assert_eq!(dir.register(addr(2), NodeId(11)), None);
        assert_eq!(dir.lookup(addr(1)), Some(NodeId(10)));
        assert_eq!(dir.lookup(addr(2)), Some(NodeId(11)));
        assert_eq!(dir.lookup(addr(3)), None);
        assert_eq!(dir.len(), 2);
    }

    #[test]
    fn unregister_removes_the_entry() {
        let mut dir = Directory::new();
        dir.register(addr(1), NodeId(10));
        assert_eq!(dir.unregister(addr(1)), Some(NodeId(10)));
        assert_eq!(dir.unregister(addr(1)), None);
        assert_eq!(dir.lookup(addr(1)), None);
        assert!(dir.is_empty());
    }

    #[test]
    fn reregistering_overwrites() {
        let mut dir = Directory::new();
        dir.register(addr(1), NodeId(10));
        assert_eq!(dir.register(addr(1), NodeId(20)), Some(NodeId(10)));
        assert_eq!(dir.lookup(addr(1)), Some(NodeId(20)));
        assert_eq!(dir.len(), 1);
    }
}
