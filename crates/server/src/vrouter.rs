//! The SR-aware virtual router (paper Section II and Algorithm 1).
//!
//! Each server runs a virtual router (VPP in the paper) that dispatches
//! packets between the physical NIC and the application's virtual
//! interface.  For a hunted connection the router makes a purely local
//! decision: deliver the packet to the local application instance
//! (`SegmentsLeft ← 0`) or forward it to the next candidate in the SR list
//! (`SegmentsLeft ← SegmentsLeft − 1`).  The penultimate segment (the last
//! candidate server before the VIP) must not refuse.

use std::net::Ipv6Addr;

use srlb_net::{NetError, Packet, SegmentRoutingHeader};

use crate::agent::ApplicationAgent;
use crate::worker::Scoreboard;

/// The outcome of processing a packet at the virtual router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterAction {
    /// Deliver the packet to the local application instance.
    DeliverLocal(Packet),
    /// Forward the packet towards `next_hop` (the new active segment).
    Forward {
        /// The rewritten packet.
        packet: Packet,
        /// The address of the next candidate.
        next_hop: Ipv6Addr,
    },
}

/// The per-server virtual router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualRouter {
    /// The server's own physical address.
    server_addr: Ipv6Addr,
    /// The load balancer's address (used when building acceptance SRHs).
    lb_addr: Ipv6Addr,
}

impl VirtualRouter {
    /// Creates a virtual router for the server at `server_addr`, knowing the
    /// load balancer lives at `lb_addr`.
    pub fn new(server_addr: Ipv6Addr, lb_addr: Ipv6Addr) -> Self {
        VirtualRouter {
            server_addr,
            lb_addr,
        }
    }

    /// The server's own address.
    pub fn server_addr(&self) -> Ipv6Addr {
        self.server_addr
    }

    /// Processes an inbound packet per Algorithm 1.
    ///
    /// * No SRH, or `SegmentsLeft == 0` — the packet is addressed to this
    ///   server directly (steered traffic of an established flow): deliver
    ///   locally.
    /// * `SegmentsLeft == 1` — this server is the last candidate before the
    ///   VIP: it must accept; deliver locally with `SegmentsLeft ← 0`.
    /// * `SegmentsLeft >= 2` — consult the agent: on accept, deliver locally
    ///   with `SegmentsLeft ← 0`; otherwise forward to the next candidate.
    ///
    /// # Errors
    ///
    /// Returns a [`NetError`] if the SRH is malformed (e.g. `SegmentsLeft`
    /// manipulation fails), which cannot happen for packets built by this
    /// workspace's load balancer.
    pub fn process(
        &self,
        mut packet: Packet,
        agent: &mut ApplicationAgent,
        scoreboard: Scoreboard,
    ) -> Result<RouterAction, NetError> {
        let Some(srh) = packet.srh.as_ref() else {
            return Ok(RouterAction::DeliverLocal(packet));
        };
        match srh.segments_left() {
            0 => Ok(RouterAction::DeliverLocal(packet)),
            1 => {
                // Penultimate segment: the application must not refuse.
                packet.set_segments_left(0)?;
                Ok(RouterAction::DeliverLocal(packet))
            }
            _ => {
                if agent.decide(scoreboard).is_accept() {
                    packet.set_segments_left(0)?;
                    Ok(RouterAction::DeliverLocal(packet))
                } else {
                    let next_hop = packet.advance_segment()?;
                    Ok(RouterAction::Forward { packet, next_hop })
                }
            }
        }
    }

    /// Builds the SRH a server inserts into its connection-acceptance packet
    /// (SYN-ACK): the route `[server, load-balancer, client]` with the
    /// load balancer as the active segment, so that the load balancer both
    /// learns which server accepted the flow (the first, already-consumed
    /// segment) and forwards the packet on to the client.
    ///
    /// # Errors
    ///
    /// Propagates [`NetError`] from SRH construction (cannot happen for the
    /// fixed 3-segment route used here).
    pub fn acceptance_srh(&self, client: Ipv6Addr) -> Result<SegmentRoutingHeader, NetError> {
        let route = [self.server_addr, self.lb_addr, client];
        let mut srh = SegmentRoutingHeader::from_route(&route)?;
        // The server itself is the (conceptually consumed) first segment; the
        // active segment is the load balancer.
        srh.set_segments_left(1)?;
        Ok(srh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StaticThreshold;
    use srlb_net::{PacketBuilder, TcpFlags};

    fn addr(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, n)
    }

    fn hunted_syn(candidates: &[Ipv6Addr], vip: Ipv6Addr) -> Packet {
        let mut route = candidates.to_vec();
        route.push(vip);
        PacketBuilder::tcp(addr(100), vip)
            .ports(40_000, 80)
            .flags(TcpFlags::SYN)
            .segment_routing(SegmentRoutingHeader::from_route(&route).unwrap())
            .build()
    }

    fn agent(threshold: usize) -> ApplicationAgent {
        ApplicationAgent::new(Box::new(StaticThreshold::new(threshold)))
    }

    fn sb(busy: usize) -> Scoreboard {
        Scoreboard { busy, total: 32 }
    }

    #[test]
    fn first_candidate_accepts_when_below_threshold() {
        let router = VirtualRouter::new(addr(1), addr(99));
        let mut agent = agent(4);
        let packet = hunted_syn(&[addr(1), addr(2)], addr(200));
        let action = router.process(packet, &mut agent, sb(2)).unwrap();
        match action {
            RouterAction::DeliverLocal(p) => {
                assert_eq!(p.srh.as_ref().unwrap().segments_left(), 0);
                assert_eq!(p.current_destination(), addr(200), "destination is the VIP");
            }
            other => panic!("expected local delivery, got {other:?}"),
        }
        assert_eq!(agent.consultations(), 1);
        assert_eq!(agent.accepted(), 1);
    }

    #[test]
    fn first_candidate_forwards_when_busy() {
        let router = VirtualRouter::new(addr(1), addr(99));
        let mut agent = agent(4);
        let packet = hunted_syn(&[addr(1), addr(2)], addr(200));
        let action = router.process(packet, &mut agent, sb(10)).unwrap();
        match action {
            RouterAction::Forward { packet, next_hop } => {
                assert_eq!(next_hop, addr(2));
                assert_eq!(packet.current_destination(), addr(2));
                assert_eq!(packet.srh.as_ref().unwrap().segments_left(), 1);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        assert_eq!(agent.accepted(), 0);
    }

    #[test]
    fn last_candidate_must_accept_even_when_saturated() {
        let router = VirtualRouter::new(addr(2), addr(99));
        let mut agent = agent(4);
        let mut packet = hunted_syn(&[addr(1), addr(2)], addr(200));
        // Simulate the first candidate having passed it on.
        packet.advance_segment().unwrap();
        let action = router.process(packet, &mut agent, sb(32)).unwrap();
        assert!(matches!(action, RouterAction::DeliverLocal(_)));
        // The policy must not have been consulted for the forced acceptance.
        assert_eq!(agent.consultations(), 0);
    }

    #[test]
    fn steered_packet_without_srh_is_delivered() {
        let router = VirtualRouter::new(addr(1), addr(99));
        let mut agent = agent(0); // would refuse everything if consulted
        let packet = PacketBuilder::tcp(addr(100), addr(1))
            .ports(40_000, 80)
            .flags(TcpFlags::ACK)
            .build();
        let action = router.process(packet, &mut agent, sb(32)).unwrap();
        assert!(matches!(action, RouterAction::DeliverLocal(_)));
        assert_eq!(agent.consultations(), 0);
    }

    #[test]
    fn exhausted_srh_is_delivered() {
        let router = VirtualRouter::new(addr(1), addr(99));
        let mut agent = agent(0);
        let mut packet = hunted_syn(&[addr(5), addr(1)], addr(200));
        packet.set_segments_left(0).unwrap();
        let action = router.process(packet, &mut agent, sb(0)).unwrap();
        assert!(matches!(action, RouterAction::DeliverLocal(_)));
    }

    #[test]
    fn three_candidate_hunt_walks_the_chain() {
        // Three candidates, all busy: the packet should traverse 1 -> 2 -> 3
        // and be accepted (forced) at the third.
        let vip = addr(200);
        let routers = [
            VirtualRouter::new(addr(1), addr(99)),
            VirtualRouter::new(addr(2), addr(99)),
            VirtualRouter::new(addr(3), addr(99)),
        ];
        let mut agents = [agent(1), agent(1), agent(1)];
        let mut packet = hunted_syn(&[addr(1), addr(2), addr(3)], vip);
        let mut hops = Vec::new();
        for i in 0..3 {
            match routers[i]
                .process(packet.clone(), &mut agents[i], sb(16))
                .unwrap()
            {
                RouterAction::Forward {
                    packet: p,
                    next_hop,
                } => {
                    hops.push(next_hop);
                    packet = p;
                }
                RouterAction::DeliverLocal(_) => {
                    hops.push(routers[i].server_addr());
                    break;
                }
            }
        }
        assert_eq!(hops, vec![addr(2), addr(3), addr(3)]);
        assert_eq!(agents[2].consultations(), 0, "final candidate is forced");
    }

    #[test]
    fn acceptance_srh_names_server_lb_and_client() {
        let router = VirtualRouter::new(addr(7), addr(99));
        let srh = router.acceptance_srh(addr(100)).unwrap();
        assert_eq!(srh.segments_left(), 1);
        assert_eq!(srh.active_segment(), addr(99), "LB is the active segment");
        assert_eq!(
            srh.final_segment(),
            addr(100),
            "client is the final segment"
        );
        assert_eq!(srh.first_segment(), addr(7), "server identity is recorded");
        assert_eq!(srh.route(), vec![addr(7), addr(99), addr(100)]);
    }
}
