//! The backend server as a simulation node.
//!
//! A [`ServerNode`] combines the virtual router, the application agent, the
//! worker pool, the processor-sharing CPU and the accept backlog into one
//! [`srlb_sim::Node`], and speaks the simple TCP-over-SRv6 protocol of the
//! experiments:
//!
//! 1. a hunted **SYN** arrives with the Service Hunting SRH; the virtual
//!    router decides locally (accept / pass on) from the scoreboard,
//! 2. on acceptance the server answers with a **SYN-ACK** carrying the
//!    acceptance SRH `[server, load-balancer, client]` so the load balancer
//!    learns the owner of the flow,
//! 3. the client then sends the **request** (an ACK/PSH packet whose payload
//!    encodes the request id and its CPU service demand), steered by the
//!    load balancer to the owning server,
//! 4. the request claims an idle worker thread and its CPU demand is served
//!    by the processor-sharing CPU (all busy threads contend for the
//!    configured cores, as Apache's 32 prefork workers contend for the
//!    paper's 2-core VMs); if no worker thread is idle the request waits in
//!    the backlog, and if the backlog is full the connection is **reset**
//!    (`tcp_abort_on_overflow`),
//! 5. when service completes the server sends the **response** directly to
//!    the client and pulls the next request from the backlog.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use srlb_net::{FlowKey, Packet, PacketBuilder, TcpFlags};
use srlb_sim::{Context, Node, NodeId, SimDuration, SimTime, TimerToken};

use crate::agent::ApplicationAgent;
use crate::backlog::Backlog;
use crate::cpu::ProcessorSharingCpu;
use crate::directory::Directory;
use crate::policy::PolicyConfig;
use crate::vrouter::{RouterAction, VirtualRouter};
use crate::worker::{WorkerId, WorkerPool};

/// Static configuration of one backend server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Index of the server in the cluster.
    pub server_index: u32,
    /// The server's physical IPv6 address.
    pub addr: Ipv6Addr,
    /// The load balancer's address.
    pub lb_addr: Ipv6Addr,
    /// Number of worker threads (the paper uses 32).
    pub workers: usize,
    /// Number of CPU cores shared by busy worker threads (the paper's VMs
    /// have 2).
    pub cores: usize,
    /// TCP backlog capacity (the paper uses 128).
    pub backlog: usize,
    /// Connection acceptance policy.
    pub policy: PolicyConfig,
    /// Whether to record per-change load samples (needed for Figure 4).
    pub record_load: bool,
}

impl ServerConfig {
    /// The paper's server configuration with the given policy: a 2-core VM
    /// running 32 worker threads with a backlog of 128.
    pub fn paper(
        server_index: u32,
        addr: Ipv6Addr,
        lb_addr: Ipv6Addr,
        policy: PolicyConfig,
    ) -> Self {
        ServerConfig {
            server_index,
            addr,
            lb_addr,
            workers: 32,
            cores: 2,
            backlog: 128,
            policy,
            record_load: false,
        }
    }
}

/// Counters exposed by a server after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Hunted connections accepted by the local policy (as a non-final
    /// candidate).
    pub accepted_by_policy: u64,
    /// Hunted connections passed on to the next candidate.
    pub passed_on: u64,
    /// Connections accepted because this server was the final candidate.
    pub forced_accepts: u64,
    /// Requests that started service immediately.
    pub served_immediately: u64,
    /// Requests that had to wait in the backlog.
    pub queued: u64,
    /// Requests reset because the backlog was full.
    pub resets: u64,
    /// Requests completed (responses sent).
    pub completed: u64,
    /// Ownership adverts sent to the load balancer for re-hunted packets of
    /// flows this server owns (in-band flow-table reconstruction after a
    /// load-balancer failover).
    pub ownership_adverts: u64,
    /// Re-hunted packets that reached this server as the last candidate
    /// without any candidate owning the flow: the connection is
    /// unrecoverable and was reset.
    pub orphaned: u64,
    /// Retransmitted requests ignored because the same `(flow, request)`
    /// was already running or backlogged — the duplicate-segment
    /// suppression real TCP performs by sequence number.  Zero on
    /// fault-free runs.
    #[serde(default, skip_serializing_if = "duplicate_count_is_zero")]
    pub duplicates_ignored: u64,
    /// Responses replayed from lingering connection state for a
    /// retransmitted request whose original response was lost.  Zero on
    /// fault-free runs.
    #[serde(default, skip_serializing_if = "duplicate_count_is_zero")]
    pub responses_replayed: u64,
}

/// Serde skip predicate for [`ServerStats::duplicates_ignored`], keeping
/// fault-free serialized stats byte-identical to the pre-fault-layer form.
fn duplicate_count_is_zero(n: &u64) -> bool {
    *n == 0
}

impl ServerStats {
    /// Adds another stats snapshot field-wise (used by scenario runs to
    /// merge the counters of successive incarnations of the same server
    /// index across a remove/re-add cycle).
    pub fn absorb(&mut self, other: ServerStats) {
        self.accepted_by_policy += other.accepted_by_policy;
        self.passed_on += other.passed_on;
        self.forced_accepts += other.forced_accepts;
        self.served_immediately += other.served_immediately;
        self.queued += other.queued;
        self.resets += other.resets;
        self.completed += other.completed;
        self.ownership_adverts += other.ownership_adverts;
        self.orphaned += other.orphaned;
        self.duplicates_ignored += other.duplicates_ignored;
        self.responses_replayed += other.responses_replayed;
    }
}

/// Per-flow connection state.
///
/// An entry is created when the hunted SYN is accepted and lives until the
/// peer closes (RST/FIN) — **including after the response was sent**: the
/// completed request's id is retained so a retransmitted request whose
/// response was lost on the way back is answered from this state instead of
/// being re-served (or, after a load-balancer failover wiped the flow
/// table, orphaned as unrecoverable).  Flows are never reused within a run
/// (each request gets a unique client `(address, port)` pair), so a
/// retained entry can only ever match its own request's retransmissions.
#[derive(Debug, Clone, Copy)]
struct Connection {
    /// The client's address (responses go here, direct server return).
    client: Ipv6Addr,
    /// Id of the request this connection completed, once the response has
    /// been sent.
    completed: Option<u64>,
}

/// A request waiting in the backlog for a worker thread.
#[derive(Debug, Clone)]
struct PendingJob {
    flow: FlowKey,
    client: Ipv6Addr,
    request_id: u64,
    service: SimDuration,
}

/// A request currently being served by a worker thread.
#[derive(Debug, Clone)]
struct RunningJob {
    worker: WorkerId,
    flow: FlowKey,
    client: Ipv6Addr,
    request_id: u64,
}

/// Encodes a request's id and CPU service demand into a packet payload.
///
/// The experiment's client encodes the per-request CPU demand (drawn from the
/// workload's service-time distribution) in the request payload; this stands
/// in for the PHP script / wiki page the paper's clients request, whose cost
/// the server only discovers by executing it.
pub fn encode_request_payload(request_id: u64, service: SimDuration) -> Bytes {
    let mut buf = Vec::with_capacity(16);
    buf.extend_from_slice(&request_id.to_be_bytes());
    buf.extend_from_slice(&service.as_nanos().to_be_bytes());
    Bytes::from(buf)
}

/// Decodes a payload produced by [`encode_request_payload`].
///
/// Returns `None` if the payload is too short.
pub fn decode_request_payload(payload: &[u8]) -> Option<(u64, SimDuration)> {
    if payload.len() < 16 {
        return None;
    }
    let id = u64::from_be_bytes(payload[0..8].try_into().ok()?);
    let nanos = u64::from_be_bytes(payload[8..16].try_into().ok()?);
    Some((id, SimDuration::from_nanos(nanos)))
}

/// Encodes a response payload: the request id plus the index of the server
/// that served it, so the measurement client can attribute completions to
/// servers (per-phase fairness in dynamic-cluster scenarios).
pub fn encode_response_payload(request_id: u64, server_index: u32) -> Bytes {
    let mut buf = Vec::with_capacity(12);
    buf.extend_from_slice(&request_id.to_be_bytes());
    buf.extend_from_slice(&server_index.to_be_bytes());
    Bytes::from(buf)
}

/// Decodes a payload produced by [`encode_response_payload`].
///
/// Returns `None` if the payload is too short.
pub fn decode_response_payload(payload: &[u8]) -> Option<(u64, u32)> {
    if payload.len() < 12 {
        return None;
    }
    let id = u64::from_be_bytes(payload[0..8].try_into().ok()?);
    let server = u32::from_be_bytes(payload[8..12].try_into().ok()?);
    Some((id, server))
}

/// Encodes the server-load hint a server attaches to its acceptance SYN-ACK
/// (and ownership adverts): busy worker threads, configured worker threads
/// and current backlog depth, each as a big-endian `u32`.
///
/// The load balancer's load-aware dispatcher smooths
/// `(busy + backlog) / workers` into a per-server EWMA; load-oblivious
/// dispatchers (the default) ignore the hint entirely, and the measurement
/// client ignores payloads on SYN-ACKs, so attaching it is invisible to every
/// existing configuration.
pub fn encode_load_hint(busy: u32, workers: u32, backlog: u32) -> Bytes {
    let mut buf = Vec::with_capacity(12);
    buf.extend_from_slice(&busy.to_be_bytes());
    buf.extend_from_slice(&workers.to_be_bytes());
    buf.extend_from_slice(&backlog.to_be_bytes());
    Bytes::from(buf)
}

/// Decodes a payload produced by [`encode_load_hint`], returning
/// `(busy, workers, backlog)`.
///
/// Returns `None` if the payload is too short.
pub fn decode_load_hint(payload: &[u8]) -> Option<(u32, u32, u32)> {
    if payload.len() < 12 {
        return None;
    }
    let busy = u32::from_be_bytes(payload[0..4].try_into().ok()?);
    let workers = u32::from_be_bytes(payload[4..8].try_into().ok()?);
    let backlog = u32::from_be_bytes(payload[8..12].try_into().ok()?);
    Some((busy, workers, backlog))
}

/// One backend server of the simulated cluster.
#[derive(Debug)]
pub struct ServerNode {
    config: ServerConfig,
    directory: Directory,
    router: VirtualRouter,
    agent: ApplicationAgent,
    pool: WorkerPool,
    cpu: ProcessorSharingCpu,
    backlog: Backlog<PendingJob>,
    connections: HashMap<FlowKey, Connection>,
    running: HashMap<u64, RunningJob>,
    next_job_token: u64,
    /// Generation counter for the single CPU completion timer: any timer
    /// whose token does not match the current generation is stale and
    /// ignored.
    cpu_timer_generation: u64,
    stats: ServerStats,
    load_samples: Vec<(f64, usize)>,
}

impl ServerNode {
    /// Creates a server node.
    pub fn new(config: ServerConfig, directory: Directory) -> Self {
        let router = VirtualRouter::new(config.addr, config.lb_addr);
        let agent = ApplicationAgent::new(config.policy.build());
        let pool = WorkerPool::new(config.workers);
        let cpu = ProcessorSharingCpu::new(config.cores);
        let backlog = Backlog::new(config.backlog);
        ServerNode {
            config,
            directory,
            router,
            agent,
            pool,
            cpu,
            backlog,
            connections: HashMap::new(),
            running: HashMap::new(),
            next_job_token: 0,
            cpu_timer_generation: 0,
            stats: ServerStats::default(),
            load_samples: Vec::new(),
        }
    }

    /// The server's address.
    pub fn addr(&self) -> Ipv6Addr {
        self.config.addr
    }

    /// The server's index in the cluster.
    pub fn server_index(&self) -> u32 {
        self.config.server_index
    }

    /// Run counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Number of busy worker threads right now.
    pub fn busy_workers(&self) -> usize {
        self.pool.busy_count()
    }

    /// The application agent (for acceptance-ratio and threshold inspection).
    pub fn agent(&self) -> &ApplicationAgent {
        &self.agent
    }

    /// Per-change `(time_seconds, busy_workers)` samples (empty unless
    /// `record_load` was enabled in the configuration).
    pub fn load_samples(&self) -> &[(f64, usize)] {
        &self.load_samples
    }

    /// Number of requests currently waiting in the backlog.
    pub fn backlog_depth(&self) -> usize {
        self.backlog.len()
    }

    /// Number of connections currently established on this server.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Re-provisions the server's capacity at runtime (dynamic-cluster
    /// scenarios with heterogeneous or re-provisioned backends).  Worker
    /// growth takes effect immediately; shrinking drains gracefully (running
    /// requests are never interrupted).  The CPU's core count changes after
    /// in-flight work is advanced at the old rate, and the completion timer
    /// is rescheduled for the new rate.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `cores` is zero.
    pub fn set_capacity(&mut self, workers: usize, cores: usize, ctx: &mut Context<'_, Packet>) {
        self.config.workers = workers;
        self.config.cores = cores;
        self.pool.resize(workers);
        self.cpu.set_cores(cores, ctx.now());
        self.record_load(ctx.now());
        self.reschedule_cpu_timer(ctx);
    }

    fn record_load(&mut self, now: SimTime) {
        if self.config.record_load {
            self.load_samples
                .push((now.as_secs_f64(), self.pool.busy_count()));
        }
    }

    fn send_to_addr(&self, ctx: &mut Context<'_, Packet>, addr: Ipv6Addr, packet: Packet) {
        if let Some(node) = self.directory.lookup(addr) {
            ctx.send(node, packet);
        }
    }

    /// Sends a packet to the load-balancer tier, ECMP-steered by the flow's
    /// canonical (client → VIP) hash so it reaches the same instance the
    /// client's own packets are steered to.  With a single load balancer
    /// (`lb_addr` registered unicast) this degenerates to a plain lookup.
    fn send_to_lb(&self, ctx: &mut Context<'_, Packet>, flow: &FlowKey, packet: Packet) {
        if let Some(node) = self
            .directory
            .lookup_flow(self.config.lb_addr, flow.stable_hash())
        {
            ctx.send(node, packet);
        }
    }

    /// The load hint describing this server's instantaneous state, attached
    /// to acceptance SYN-ACKs and ownership adverts.
    fn load_hint(&self) -> Bytes {
        encode_load_hint(
            self.pool.busy_count() as u32,
            self.config.workers as u32,
            self.backlog.len() as u32,
        )
    }

    /// Bumps the timer generation and schedules a wake-up at the CPU's next
    /// completion instant (if any).  Must be called after every change to the
    /// set of running jobs.
    fn reschedule_cpu_timer(&mut self, ctx: &mut Context<'_, Packet>) {
        self.cpu_timer_generation += 1;
        if let Some(at) = self.cpu.next_completion(ctx.now()) {
            let delay = at.duration_since(ctx.now());
            ctx.schedule_timer(delay, TimerToken(self.cpu_timer_generation));
        }
    }

    /// Handles a hunted SYN delivered locally: the connection is established
    /// on this server and the SYN-ACK (with the acceptance SRH) is sent back
    /// through the load balancer.
    fn accept_connection(&mut self, packet: &Packet, ctx: &mut Context<'_, Packet>) {
        let flow = packet.flow_key_forward();
        let client = flow.client();
        let vip = flow.vip();
        self.connections.insert(
            flow,
            Connection {
                client,
                completed: None,
            },
        );

        let srh = self
            .router
            .acceptance_srh(client)
            .expect("acceptance SRH construction cannot fail for 3 segments");
        let syn_ack = PacketBuilder::tcp(vip, client)
            .ports(flow.vip_port(), flow.client_port())
            .flags(TcpFlags::SYN_ACK)
            .segment_routing(srh)
            .payload(self.load_hint())
            .build();
        // The active segment of the acceptance SRH is the load balancer —
        // specifically the tier instance this flow is ECMP-steered to, so
        // the flow table that learns the owner is the one that will steer
        // the flow's subsequent packets.
        self.send_to_lb(ctx, &flow, syn_ack);
    }

    /// Handles an established-flow request packet: serve, queue or reset.
    fn handle_request(&mut self, packet: &Packet, ctx: &mut Context<'_, Packet>) {
        let flow = packet.flow_key_forward();
        let Some((request_id, service)) = decode_request_payload(&packet.payload) else {
            return; // bare ACK / FIN of the handshake: nothing to do
        };
        let connection = self.connections.get(&flow).copied();
        // A retransmitted request for an already-completed connection means
        // the response was lost on the way back: replay it from connection
        // state instead of re-serving the job.
        if let Some(done) = connection.and_then(|c| c.completed) {
            if done == request_id {
                self.stats.responses_replayed += 1;
                let client = connection.map_or(flow.client(), |c| c.client);
                self.send_response(&flow, client, request_id, ctx);
            }
            return;
        }
        let client = connection.map_or(flow.client(), |c| c.client);
        // Duplicate-segment suppression: a retransmitted request whose
        // original is already running or backlogged (a spurious client
        // timeout, or a drop between here and the client while the job is
        // still in service) must not be served twice — the in-flight job's
        // response answers the retransmission.  Without this, spurious
        // retransmits under load feed back into longer queues and collapse
        // the server, exactly the storm TCP's sequence numbers prevent.
        if self
            .running
            // srlb-lint: allow(unordered-iter) -- `.any()` over an existence predicate is order-independent; no order-sensitive value escapes
            .values()
            .any(|j| j.flow == flow && j.request_id == request_id)
            || self
                .backlog
                .iter()
                .any(|j| j.flow == flow && j.request_id == request_id)
        {
            self.stats.duplicates_ignored += 1;
            return;
        }
        let job = PendingJob {
            flow,
            client,
            request_id,
            service,
        };
        if self.pool.is_saturated() {
            match self.backlog.push(job) {
                Ok(()) => {
                    self.stats.queued += 1;
                }
                Err(job) => {
                    // tcp_abort_on_overflow: reset the connection.
                    self.stats.resets += 1;
                    self.connections.remove(&job.flow);
                    let rst = PacketBuilder::tcp(job.flow.vip(), job.client)
                        .ports(job.flow.vip_port(), job.flow.client_port())
                        .flags(TcpFlags::RST)
                        .build();
                    self.send_to_addr(ctx, job.client, rst);
                }
            }
        } else {
            self.stats.served_immediately += 1;
            self.start_service(job, ctx.now());
            self.record_load(ctx.now());
            self.reschedule_cpu_timer(ctx);
        }
    }

    /// Claims a worker thread and adds the job's CPU demand to the shared
    /// CPU.  The caller is responsible for rescheduling the CPU timer.
    fn start_service(&mut self, job: PendingJob, now: SimTime) {
        let worker = self
            .pool
            .claim()
            .expect("start_service is only called with an idle worker");
        let token = self.next_job_token;
        self.next_job_token += 1;
        self.cpu.add_job(token, job.service, now);
        self.running.insert(
            token,
            RunningJob {
                worker,
                flow: job.flow,
                client: job.client,
                request_id: job.request_id,
            },
        );
    }

    /// Completes one finished job: frees its worker thread, sends the
    /// response to the client, and admits the next backlogged request if any.
    fn complete_job(&mut self, token: u64, ctx: &mut Context<'_, Packet>) {
        let Some(job) = self.running.remove(&token) else {
            return;
        };
        self.pool.release(job.worker);
        self.stats.completed += 1;
        // The connection lingers with the completed request id recorded, so
        // a retransmission of the request (lost response) can be answered
        // from state; the entry is dropped when the peer closes (RST/FIN).
        self.connections.insert(
            job.flow,
            Connection {
                client: job.client,
                completed: Some(job.request_id),
            },
        );
        self.send_response(&job.flow, job.client, job.request_id, ctx);

        // Pull the next waiting request onto the freed worker thread.
        if let Some(next) = self.backlog.pop() {
            self.start_service(next, ctx.now());
        }
    }

    /// Sends the response for `request_id` directly to the client (direct
    /// server return); the payload names this server so completions are
    /// attributable.
    fn send_response(
        &self,
        flow: &FlowKey,
        client: Ipv6Addr,
        request_id: u64,
        ctx: &mut Context<'_, Packet>,
    ) {
        let response = PacketBuilder::tcp(flow.vip(), client)
            .ports(flow.vip_port(), flow.client_port())
            .flags(TcpFlags::PSH | TcpFlags::ACK)
            .payload(encode_response_payload(
                request_id,
                self.config.server_index,
            ))
            .build();
        self.send_to_addr(ctx, client, response);
    }

    /// Handles a *re-hunted* packet: a non-SYN packet carrying a Service
    /// Hunting SRH, which only happens when a (recovered) load balancer had
    /// no flow-table entry for an established flow and fell back to the
    /// candidate list.  Unlike connection establishment, the decision here
    /// is by **ownership**, not instantaneous load:
    ///
    /// * this server owns the *live* connection — deliver locally and send
    ///   an ownership advert (an acceptance-style SRH) to the load balancer
    ///   so its flow table is reconstructed in-band,
    /// * the connection completed and only lingers for response replay — a
    ///   retransmission of the completed request is answered from state,
    ///   anything else falls through as if the flow were unknown (a dead
    ///   flow must not be resurrected into the flow table),
    /// * another candidate may own it — forward along the SR list,
    /// * last candidate and nobody owned it — the connection is
    ///   unrecoverable: reset it so the client learns immediately.
    fn handle_rehunted(&mut self, mut packet: Packet, ctx: &mut Context<'_, Packet>) {
        let flow = packet.flow_key_forward();
        let segments_left = packet.srh.as_ref().map_or(0, |s| s.segments_left());
        match self.connections.get(&flow).copied() {
            Some(conn) if conn.completed.is_none() => {
                if packet.set_segments_left(0).is_err() {
                    return;
                }
                self.stats.ownership_adverts += 1;
                self.send_ownership_advert(&flow, ctx);
                self.deliver_established(packet, ctx);
                return;
            }
            Some(conn) => {
                // The connection completed and lingers only to answer
                // retransmissions: replay a matching request, but never
                // advert ownership — the flow is dead, and a re-hunt must
                // not re-install it in the load balancer's table.
                if let Some((request_id, _)) = decode_request_payload(&packet.payload) {
                    if conn.completed == Some(request_id) {
                        self.stats.responses_replayed += 1;
                        self.send_response(&flow, conn.client, request_id, ctx);
                        return;
                    }
                }
                if packet.is_rst() || packet.is_fin() {
                    self.connections.remove(&flow);
                    return;
                }
            }
            None => {}
        }
        if segments_left >= 2 {
            if let Ok(next_hop) = packet.advance_segment() {
                self.send_to_addr(ctx, next_hop, packet);
            }
        } else {
            self.stats.orphaned += 1;
            let rst = PacketBuilder::tcp(flow.vip(), flow.client())
                .ports(flow.vip_port(), flow.client_port())
                .flags(TcpFlags::RST)
                .build();
            self.send_to_addr(ctx, flow.client(), rst);
        }
    }

    /// Re-announces ownership of `flow` to the load balancer with the same
    /// acceptance SRH a SYN-ACK carries, so the (recovered) load balancer
    /// re-learns *flow → server* purely in-band.
    fn send_ownership_advert(&self, flow: &FlowKey, ctx: &mut Context<'_, Packet>) {
        let srh = self
            .router
            .acceptance_srh(flow.client())
            .expect("acceptance SRH construction cannot fail for 3 segments");
        let advert = PacketBuilder::tcp(flow.vip(), flow.client())
            .ports(flow.vip_port(), flow.client_port())
            .flags(TcpFlags::ACK)
            .segment_routing(srh)
            .payload(self.load_hint())
            .build();
        self.send_to_lb(ctx, flow, advert);
    }

    /// Handles a locally delivered non-SYN packet of an established flow.
    fn deliver_established(&mut self, packet: Packet, ctx: &mut Context<'_, Packet>) {
        if packet.is_rst() || packet.is_fin() {
            // Connection aborted or closed by the peer.
            self.connections.remove(&packet.flow_key_forward());
        } else {
            self.handle_request(&packet, ctx);
        }
    }
}

impl Node<Packet> for ServerNode {
    fn on_message(&mut self, packet: Packet, _from: NodeId, ctx: &mut Context<'_, Packet>) {
        // A non-SYN packet whose SRH leads with a *foreign* first segment is
        // a re-hunt (flow-table reconstruction after load-balancer
        // failover): the load balancer marks re-hunt routes with itself as
        // the already-consumed first segment, whereas steered traffic always
        // arrives as `[self, VIP]`.  Re-hunts are routed by connection
        // ownership, not load.
        if !packet.is_syn() {
            if let Some(srh) = packet.srh.as_ref() {
                if srh.segments_left() >= 1 && srh.first_segment() != self.config.addr {
                    self.handle_rehunted(packet, ctx);
                    return;
                }
            }
        }
        let scoreboard = self.pool.scoreboard();
        let accepted_before = self.agent.accepted();
        let action = match self.router.process(packet, &mut self.agent, scoreboard) {
            Ok(action) => action,
            Err(_) => return, // malformed SRH: drop
        };
        match action {
            RouterAction::Forward { packet, next_hop } => {
                self.stats.passed_on += 1;
                self.send_to_addr(ctx, next_hop, packet);
            }
            RouterAction::DeliverLocal(packet) => {
                if packet.is_syn() {
                    // A SYN accepted without consulting the agent was a
                    // forced acceptance (this server was the last candidate).
                    if self.agent.accepted() > accepted_before {
                        self.stats.accepted_by_policy += 1;
                    } else {
                        self.stats.forced_accepts += 1;
                    }
                    self.accept_connection(&packet, ctx);
                } else {
                    self.deliver_established(packet, ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, Packet>) {
        if token.0 != self.cpu_timer_generation {
            return; // stale wake-up from before the last CPU change
        }
        let finished = self.cpu.take_completed(ctx.now());
        for job_token in finished {
            self.complete_job(job_token, ctx);
        }
        self.record_load(ctx.now());
        self.reschedule_cpu_timer(ctx);
    }

    fn name(&self) -> String {
        format!("server-{}", self.config.server_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let payload = encode_request_payload(42, SimDuration::from_millis(100));
        assert_eq!(payload.len(), 16);
        let (id, service) = decode_request_payload(&payload).unwrap();
        assert_eq!(id, 42);
        assert_eq!(service, SimDuration::from_millis(100));
    }

    #[test]
    fn response_payload_roundtrip() {
        let payload = encode_response_payload(42, 7);
        assert_eq!(payload.len(), 12);
        assert_eq!(decode_response_payload(&payload), Some((42, 7)));
        assert_eq!(decode_response_payload(&payload[..8]), None);
    }

    #[test]
    fn stats_absorb_sums_fieldwise() {
        let mut a = ServerStats {
            completed: 3,
            resets: 1,
            ..ServerStats::default()
        };
        let b = ServerStats {
            completed: 2,
            orphaned: 4,
            ownership_adverts: 5,
            ..ServerStats::default()
        };
        a.absorb(b);
        assert_eq!(a.completed, 5);
        assert_eq!(a.resets, 1);
        assert_eq!(a.orphaned, 4);
        assert_eq!(a.ownership_adverts, 5);
    }

    #[test]
    fn short_payload_is_rejected() {
        assert_eq!(decode_request_payload(&[1, 2, 3]), None);
        assert_eq!(decode_request_payload(&[]), None);
    }

    #[test]
    fn load_hint_roundtrip() {
        let payload = encode_load_hint(5, 32, 17);
        assert_eq!(payload.len(), 12);
        assert_eq!(decode_load_hint(&payload), Some((5, 32, 17)));
        assert_eq!(decode_load_hint(&payload[..8]), None);
        assert_eq!(decode_load_hint(&[]), None);
    }

    #[test]
    fn server_config_paper_defaults() {
        let cfg = ServerConfig::paper(
            3,
            "fd00::3".parse().unwrap(),
            "fd00::1b".parse().unwrap(),
            PolicyConfig::Static { threshold: 4 },
        );
        assert_eq!(cfg.workers, 32);
        assert_eq!(cfg.cores, 2);
        assert_eq!(cfg.backlog, 128);
        assert!(!cfg.record_load);
        let node = ServerNode::new(cfg, Directory::new());
        assert_eq!(node.busy_workers(), 0);
        assert_eq!(node.backlog_depth(), 0);
        assert_eq!(node.server_index(), 3);
        assert_eq!(node.addr(), "fd00::3".parse::<Ipv6Addr>().unwrap());
        assert_eq!(node.stats(), ServerStats::default());
        assert_eq!(Node::<Packet>::name(&node), "server-3");
    }
}
