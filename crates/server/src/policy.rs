//! Connection acceptance policies (paper Section III).
//!
//! A policy decides, for a hunted connection reaching a *non-final*
//! candidate server, whether the local application instance accepts the
//! connection or passes it on to the next candidate in the SR list.  The
//! final candidate always accepts (satisfiability guarantee), so policies
//! are never consulted for it.
//!
//! * [`StaticThreshold`] — the paper's `SRc` (Algorithm 1): accept iff fewer
//!   than `c` worker threads are busy.
//! * [`DynamicThreshold`] — the paper's `SRdyn` (Algorithm 2): adapt `c` to
//!   keep the acceptance ratio near 1/2 over a sliding window.
//! * [`AlwaysAccept`] / [`NeverAccept`] — the degenerate policies `c = n+1`
//!   and `c = 0`, both equivalent to random load balancing.

use serde::{Deserialize, Serialize};

use crate::worker::Scoreboard;

/// The outcome of a policy decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AcceptDecision {
    /// Deliver the connection to the local application instance
    /// (`SegmentsLeft ← 0`).
    Accept,
    /// Forward the connection to the next candidate in the SR list
    /// (`SegmentsLeft ← SegmentsLeft − 1`).
    PassOn,
}

impl AcceptDecision {
    /// Returns `true` for [`AcceptDecision::Accept`].
    pub fn is_accept(self) -> bool {
        self == AcceptDecision::Accept
    }
}

/// A connection acceptance policy, consulted once per hunted connection that
/// reaches this server as a non-final candidate.
pub trait AcceptPolicy: std::fmt::Debug + Send {
    /// Decides whether to accept given the current application state.
    fn decide(&mut self, scoreboard: Scoreboard) -> AcceptDecision;

    /// The current acceptance threshold, if the policy has one (used by the
    /// dynamic-policy ablation benches and tests).
    fn current_threshold(&self) -> Option<usize> {
        None
    }

    /// A short name for reports (e.g. `"SR4"`, `"SRdyn"`).
    fn name(&self) -> String;
}

/// Always accept: equivalent to `SRc` with `c = n + 1`; every connection is
/// served by the first candidate, reducing to random load balancing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlwaysAccept;

impl AcceptPolicy for AlwaysAccept {
    fn decide(&mut self, _scoreboard: Scoreboard) -> AcceptDecision {
        AcceptDecision::Accept
    }
    fn name(&self) -> String {
        "always-accept".to_string()
    }
}

/// Never accept: equivalent to `SRc` with `c = 0`; every connection is served
/// by the final candidate, also reducing to random load balancing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeverAccept;

impl AcceptPolicy for NeverAccept {
    fn decide(&mut self, _scoreboard: Scoreboard) -> AcceptDecision {
        AcceptDecision::PassOn
    }
    fn name(&self) -> String {
        "never-accept".to_string()
    }
}

/// The paper's static policy `SRc` (Algorithm 1): accept iff fewer than `c`
/// worker threads are busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticThreshold {
    /// The busy-thread threshold `c`.
    pub threshold: usize,
}

impl StaticThreshold {
    /// Creates the policy `SRc` with threshold `c`.
    pub fn new(threshold: usize) -> Self {
        StaticThreshold { threshold }
    }
}

impl AcceptPolicy for StaticThreshold {
    fn decide(&mut self, scoreboard: Scoreboard) -> AcceptDecision {
        if scoreboard.busy < self.threshold {
            AcceptDecision::Accept
        } else {
            AcceptDecision::PassOn
        }
    }

    fn current_threshold(&self) -> Option<usize> {
        Some(self.threshold)
    }

    fn name(&self) -> String {
        format!("SR{}", self.threshold)
    }
}

/// The paper's dynamic policy `SRdyn` (Algorithm 2).
///
/// Decisions are counted over a window of `window_size` consultations; at
/// the end of each window, if the acceptance ratio fell below `low_ratio`
/// the threshold `c` is incremented (up to the number of workers), and if it
/// rose above `high_ratio` the threshold is decremented (down to 0).  The
/// paper uses a window of 50 with thresholds 0.4 and 0.6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicThreshold {
    threshold: usize,
    window_size: u32,
    low_ratio: f64,
    high_ratio: f64,
    attempts: u32,
    accepted: u32,
    adjustments: u64,
}

impl DynamicThreshold {
    /// Creates the paper's `SRdyn`: initial threshold 1, window 50,
    /// adaptation band `[0.4, 0.6]`.
    pub fn paper_default() -> Self {
        Self::new(1, 50, 0.4, 0.6)
    }

    /// Creates a dynamic policy with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `window_size` is zero or the ratios do not satisfy
    /// `0 <= low <= high <= 1`.
    pub fn new(
        initial_threshold: usize,
        window_size: u32,
        low_ratio: f64,
        high_ratio: f64,
    ) -> Self {
        assert!(window_size > 0, "window size must be positive");
        assert!(
            (0.0..=1.0).contains(&low_ratio)
                && (0.0..=1.0).contains(&high_ratio)
                && low_ratio <= high_ratio,
            "adaptation ratios must satisfy 0 <= low <= high <= 1"
        );
        DynamicThreshold {
            threshold: initial_threshold,
            window_size,
            low_ratio,
            high_ratio,
            attempts: 0,
            accepted: 0,
            adjustments: 0,
        }
    }

    /// Number of window-boundary adjustments performed so far.
    pub fn adjustment_count(&self) -> u64 {
        self.adjustments
    }

    /// The configured window size.
    pub fn window_size(&self) -> u32 {
        self.window_size
    }
}

impl AcceptPolicy for DynamicThreshold {
    fn decide(&mut self, scoreboard: Scoreboard) -> AcceptDecision {
        // End-of-window adaptation (Algorithm 2 adapts when the counter
        // reaches the window size, before making the current decision).
        self.attempts += 1;
        if self.attempts == self.window_size {
            let ratio = self.accepted as f64 / self.window_size as f64;
            if ratio < self.low_ratio && self.threshold < scoreboard.total {
                self.threshold += 1;
                self.adjustments += 1;
            } else if ratio > self.high_ratio && self.threshold > 0 {
                self.threshold -= 1;
                self.adjustments += 1;
            }
            self.attempts = 0;
            self.accepted = 0;
        }

        if scoreboard.busy < self.threshold {
            self.accepted += 1;
            AcceptDecision::Accept
        } else {
            AcceptDecision::PassOn
        }
    }

    fn current_threshold(&self) -> Option<usize> {
        Some(self.threshold)
    }

    fn name(&self) -> String {
        "SRdyn".to_string()
    }
}

/// Serialisable policy configuration, turned into a boxed [`AcceptPolicy`]
/// per server by the experiment driver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyConfig {
    /// Always accept at the first candidate.
    AlwaysAccept,
    /// Never accept at a non-final candidate.
    NeverAccept,
    /// The static `SRc` policy with the given threshold.
    Static {
        /// Busy-thread threshold `c`.
        threshold: usize,
    },
    /// The dynamic `SRdyn` policy.
    Dynamic {
        /// Initial threshold.
        initial_threshold: usize,
        /// Adaptation window size (number of decisions).
        window_size: u32,
        /// Lower acceptance-ratio bound.
        low_ratio: f64,
        /// Upper acceptance-ratio bound.
        high_ratio: f64,
    },
}

impl PolicyConfig {
    /// The paper's `SRdyn` parameters.
    pub fn paper_dynamic() -> Self {
        PolicyConfig::Dynamic {
            initial_threshold: 1,
            window_size: 50,
            low_ratio: 0.4,
            high_ratio: 0.6,
        }
    }

    /// Builds a fresh policy instance from this configuration.
    pub fn build(&self) -> Box<dyn AcceptPolicy> {
        match *self {
            PolicyConfig::AlwaysAccept => Box::new(AlwaysAccept),
            PolicyConfig::NeverAccept => Box::new(NeverAccept),
            PolicyConfig::Static { threshold } => Box::new(StaticThreshold::new(threshold)),
            PolicyConfig::Dynamic {
                initial_threshold,
                window_size,
                low_ratio,
                high_ratio,
            } => Box::new(DynamicThreshold::new(
                initial_threshold,
                window_size,
                low_ratio,
                high_ratio,
            )),
        }
    }

    /// A short name for reports (`"SR4"`, `"SRdyn"`, …).
    pub fn name(&self) -> String {
        self.build().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb(busy: usize, total: usize) -> Scoreboard {
        Scoreboard { busy, total }
    }

    #[test]
    fn static_policy_matches_algorithm1() {
        let mut p = StaticThreshold::new(4);
        assert!(p.decide(sb(0, 32)).is_accept());
        assert!(p.decide(sb(3, 32)).is_accept());
        assert_eq!(p.decide(sb(4, 32)), AcceptDecision::PassOn);
        assert_eq!(p.decide(sb(31, 32)), AcceptDecision::PassOn);
        assert_eq!(p.current_threshold(), Some(4));
        assert_eq!(p.name(), "SR4");
    }

    #[test]
    fn degenerate_static_policies_match_always_and_never() {
        // c = 0: never accept at the first candidate.
        let mut zero = StaticThreshold::new(0);
        assert_eq!(zero.decide(sb(0, 32)), AcceptDecision::PassOn);
        // c = n + 1: always accept.
        let mut all = StaticThreshold::new(33);
        assert!(all.decide(sb(32, 32)).is_accept());

        let mut always = AlwaysAccept;
        let mut never = NeverAccept;
        assert!(always.decide(sb(32, 32)).is_accept());
        assert_eq!(never.decide(sb(0, 32)), AcceptDecision::PassOn);
        assert_eq!(always.current_threshold(), None);
        assert_eq!(never.name(), "never-accept");
        assert_eq!(always.name(), "always-accept");
    }

    #[test]
    fn dynamic_policy_raises_threshold_under_low_acceptance() {
        // Busy count always high: nothing is accepted, so at each window end
        // the threshold should rise by one (until it reaches total workers).
        let mut p = DynamicThreshold::paper_default();
        assert_eq!(p.current_threshold(), Some(1));
        for _ in 0..50 {
            p.decide(sb(32, 32));
        }
        assert_eq!(p.current_threshold(), Some(2));
        for _ in 0..(50 * 40) {
            p.decide(sb(32, 32));
        }
        assert_eq!(p.current_threshold(), Some(32), "threshold is capped at n");
        assert!(p.adjustment_count() >= 31);
    }

    #[test]
    fn dynamic_policy_lowers_threshold_under_high_acceptance() {
        let mut p = DynamicThreshold::new(5, 50, 0.4, 0.6);
        // Idle server: everything is accepted while the threshold is above
        // zero, so the threshold falls.  Once it reaches 0 the acceptance
        // ratio collapses and the policy pushes it back to 1, so in steady
        // state it oscillates around the floor (this is the behaviour the
        // paper describes: c = 0 degenerates to second-candidate-only).
        let mut reached_zero = false;
        for _ in 0..(50 * 10) {
            p.decide(sb(0, 32));
            if p.current_threshold() == Some(0) {
                reached_zero = true;
            }
        }
        assert!(reached_zero, "threshold should reach the floor of 0");
        assert!(p.current_threshold().unwrap() <= 1, "stays near the floor");
        assert!(p.adjustment_count() >= 5);
    }

    #[test]
    fn dynamic_policy_stays_put_in_band() {
        // Alternate accept / pass-on so the ratio is exactly 0.5.
        let mut p = DynamicThreshold::new(4, 50, 0.4, 0.6);
        for i in 0..500 {
            let busy = if i % 2 == 0 { 0 } else { 32 };
            p.decide(sb(busy, 32));
        }
        assert_eq!(p.current_threshold(), Some(4));
        assert_eq!(p.adjustment_count(), 0);
    }

    #[test]
    fn dynamic_policy_window_resets_counters() {
        let mut p = DynamicThreshold::new(1, 10, 0.4, 0.6);
        // First window: all pass-on -> threshold 2.
        for _ in 0..10 {
            p.decide(sb(32, 32));
        }
        assert_eq!(p.current_threshold(), Some(2));
        // Second window: all accepted -> threshold back to 1.
        for _ in 0..10 {
            p.decide(sb(0, 32));
        }
        assert_eq!(p.current_threshold(), Some(1));
        assert_eq!(p.window_size(), 10);
    }

    #[test]
    fn config_builds_matching_policies() {
        assert_eq!(PolicyConfig::Static { threshold: 8 }.name(), "SR8");
        assert_eq!(PolicyConfig::paper_dynamic().name(), "SRdyn");
        assert_eq!(PolicyConfig::AlwaysAccept.name(), "always-accept");
        assert_eq!(PolicyConfig::NeverAccept.name(), "never-accept");
        let mut built = PolicyConfig::Static { threshold: 2 }.build();
        assert!(built.decide(sb(1, 32)).is_accept());
        assert!(!built.decide(sb(2, 32)).is_accept());
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_panics() {
        DynamicThreshold::new(1, 0, 0.4, 0.6);
    }

    #[test]
    #[should_panic(expected = "ratios")]
    fn inverted_ratios_panic() {
        DynamicThreshold::new(1, 10, 0.7, 0.3);
    }
}
