//! The TCP accept queue (listen backlog).
//!
//! The paper configures each Apache server with a TCP backlog of 128 and
//! enables `tcp_abort_on_overflow`, so that when the backlog is full an
//! incoming connection is reset instead of silently dropped (which would
//! otherwise hide queueing delays behind SYN retransmissions).  [`Backlog`]
//! models that queue: requests wait here for an idle worker; pushing into a
//! full backlog fails, and the server converts that failure into a TCP RST.

use std::collections::VecDeque;

/// A bounded FIFO queue of connections waiting for a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backlog<T> {
    capacity: usize,
    queue: VecDeque<T>,
    /// Total number of rejected pushes (overflow events).
    overflows: u64,
}

impl<T> Backlog<T> {
    /// Creates a backlog with the given capacity.
    pub fn new(capacity: usize) -> Self {
        Backlog {
            capacity,
            queue: VecDeque::new(),
            overflows: 0,
        }
    }

    /// The paper's configuration: a backlog of 128 connections.
    pub fn paper_default() -> Self {
        Self::new(128)
    }

    /// Maximum number of queued connections.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued connections.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Returns `true` if the backlog is full.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Number of pushes rejected because the backlog was full.
    pub fn overflow_count(&self) -> u64 {
        self.overflows
    }

    /// Enqueues a connection; on overflow the item is handed back as `Err`
    /// (the caller sends a RST, per `tcp_abort_on_overflow`).
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.overflows += 1;
            Err(item)
        } else {
            self.queue.push_back(item);
            Ok(())
        }
    }

    /// Dequeues the oldest waiting connection.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Iterates over the queued connections, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut b = Backlog::new(3);
        b.push(1).unwrap();
        b.push(2).unwrap();
        b.push(3).unwrap();
        assert_eq!(b.pop(), Some(1));
        assert_eq!(b.pop(), Some(2));
        assert_eq!(b.pop(), Some(3));
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn overflow_returns_item_and_counts() {
        let mut b = Backlog::new(2);
        b.push("a").unwrap();
        b.push("b").unwrap();
        assert!(b.is_full());
        assert_eq!(b.push("c"), Err("c"));
        assert_eq!(b.push("d"), Err("d"));
        assert_eq!(b.overflow_count(), 2);
        assert_eq!(b.len(), 2);
        b.pop();
        assert!(!b.is_full());
        b.push("c").unwrap();
        assert_eq!(b.overflow_count(), 2);
    }

    #[test]
    fn zero_capacity_always_overflows() {
        let mut b = Backlog::new(0);
        assert!(b.is_full());
        assert!(b.is_empty());
        assert_eq!(b.push(7), Err(7));
    }

    #[test]
    fn paper_default_capacity() {
        let b: Backlog<u32> = Backlog::paper_default();
        assert_eq!(b.capacity(), 128);
    }
}
