//! The application agent.
//!
//! In the paper the agent is a VPP plugin that reads Apache's scoreboard
//! shared memory so the virtual router can consult application state without
//! system calls or synchronisation.  Here the agent simply pairs a
//! [`WorkerPool`] scoreboard reader with an [`AcceptPolicy`] and tracks
//! acceptance statistics.

use crate::policy::{AcceptDecision, AcceptPolicy};
use crate::worker::Scoreboard;

/// The per-server application agent: policy plus decision statistics.
#[derive(Debug)]
pub struct ApplicationAgent {
    policy: Box<dyn AcceptPolicy>,
    consultations: u64,
    accepted: u64,
}

impl ApplicationAgent {
    /// Creates an agent running the given policy.
    pub fn new(policy: Box<dyn AcceptPolicy>) -> Self {
        ApplicationAgent {
            policy,
            consultations: 0,
            accepted: 0,
        }
    }

    /// Consults the policy for a hunted connection, given the current
    /// scoreboard.
    pub fn decide(&mut self, scoreboard: Scoreboard) -> AcceptDecision {
        self.consultations += 1;
        let decision = self.policy.decide(scoreboard);
        if decision.is_accept() {
            self.accepted += 1;
        }
        decision
    }

    /// Number of times the policy has been consulted.
    pub fn consultations(&self) -> u64 {
        self.consultations
    }

    /// Number of consultations that resulted in acceptance.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Acceptance ratio so far (0.0 if never consulted).
    pub fn acceptance_ratio(&self) -> f64 {
        if self.consultations == 0 {
            0.0
        } else {
            self.accepted as f64 / self.consultations as f64
        }
    }

    /// The policy's current threshold, if it has one.
    pub fn current_threshold(&self) -> Option<usize> {
        self.policy.current_threshold()
    }

    /// The policy's name.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StaticThreshold;

    #[test]
    fn agent_tracks_statistics() {
        let mut agent = ApplicationAgent::new(Box::new(StaticThreshold::new(2)));
        assert_eq!(agent.acceptance_ratio(), 0.0);
        let accept = agent.decide(Scoreboard { busy: 0, total: 4 });
        let pass = agent.decide(Scoreboard { busy: 3, total: 4 });
        assert!(accept.is_accept());
        assert!(!pass.is_accept());
        assert_eq!(agent.consultations(), 2);
        assert_eq!(agent.accepted(), 1);
        assert!((agent.acceptance_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(agent.current_threshold(), Some(2));
        assert_eq!(agent.policy_name(), "SR2");
    }
}
