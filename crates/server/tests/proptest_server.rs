//! Property-based tests for the server substrates: processor-sharing CPU
//! work conservation, worker-pool bookkeeping, backlog bounds and acceptance
//! policy invariants.

use proptest::prelude::*;
use srlb_server::cpu::ProcessorSharingCpu;
use srlb_server::policy::{AcceptPolicy, DynamicThreshold, StaticThreshold};
use srlb_server::{Backlog, Scoreboard, WorkerPool};
use srlb_sim::{SimDuration, SimTime};

fn t_ms(ms: u64) -> SimTime {
    SimTime::from_nanos(ms * 1_000_000)
}

proptest! {
    /// Under processor sharing, the total time to drain a batch of jobs that
    /// all arrive at t = 0 is bounded below by total_work / cores and bounded
    /// above by total_work (the single-core completion time), and every job
    /// completes.
    #[test]
    fn cpu_drain_time_is_bounded(
        cores in 1usize..8,
        demands_ms in prop::collection::vec(1u64..500, 1..40),
    ) {
        let mut cpu = ProcessorSharingCpu::new(cores);
        for (id, &d) in demands_ms.iter().enumerate() {
            cpu.add_job(id as u64, SimDuration::from_millis(d), t_ms(0));
        }
        let mut now = t_ms(0);
        let mut completed = 0usize;
        let mut guard = 0;
        while let Some(next) = cpu.next_completion(now) {
            now = next;
            completed += cpu.take_completed(now).len();
            guard += 1;
            prop_assert!(guard < 10_000, "completion loop did not converge");
        }
        prop_assert_eq!(completed, demands_ms.len());
        prop_assert!(cpu.is_idle());

        let total_work_s: f64 = demands_ms.iter().map(|&d| d as f64 / 1e3).sum();
        let drain_s = now.as_secs_f64();
        prop_assert!(drain_s + 1e-6 >= total_work_s / cores as f64,
            "drained faster than the cores allow: {drain_s} < {total_work_s}/{cores}");
        let max_single_ms = *demands_ms.iter().max().unwrap() as f64 / 1e3;
        prop_assert!(drain_s <= total_work_s + max_single_ms + 1e-6,
            "drained slower than a single core would: {drain_s} > {total_work_s}");
    }

    /// The per-job rate never exceeds one core and never drops below
    /// cores / jobs.
    #[test]
    fn cpu_rate_is_fair(cores in 1usize..8, jobs in 1usize..64) {
        let mut cpu = ProcessorSharingCpu::new(cores);
        for id in 0..jobs {
            cpu.add_job(id as u64, SimDuration::from_millis(100), t_ms(0));
        }
        let rate = cpu.rate();
        prop_assert!(rate <= 1.0 + 1e-12);
        prop_assert!((rate - (cores as f64 / jobs as f64).min(1.0)).abs() < 1e-12);
    }

    /// Claim/release sequences never corrupt the busy count, and the pool
    /// saturates exactly at its capacity.
    #[test]
    fn worker_pool_bookkeeping(total in 1usize..64, ops in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut pool = WorkerPool::new(total);
        let mut claimed = Vec::new();
        for claim in ops {
            if claim {
                match pool.claim() {
                    Some(id) => claimed.push(id),
                    None => prop_assert_eq!(pool.busy_count(), total),
                }
            } else if let Some(id) = claimed.pop() {
                pool.release(id);
            }
            prop_assert_eq!(pool.busy_count(), claimed.len());
            prop_assert_eq!(pool.idle_count(), total - claimed.len());
            prop_assert_eq!(pool.is_saturated(), claimed.len() == total);
            let sb = pool.scoreboard();
            prop_assert_eq!(sb.busy, claimed.len());
            prop_assert_eq!(sb.total, total);
        }
    }

    /// The backlog never holds more than its capacity and never loses or
    /// duplicates items.
    #[test]
    fn backlog_is_bounded_and_lossless(capacity in 0usize..64, pushes in 0usize..200) {
        let mut backlog = Backlog::new(capacity);
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        for i in 0..pushes {
            match backlog.push(i) {
                Ok(()) => accepted.push(i),
                Err(v) => {
                    prop_assert_eq!(v, i);
                    rejected += 1;
                }
            }
            prop_assert!(backlog.len() <= capacity);
        }
        prop_assert_eq!(backlog.overflow_count(), rejected);
        // Nothing was popped while pushing, so everything accepted is still
        // queued, in FIFO order, and nothing else is.
        let mut drained = Vec::new();
        while let Some(v) = backlog.pop() {
            drained.push(v);
        }
        prop_assert_eq!(drained, accepted);
    }

    /// The static policy is monotone in the busy count: if it refuses at some
    /// load it refuses at every higher load, and it accepts exactly the loads
    /// strictly below the threshold.
    #[test]
    fn static_policy_is_monotone(threshold in 0usize..40, total in 1usize..40) {
        let mut policy = StaticThreshold::new(threshold);
        for busy in 0..=total {
            let decision = policy.decide(Scoreboard { busy, total });
            prop_assert_eq!(decision.is_accept(), busy < threshold);
        }
    }

    /// The dynamic policy's threshold always stays within [0, total workers],
    /// regardless of the load pattern it observes.
    #[test]
    fn dynamic_policy_threshold_stays_in_bounds(
        window in 1u32..100,
        total in 1usize..64,
        loads in prop::collection::vec(0usize..64, 0..500),
    ) {
        let mut policy = DynamicThreshold::new(1, window, 0.4, 0.6);
        for busy in loads {
            let busy = busy.min(total);
            policy.decide(Scoreboard { busy, total });
            let c = policy.current_threshold().unwrap();
            prop_assert!(c <= total, "threshold {c} exceeded total {total}");
        }
    }
}
