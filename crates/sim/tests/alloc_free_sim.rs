//! Asserts that the simulator's event queue performs **zero heap
//! allocations** per event in steady state: events are stored inline in the
//! backing binary heap (no per-event `Box` or other indirection), so once
//! the heap has grown to its high-water mark, scheduling and delivering
//! events never touches the allocator.  The ECMP steering fast path is
//! pinned alloc-free the same way.
//!
//! The counter is **per-thread**: the libtest harness runs its own
//! bookkeeping (progress output, timeouts) on other threads whose
//! allocations would otherwise race into a counted section on a loaded
//! machine, so only allocations made by the measuring thread itself are
//! counted.  Every assertion is a strict single-pass `== 0` — a lazily
//! allocated structure on the first warm operation fails immediately.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use srlb_sim::{
    Context, EventKey, EventQueue, Network, Node, NodeId, RunUntil, SimDuration, SimTime,
    TimerToken, Topology,
};

/// Wraps the system allocator, counting every allocation of the current
/// thread.
struct CountingAllocator;

std::thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Bumps the current thread's allocation count; `try_with` so allocations
/// during thread teardown (after TLS destruction) stay safe to count-skip.
fn bump() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: delegates directly to the system allocator; the counter has no
// effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Runs `f` and returns `(allocations performed by this thread, result)`.
fn counting_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.with(Cell::get);
    let result = f();
    (ALLOCATIONS.with(Cell::get) - before, result)
}

/// A ping-pong node holding no growable state, so a running network's only
/// possible allocation source is the engine itself.
struct Counter {
    peer: Option<NodeId>,
    bounces: u32,
    received: u64,
}

impl Node<u64> for Counter {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if let Some(peer) = self.peer {
            ctx.send(peer, 0);
        }
    }
    fn on_message(&mut self, msg: u64, from: NodeId, ctx: &mut Context<'_, u64>) {
        self.received += 1;
        if msg < self.bounces as u64 {
            ctx.send(from, msg + 1);
        }
    }
    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut Context<'_, u64>) {}
}

#[test]
fn event_scheduling_is_allocation_free_in_steady_state() {
    // --- EventQueue: warm push/pop cycles never allocate -------------------
    let mut queue: EventQueue<u64> = EventQueue::with_capacity(64);
    let capacity = queue.capacity();
    assert!(capacity >= 64);

    let (allocs, ()) = counting_allocs(|| {
        // Interleave pushes and pops, keeping the queue within its initial
        // capacity: 10 000 events through a warm queue, zero allocations.
        for round in 0..1_000u64 {
            for i in 0..10u64 {
                queue.push(
                    EventKey {
                        time: SimTime::from_nanos(round * 100 + i),
                        src: NodeId(0),
                        seq: round * 10 + i,
                    },
                    NodeId((i % 3) as usize),
                    srlb_sim::event::EventPayload::Message {
                        from: NodeId(0),
                        msg: round ^ i,
                    },
                );
            }
            for _ in 0..10 {
                queue.pop().expect("queue holds the events just pushed");
            }
        }
    });
    assert_eq!(allocs, 0, "warm EventQueue push/pop must not allocate");
    assert_eq!(queue.capacity(), capacity, "heap never grew");
    assert_eq!(queue.scheduled_total(), 10_000);

    // --- Network: a warmed-up engine delivers events without allocating ----
    let mut net: Network<u64> = Network::new(1, Topology::datacenter());
    let a = net.add_node(Counter {
        peer: None,
        bounces: u32::MAX,
        received: 0,
    });
    // Warm-up segment: grows the event heap (and any lazy engine state) to
    // its steady-state footprint.
    net.add_node(Counter {
        peer: Some(a),
        bounces: 200,
        received: 0,
    });
    net.run_until(RunUntil::Drained);

    // Steady state: another ping-pong burst through the same engine.
    let b2 = net.add_node(Counter {
        peer: Some(a),
        bounces: 200,
        received: 0,
    });
    let (allocs, stats) = counting_allocs(|| net.run_until(RunUntil::Drained));
    assert_eq!(
        allocs, 0,
        "steady-state event delivery must not allocate (got {allocs})"
    );
    assert!(stats.messages_delivered >= 400);
    let b2_node: Counter = net.into_node(b2);
    assert!(b2_node.received > 0);

    // --- Batched loop: same-timestamp bursts stay alloc-free ---------------
    // A fan node delivers 8 messages per round at one shared timestamp, so
    // every round exercises the same-time group draining and held-node reuse
    // paths of the batched loop.  After a warm-up segment grew the event
    // heap to its high-water mark, steady-state batching must never
    // allocate.
    struct Fan {
        sinks: Vec<NodeId>,
        remaining: u32,
    }
    impl Node<u64> for Fan {
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.schedule_timer(SimDuration::from_micros(100), TimerToken(0));
        }
        fn on_message(&mut self, _m: u64, _f: NodeId, _c: &mut Context<'_, u64>) {}
        fn on_timer(&mut self, _token: TimerToken, ctx: &mut Context<'_, u64>) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            for &sink in &self.sinks {
                ctx.send(sink, u64::from(self.remaining));
            }
            ctx.schedule_timer(SimDuration::from_micros(100), TimerToken(0));
        }
    }
    let mut net: Network<u64> = Network::new(2, Topology::datacenter());
    let sinks: Vec<NodeId> = (0..8)
        .map(|_| {
            net.add_node(Counter {
                peer: None,
                bounces: 0,
                received: 0,
            })
        })
        .collect();
    let fan = net.add_node(Fan {
        sinks,
        remaining: 50,
    });
    net.run_until(RunUntil::Drained); // warm-up: grows heap + batch scratch
    net.control::<Fan, _>(fan, |f, ctx| {
        f.remaining = 50;
        ctx.schedule_timer(SimDuration::from_micros(100), TimerToken(0));
    })
    .expect("fan node present");
    let (allocs, stats) = counting_allocs(|| net.run_until(RunUntil::Drained));
    assert_eq!(
        allocs, 0,
        "steady-state batched delivery must not allocate (got {allocs})"
    );
    assert!(stats.messages_delivered >= 800);

    // --- Fault layer: a warm lossy delivery path never allocates -----------
    // Every fault-rule class is armed at once — wildcard probabilistic loss,
    // a one-shot drop, a down window and a bounded queue on the fan's first
    // sink — so each delivery runs the full judge path (coin hash, link
    // state lookup, queue drain).  Timer-driven fan rounds keep the event
    // chain alive through drops; after a warm-up segment populated the lazy
    // link-state table, steady-state judged delivery must be alloc-free.
    let mut net: Network<u64> = Network::new(4, Topology::datacenter());
    let sinks: Vec<NodeId> = (0..8)
        .map(|_| {
            net.add_node(Counter {
                peer: None,
                bounces: 0,
                received: 0,
            })
        })
        .collect();
    let first_sink = sinks[0];
    let fan = net.add_node(Fan {
        sinks,
        remaining: 50,
    });
    net.core_mut().set_faults(&srlb_sim::FaultConfig {
        loss: vec![srlb_sim::LossRule {
            link: srlb_sim::LinkMatch {
                from: None,
                to: None,
            },
            probability: 0.3,
        }],
        drops: vec![srlb_sim::OneShotDrop {
            from: fan,
            to: first_sink,
            packet: 3,
        }],
        down: vec![srlb_sim::DownWindow {
            link: srlb_sim::LinkMatch {
                from: Some(fan),
                to: Some(first_sink),
            },
            down_from: SimTime::from_nanos(1_000_000),
            down_until: SimTime::from_nanos(2_000_000),
        }],
        queues: vec![srlb_sim::QueueRule {
            from: fan,
            to: first_sink,
            capacity: 2,
            service: SimDuration::from_micros(400),
        }],
    });
    net.run_until(RunUntil::Drained); // warm-up: grows heap + link states
    net.control::<Fan, _>(fan, |f, ctx| {
        f.remaining = 50;
        ctx.schedule_timer(SimDuration::from_micros(100), TimerToken(0));
    })
    .expect("fan node present");
    let (allocs, stats) = counting_allocs(|| net.run_until(RunUntil::Drained));
    assert_eq!(
        allocs, 0,
        "steady-state lossy delivery must not allocate (got {allocs})"
    );
    let dropped = stats.dropped_injected + stats.dropped_queue + stats.dropped_link_down;
    assert!(dropped > 0, "the armed fault rules actually fired");
    assert!(stats.messages_delivered > 0);

    // --- ECMP steering: per-packet tier selection never allocates ----------
    let members: Vec<NodeId> = (1..=4).map(NodeId).collect();
    let (allocs, picked) = counting_allocs(|| {
        let mut picked = 0usize;
        for h in 0..10_000u64 {
            picked += srlb_sim::ecmp_steer(h.wrapping_mul(0x9e37_79b9_7f4a_7c15), &members)
                .expect("tier is non-empty")
                .0;
        }
        picked
    });
    assert_eq!(allocs, 0, "ecmp_steer must not allocate");
    assert!(picked > 0);
}
