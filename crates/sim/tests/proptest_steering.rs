//! Property-based tests of the resilient ECMP steering model — the three
//! guarantees the multi-LB experiments lean on:
//!
//! 1. steering is **deterministic** per flow (a pure function of the flow
//!    hash and the member set, independent of member order),
//! 2. steering is **stable under unrelated membership change**: withdrawing
//!    one member re-steers only the flows that were on it, and advertising
//!    a member steals only the flows it now wins,
//! 3. steering is **balanced**: over ≥ 1k distinct flows every member's
//!    share stays within a 2× band of the fair share.

use proptest::prelude::*;
use srlb_sim::{ecmp_steer, NodeId, Steering};

/// Distinct flow hashes (the steering input is already a mixed 64-bit
/// hash, so arbitrary u64s are representative).
fn flow_hashes(n: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), n..n + 1)
}

/// A tier of 2..=8 members with distinct node ids (a contiguous run at an
/// arbitrary offset — ids are only hash salts, and distinctness by
/// construction guarantees the removal/addition properties are never
/// tested against a degenerate single-member tier).
fn members() -> impl Strategy<Value = Vec<NodeId>> {
    (0usize..56, 2usize..=8).prop_map(|(start, len)| (start..start + len).map(NodeId).collect())
}

proptest! {
    #[test]
    fn steering_is_deterministic_and_order_independent(
        hashes in flow_hashes(64),
        tier in members(),
    ) {
        let mut reversed = tier.clone();
        reversed.reverse();
        for &h in &hashes {
            let a = ecmp_steer(h, &tier);
            prop_assert_eq!(a, ecmp_steer(h, &tier));
            prop_assert_eq!(a, ecmp_steer(h, &reversed));
            prop_assert!(tier.contains(&a.unwrap()));
        }
    }

    #[test]
    fn removal_re_steers_only_the_removed_members_flows(
        hashes in flow_hashes(256),
        tier in members(),
        victim_index in 0usize..8,
    ) {
        let victim = tier[victim_index % tier.len()];
        let mut shrunk = Steering::new(tier.clone());
        prop_assert!(shrunk.remove(victim));
        for &h in &hashes {
            let before = ecmp_steer(h, &tier).unwrap();
            let after = shrunk.select(h).unwrap();
            if before == victim {
                prop_assert_ne!(after, victim);
            } else {
                // Unrelated membership: the flow stays put.
                prop_assert_eq!(before, after);
            }
        }
    }

    #[test]
    fn addition_steals_only_for_the_new_member(
        hashes in flow_hashes(256),
        tier in members(),
        newcomer in 64usize..128,
    ) {
        let newcomer = NodeId(newcomer);
        let mut grown = Steering::new(tier.clone());
        grown.add(newcomer);
        for &h in &hashes {
            let before = ecmp_steer(h, &tier).unwrap();
            let after = grown.select(h).unwrap();
            prop_assert!(after == before || after == newcomer);
        }
    }

    #[test]
    fn steering_is_balanced_within_2x(
        seed in any::<u64>(),
        tier in members(),
    ) {
        // 2048 distinct flow hashes derived from the seed (SplitMix64-style
        // stream, matching the quality of real FlowKey hashes).
        let mut counts = std::collections::HashMap::new();
        let flows = 2_048u64;
        let mut x = seed;
        for _ in 0..flows {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut h = x;
            h ^= h >> 30;
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= h >> 27;
            h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
            h ^= h >> 31;
            *counts.entry(ecmp_steer(h, &tier).unwrap()).or_insert(0u64) += 1;
        }
        let fair = flows as f64 / tier.len() as f64;
        for &m in &tier {
            let share = *counts.get(&m).unwrap_or(&0) as f64;
            prop_assert!(share > fair / 2.0);
            prop_assert!(share < fair * 2.0);
        }
    }
}
