//! # srlb-sim — deterministic discrete-event network simulator
//!
//! This crate is the evaluation substrate of the SRLB reproduction.  The
//! original paper evaluates its load balancer on a physical testbed (a VPP
//! load balancer and twelve Apache VMs bridged on one link); this simulator
//! replaces that testbed with a deterministic discrete-event model so that
//! the same queueing dynamics can be reproduced on a laptop with controlled
//! randomness.
//!
//! The building blocks are:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulated time,
//! * [`Node`] — the trait implemented by every simulated component (clients,
//!   the load balancer, servers); nodes exchange messages of a user-chosen
//!   type `M` and receive timer callbacks,
//! * [`Context`] — the API a node uses during a callback to send messages,
//!   schedule timers and draw random numbers,
//! * [`Topology`] — per-link one-way latencies,
//! * [`Steering`] — resilient ECMP hashing across a tier of equal-cost
//!   nodes (the model of the routers in front of a load-balancer fleet),
//! * [`SimCore`] — the reusable engine core: clock + event queue + node
//!   registry, drivable one event ([`SimCore::step`]) or one
//!   same-timestamp batch at a time,
//! * [`Network`] — the single-threaded frontend over the core, run under a
//!   [`RunUntil`] policy,
//! * [`ShardedNetwork`] — the multi-threaded frontend: worker-thread shards
//!   synchronised by conservative time windows, byte-identical to the
//!   serial loop,
//! * [`SimRng`] — a seeded random number generator that can be forked into
//!   independent, reproducible streams.
//!
//! Determinism rests on two properties: every event is ordered by a
//! globally unique key `(time, scheduling node, per-node seq)` that depends
//! only on the scheduling node's own history, and every node draws
//! randomness from a private stream forked from the run seed.  Any
//! execution order that respects the keys therefore reproduces the same
//! run, bit for bit.
//!
//! ## Example
//!
//! ```
//! use srlb_sim::{Context, Network, Node, NodeId, RunUntil, SimDuration, Topology};
//!
//! struct Counter { peer: Option<NodeId>, received: u32 }
//!
//! impl Node<u32> for Counter {
//!     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
//!         if let Some(peer) = self.peer {
//!             ctx.send(peer, 1);
//!         }
//!     }
//!     fn on_message(&mut self, msg: u32, from: NodeId, ctx: &mut Context<'_, u32>) {
//!         self.received += msg;
//!         if msg < 3 {
//!             ctx.send(from, msg + 1);
//!         }
//!     }
//! }
//!
//! let mut net = Network::new(42, Topology::uniform(SimDuration::from_micros(50)));
//! let a = net.add_node(Counter { peer: None, received: 0 });
//! let _b = net.add_node(Counter { peer: Some(a), received: 0 });
//! net.run_until(RunUntil::Drained);
//! assert_eq!(net.stats().messages_delivered, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod core;
pub mod event;
pub mod faults;
pub mod link;
pub mod network;
pub mod node;
pub mod pool;
pub mod rng;
pub mod shard;
pub mod steering;
pub mod time;
pub mod trace;

pub use crate::core::{SimCore, SimStats, StepOutcome};
pub use event::{EventKey, EventQueue};
pub use faults::{DownWindow, DropCause, FaultConfig, LinkMatch, LossRule, OneShotDrop, QueueRule};
pub use link::{Topology, TopologyModel};
pub use network::{Network, RunUntil};
pub use node::{Context, Node, NodeId, TimerToken};
pub use rng::SimRng;
pub use shard::{ExecMode, PoolPolicy, ShardPlan, ShardedNetwork};
pub use steering::{ecmp_steer, steer_rack, Steering};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEntry, TraceKind, TraceLog};
