//! ECMP steering of flows across a tier of equal-cost nodes.
//!
//! A production load-balancer deployment is not one box: a *fleet* of
//! identical instances advertises the same virtual address, and the routers
//! in front spread flows across them with equal-cost multi-path (ECMP)
//! hashing of the 5-tuple.  This module is the simulator's model of that
//! router function, the companion of [`TopologyModel`](crate::TopologyModel)
//! on the *steering* axis: where the topology model decides link latencies
//! once the node layout is known, the steering model decides which tier
//! member each flow's packets are delivered to.
//!
//! The hash is **resilient** (highest-random-weight, a.k.a. rendezvous
//! hashing, as implemented by the "resilient ECMP" / consistent-hashing
//! FIB modes of modern routers): each member is ranked by mixing the flow
//! hash with the member's identity, and the flow goes to the highest-ranked
//! member.  Consequences, all property-tested in
//! `crates/sim/tests/proptest_steering.rs`:
//!
//! * **deterministic** — a flow's member depends only on the flow hash and
//!   the member set, never on arrival order or RNG state,
//! * **stable under unrelated membership change** — removing a member
//!   re-steers *only* the flows that were on it; adding a member steals
//!   only the flows it now wins,
//! * **balanced** — members receive near-equal shares of a large flow
//!   population.
//!
//! The caller supplies the flow hash (e.g. the pre-mixed
//! `FlowKey::stable_hash()` from `srlb-net`), so this crate stays free of
//! packet-format dependencies; a distinct salt decorrelates steering from
//! every other consumer of that hash (dispatch rings, flow tables).
//!
//! # Interplay with shard placement
//!
//! ECMP steering also settles a question for the parallel engine's
//! placement planner ([`crate::ShardPlan::topology_aware`]): which link
//! crossings are worth optimising.  Rendezvous hashing spreads flows *uniformly* over the LB
//! tier, so when shards follow racks the client → LB hop is cross-shard
//! for ≈ `(racks − 1) / racks` of flows **no matter how LBs are placed** —
//! that hop's cost is fixed by the steering model.  What placement *can*
//! keep local is the LB ↔ server hunting traffic, which is why the planner
//! co-shards each rack's LB with that rack's servers and takes its
//! lookahead from the cross-rack latency.  [`steer_rack`] exposes the
//! steered member's rack so diagnostics (and the test below) can measure
//! that fixed cross-rack share directly.

use crate::node::NodeId;

/// Salt mixed into every rank so ECMP steering is statistically independent
/// of other users of the same flow hash (candidate-selection rings, the
/// flow table's bucket index).
const STEERING_SALT: u64 = 0x9e6c_63d0_76cc_14a5;

/// SplitMix64 finaliser: a fast, high-quality 64-bit mixer.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The highest-random-weight rank of `member` for a flow: deterministic in
/// `(flow_hash, member)` alone.
#[inline]
fn rank(flow_hash: u64, member: NodeId) -> u64 {
    mix(flow_hash ^ mix(member.0 as u64 ^ STEERING_SALT))
}

/// Steers a flow across `members` by resilient (rendezvous) ECMP hashing:
/// returns the member with the highest rank for `flow_hash`, or `None` when
/// the tier is empty.  Allocation-free and O(`members.len()`) — tier sizes
/// are single digits, so this is a handful of multiplies per packet.
#[inline]
pub fn ecmp_steer(flow_hash: u64, members: &[NodeId]) -> Option<NodeId> {
    members.iter().copied().max_by_key(|&m| rank(flow_hash, m))
}

/// The rack of the member a flow is steered to, under `rack_of` (the
/// placement planner's member → rack assignment).  `None` on an empty
/// tier.  This is the quantity shard-placement diagnostics care about:
/// steering is uniform over members, so the distribution over racks is
/// the distribution of members over racks, independent of the flow mix.
#[inline]
pub fn steer_rack(
    flow_hash: u64,
    members: &[NodeId],
    rack_of: impl Fn(NodeId) -> usize,
) -> Option<usize> {
    ecmp_steer(flow_hash, members).map(rack_of)
}

/// A mutable ECMP tier: the declarative steering model the experiment
/// runner instantiates once the node layout is known, mirroring how
/// [`TopologyModel`](crate::TopologyModel) instantiates a
/// [`Topology`](crate::Topology).
///
/// Membership changes model route advertisements and withdrawals: a removed
/// member stops receiving *subsequent* packets, but packets already in the
/// fabric still deliver (the node itself is not touched).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Steering {
    members: Vec<NodeId>,
}

impl Steering {
    /// Creates a tier over `members`.
    pub fn new(members: Vec<NodeId>) -> Self {
        Steering { members }
    }

    /// The current member set, in insertion order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members currently advertised.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if no member is advertised.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns `true` if `member` is currently advertised.
    pub fn contains(&self, member: NodeId) -> bool {
        self.members.contains(&member)
    }

    /// Advertises `member` into the tier (no-op if already present).
    pub fn add(&mut self, member: NodeId) {
        if !self.members.contains(&member) {
            self.members.push(member);
        }
    }

    /// Withdraws `member` from the tier, returning whether it was present.
    pub fn remove(&mut self, member: NodeId) -> bool {
        let before = self.members.len();
        self.members.retain(|&m| m != member);
        self.members.len() != before
    }

    /// The member a flow with this hash is steered to, or `None` when the
    /// tier is empty.
    pub fn select(&self, flow_hash: u64) -> Option<NodeId> {
        ecmp_steer(flow_hash, &self.members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier(n: usize) -> Vec<NodeId> {
        (1..=n).map(NodeId).collect()
    }

    #[test]
    fn empty_tier_steers_nowhere() {
        assert_eq!(ecmp_steer(42, &[]), None);
        assert!(Steering::default().is_empty());
        assert_eq!(Steering::default().select(42), None);
    }

    #[test]
    fn single_member_gets_everything() {
        let members = tier(1);
        for h in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(ecmp_steer(h, &members), Some(NodeId(1)));
        }
    }

    #[test]
    fn selection_is_order_independent() {
        let forward = tier(4);
        let mut reversed = tier(4);
        reversed.reverse();
        for h in 0..512u64 {
            let h = mix(h);
            assert_eq!(ecmp_steer(h, &forward), ecmp_steer(h, &reversed));
        }
    }

    #[test]
    fn removal_only_moves_the_removed_members_flows() {
        let full = tier(4);
        let mut without_last = Steering::new(full.clone());
        assert!(without_last.remove(NodeId(4)));
        assert!(!without_last.remove(NodeId(4)), "already withdrawn");
        for h in 0..2048u64 {
            let h = mix(h.wrapping_mul(0x2545_f491_4f6c_dd1d));
            let before = ecmp_steer(h, &full).unwrap();
            let after = without_last.select(h).unwrap();
            if before != NodeId(4) {
                assert_eq!(before, after, "unrelated flow re-steered");
            } else {
                assert_ne!(after, NodeId(4));
            }
        }
    }

    #[test]
    fn add_is_idempotent_and_reversible() {
        let mut s = Steering::new(tier(2));
        s.add(NodeId(3));
        s.add(NodeId(3));
        assert_eq!(s.len(), 3);
        assert_eq!(s.members(), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert!(s.remove(NodeId(3)));
        assert_eq!(s.members(), &tier(2)[..]);
    }

    #[test]
    fn cross_rack_steering_share_is_fixed_by_member_placement() {
        // 4 LBs, one per rack (the topology-aware plan's layout for the
        // default rack/zone model): member m lives in rack m - 1.
        let members = tier(4);
        let rack_of = |m: NodeId| m.0 - 1;
        let flows = 8_192u64;
        let mut per_rack = [0usize; 4];
        for i in 0..flows {
            let h = mix(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            per_rack[steer_rack(h, &members, rack_of).unwrap()] += 1;
        }
        // Uniform over members ⇒ uniform over racks: a client pinned to
        // any one rack sees ≈ 3/4 of its flows steered cross-rack, and no
        // placement of this one-LB-per-rack tier can change that.
        let expected = flows as usize / 4;
        for (rack, &count) in per_rack.iter().enumerate() {
            assert!(
                count * 2 > expected && count < expected * 2,
                "rack {rack} share should be within 2x of fair, got {per_rack:?}"
            );
        }
        assert_eq!(steer_rack(7, &[], rack_of), None);
    }

    #[test]
    fn four_way_tier_is_roughly_balanced() {
        let members = tier(4);
        let mut counts = [0usize; 5];
        let flows = 8_192;
        for i in 0..flows {
            let h = mix(i as u64);
            counts[ecmp_steer(h, &members).unwrap().0] += 1;
        }
        let expected = flows / 4;
        for &count in &counts[1..] {
            assert!(
                count * 2 > expected && count < expected * 2,
                "steering should balance within 2x of fair share, got {counts:?}"
            );
        }
    }
}
