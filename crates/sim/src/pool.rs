//! Persistent worker pool for conservative-window sharded execution.
//!
//! `WorkerPool` owns `S - 1` long-lived worker threads (the calling thread
//! doubles as the worker for shard 0 *and* the window coordinator).  Between
//! run segments the workers park on a condvar; within a segment every window
//! costs two waits on a lightweight `SenseBarrier` instead of the
//! per-window channel round-trips (and their OS wakeups) the previous
//! implementation paid.
//!
//! # Window protocol
//!
//! Each window has a **compute phase** and a **coordinator phase** separated
//! by barriers:
//!
//! 1. *Compute* (all shards in parallel): ingest the mailboxes published at
//!    the previous barrier in ascending source-shard order (events carry
//!    globally unique keys, so ingestion order only needs to be
//!    deterministic), process local events below this shard's horizon, then
//!    publish per-destination outboxes, the earliest outbound event time per
//!    destination, and the shard's next local event time.
//! 2. *Barrier*, then *coordinate* (main thread only): fold each worker's
//!    published state into `effective_next[d]` — the earliest event that can
//!    still reach shard `d` — fast-forward the window start to the global
//!    minimum (skipping all empty windows in one step), and either finish the
//!    segment or publish fresh per-shard horizons and a window budget.
//! 3. *Barrier*, repeat.
//!
//! # Per-shard horizons and window coalescing
//!
//! Shard `d` may safely process every local event strictly below
//! `h[d] = lookahead + min(min over s != d of effective_next[s],
//! t0 + lookahead)` where `t0` is the global minimum.  The first term bounds
//! arrivals cut from a foreign shard's *existing* work: any event shard `s`
//! has yet to process happens at `effective_next[s]` or later, so anything
//! it sends to `d` arrives at `effective_next[s] + lookahead` or later.  The
//! `t0 + lookahead` cap bounds *reaction chains*: a peer that looks idle
//! until far in the future can still be woken by a message sent during this
//! very window — the earliest such wakeup is `t0 + lookahead`, so its reply
//! can land at `d` as early as `t0 + 2 * lookahead` (and by induction no
//! multi-hop chain arrives earlier).  A shard whose peers are *all* idle
//! with no mail in flight (`h[d]` unbounded) coalesces what would have been
//! many windows into one compute phase; it must, however, stop after the
//! time-group that produces its first cross-shard send — no reaction chain
//! can start before that send, and a two-hop reply routed back through
//! another shard could otherwise land in its processed past.
//!
//! # Outbox exchange
//!
//! Cross-shard events travel through `2 * S * S` mailbox slots, double
//! buffered by window parity: a shard publishing in window `k` swaps its
//! outbox vector with slot `(k & 1, src, dst)` while the receiver is still
//! draining slot `(1 - k & 1, src, dst)` from the previous window, so the
//! exchange is wait-free in the steady state, preserves vector capacity
//! (alloc-free warm path), and never contends a lock that is actually held.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use crate::core::SimCore;
use crate::event::ScheduledEvent;
use crate::time::SimTime;

/// Sentinel for "no event" in the atomic time slots.
const NO_TIME: u64 = u64::MAX;

/// Coordinator command published between the two window barriers.
const CMD_RUN: u8 = 0;
const CMD_FINISH: u8 = 1;

fn enc(t: Option<SimTime>) -> u64 {
    t.map_or(NO_TIME, SimTime::as_nanos)
}

fn dec(v: u64) -> Option<SimTime> {
    (v != NO_TIME).then(|| SimTime::from_nanos(v))
}

/// Acquires a mutex even if a peer thread panicked while holding it; the
/// pool's own `poisoned` flag (set by the `catch_unwind` wrappers around
/// every compute phase) is what actually propagates worker panics.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A classic sense-reversing barrier with a spin → yield → park waiting
/// ladder.  Unlike `std::sync::Barrier` it exposes the caller-held sense, so
/// long-lived participants can reuse one barrier for an unbounded number of
/// phases without ABA confusion, and short waits resolve without a syscall.
pub(crate) struct SenseBarrier {
    parties: usize,
    arrived: AtomicUsize,
    sense: AtomicU8,
    gate: Mutex<()>,
    cv: Condvar,
    spin_limit: u32,
}

impl SenseBarrier {
    pub(crate) fn new(parties: usize) -> Self {
        // Spinning only helps when every participant can actually run at
        // once; on an oversubscribed host, park almost immediately.
        let can_spin = std::thread::available_parallelism().is_ok_and(|n| n.get() >= parties);
        SenseBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            sense: AtomicU8::new(0),
            gate: Mutex::new(()),
            cv: Condvar::new(),
            spin_limit: if can_spin { 4096 } else { 1 },
        }
    }

    /// Blocks until all parties have called `wait` with the same `local`
    /// sense.  `local` flips on every call and must be thread-local state
    /// initialised to 0.
    pub(crate) fn wait(&self, local: &mut u8) {
        let next = 1 - *local;
        *local = next;
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Release);
            // Publish the new sense under the gate so a parked waiter cannot
            // miss the notify between its re-check and its condvar wait.
            let guard = lock(&self.gate);
            self.sense.store(next, Ordering::Release);
            drop(guard);
            self.cv.notify_all();
            return;
        }
        let mut spins = 0u32;
        while self.sense.load(Ordering::Acquire) != next {
            spins += 1;
            if spins < self.spin_limit {
                std::hint::spin_loop();
            } else if spins < self.spin_limit + 32 {
                std::thread::yield_now();
            } else {
                let mut guard = lock(&self.gate);
                while self.sense.load(Ordering::Acquire) != next {
                    guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
                }
                return;
            }
        }
    }
}

/// Session handshake: bumped once per run segment to wake parked workers.
struct Session {
    generation: u64,
    shutdown: bool,
}

/// All state shared between the coordinator and the workers.
///
/// Plain data slots (`horizons`, `next_time`, `out_min`, …) are written on
/// one side of a barrier and read on the other; the barrier's release/acquire
/// chain orders them, so the atomics only need to exist for `Sync`, not for
/// standalone synchronisation.
struct Shared<M> {
    shards: usize,
    barrier: SenseBarrier,
    session: Mutex<Session>,
    session_cv: Condvar,
    /// Per-shard exclusive processing horizon for the current window, in
    /// nanos (`NO_TIME` = unbounded: run until the first cross-shard send).
    horizons: Vec<AtomicU64>,
    /// Inclusive policy time bound for the whole segment (`NO_TIME` = none).
    until: AtomicU64,
    /// Per-shard event cap for the current window (`u64::MAX` = unlimited).
    window_budget: AtomicU64,
    /// [`CMD_RUN`] or [`CMD_FINISH`], published in the coordinator phase.
    command: AtomicU8,
    /// Earliest event still queued locally on each shard, post-window.
    next_time: Vec<AtomicU64>,
    /// Events processed by each shard in the last window.
    processed: Vec<AtomicU64>,
    /// Whether a node on this shard requested a stop.
    stopped: Vec<AtomicBool>,
    /// Earliest event time published into mailbox `src → dst` this window
    /// (`NO_TIME` = nothing sent), flattened `[src * shards + dst]`.
    out_min: Vec<AtomicU64>,
    /// Double-buffered cross-shard mailboxes, flattened
    /// `[parity * shards² + src * shards + dst]`.
    mail: Vec<Mutex<Vec<ScheduledEvent<M>>>>,
    /// Hand-off slots for the worker cores, indexed by shard (0 unused).
    slots: Vec<Mutex<Option<SimCore<M>>>>,
    /// Set when any compute phase panicked; the segment winds down through
    /// the normal protocol and the coordinator re-raises at the end.
    poisoned: AtomicBool,
}

impl<M> Shared<M> {
    fn new(shards: usize) -> Self {
        Shared {
            shards,
            barrier: SenseBarrier::new(shards),
            session: Mutex::new(Session {
                generation: 0,
                shutdown: false,
            }),
            session_cv: Condvar::new(),
            horizons: (0..shards).map(|_| AtomicU64::new(NO_TIME)).collect(),
            until: AtomicU64::new(NO_TIME),
            window_budget: AtomicU64::new(u64::MAX),
            command: AtomicU8::new(CMD_RUN),
            next_time: (0..shards).map(|_| AtomicU64::new(NO_TIME)).collect(),
            processed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            stopped: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            out_min: (0..shards * shards)
                .map(|_| AtomicU64::new(NO_TIME))
                .collect(),
            mail: (0..2 * shards * shards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            slots: (0..shards).map(|_| Mutex::new(None)).collect(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn mail_slot(&self, parity: usize, src: usize, dst: usize) -> &Mutex<Vec<ScheduledEvent<M>>> {
        &self.mail[parity * self.shards * self.shards + src * self.shards + dst]
    }

    /// Drains every mailbox published for `shard` at parity `parity`, in
    /// ascending source-shard order (deterministic; final ordering is by
    /// event key inside the queue anyway).
    fn ingest_mail(&self, shard: usize, parity: usize, core: &mut SimCore<M>) {
        for src in 0..self.shards {
            if src == shard {
                continue;
            }
            let mut mailbox = lock(self.mail_slot(parity, src, shard));
            for event in mailbox.drain(..) {
                core.ingest(event);
            }
        }
    }

    /// One shard's compute phase: ingest last window's mail, run below the
    /// published horizon, publish outboxes + queue state.  Panics in node
    /// callbacks poison the pool instead of deadlocking the barrier.
    fn run_window(&self, shard: usize, parity: usize, core: &mut SimCore<M>) {
        let ok = panic::catch_unwind(AssertUnwindSafe(|| {
            self.run_window_inner(shard, parity, core)
        }))
        .is_ok();
        if !ok {
            self.poisoned.store(true, Ordering::Release);
            for dst in 0..self.shards {
                self.out_min[shard * self.shards + dst].store(NO_TIME, Ordering::Relaxed);
            }
            self.next_time[shard].store(NO_TIME, Ordering::Relaxed);
            self.processed[shard].store(0, Ordering::Relaxed);
            self.stopped[shard].store(true, Ordering::Relaxed);
        }
    }

    fn run_window_inner(&self, shard: usize, parity: usize, core: &mut SimCore<M>) {
        self.ingest_mail(shard, parity ^ 1, core);
        let horizon = dec(self.horizons[shard].load(Ordering::Relaxed));
        let until = dec(self.until.load(Ordering::Relaxed));
        let budget = self.window_budget.load(Ordering::Relaxed);
        let processed = if self.poisoned.load(Ordering::Acquire) {
            0
        } else {
            core.run_window(horizon, until, budget)
        };
        core.publish_outboxes(|dst, outbox| {
            let min = outbox.iter().map(|e| e.key.time.as_nanos()).min();
            self.out_min[shard * self.shards + dst]
                .store(min.unwrap_or(NO_TIME), Ordering::Relaxed);
            if min.is_some() {
                let mut mailbox = lock(self.mail_slot(parity, shard, dst));
                std::mem::swap(&mut *mailbox, outbox);
            }
        });
        self.next_time[shard].store(enc(core.peek_time()), Ordering::Relaxed);
        self.processed[shard].store(processed, Ordering::Relaxed);
        self.stopped[shard].store(core.stop_requested(), Ordering::Relaxed);
    }
}

/// Body of a persistent worker thread for `shard`.
fn worker_loop<M>(shared: Arc<Shared<M>>, shard: usize) {
    let mut sense = 0u8;
    let mut seen_generation = 0u64;
    loop {
        // Park between segments.
        {
            let mut session = lock(&shared.session);
            loop {
                if session.shutdown {
                    return;
                }
                if session.generation != seen_generation {
                    seen_generation = session.generation;
                    break;
                }
                session = shared
                    .session_cv
                    .wait(session)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        let mut core = lock(&shared.slots[shard]).take();
        if core.is_none() {
            // Unreachable (the coordinator slots every core before bumping
            // the generation), but poison rather than risk a wedged barrier.
            shared.poisoned.store(true, Ordering::Release);
        }
        let mut parity = 0usize;
        loop {
            if let Some(core) = core.as_mut() {
                shared.run_window(shard, parity, core);
            }
            shared.barrier.wait(&mut sense); // compute done
            shared.barrier.wait(&mut sense); // coordinator decided
            if shared.command.load(Ordering::Relaxed) == CMD_FINISH {
                if let Some(mut core) = core.take() {
                    shared.ingest_mail(shard, parity, &mut core);
                    *lock(&shared.slots[shard]) = Some(core);
                }
                shared.barrier.wait(&mut sense); // cores parked
                break;
            }
            parity ^= 1;
        }
    }
}

/// Long-lived threads + shared window state for one [`ShardedNetwork`].
///
/// [`ShardedNetwork`]: crate::shard::ShardedNetwork
pub(crate) struct WorkerPool<M> {
    shared: Arc<Shared<M>>,
    handles: Vec<JoinHandle<()>>,
    main_sense: u8,
    /// Conservative lookahead (min cross-shard link latency) in nanos.
    lookahead_nanos: u64,
    /// Scratch: `effective_next` per shard, reused across windows.
    eff: Vec<u64>,
}

impl<M: Send + 'static> WorkerPool<M> {
    /// Spawns `shards - 1` parked worker threads (the caller is shard 0).
    pub(crate) fn new(shards: usize, lookahead_nanos: u64) -> Self {
        let shared = Arc::new(Shared::new(shards));
        let handles = (1..shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("srlb-shard-{shard}"))
                    .spawn(move || worker_loop(shared, shard))
                    .expect("spawning a sharded worker thread failed") // srlb-lint: allow(panic-hygiene) -- thread creation fails only on resource exhaustion; there is no useful degraded mode
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            main_sense: 0,
            lookahead_nanos,
            eff: vec![NO_TIME; shards],
        }
    }

    /// Runs one conservative-window segment over `cores` (one per shard,
    /// shard order).  Cores are lent to the workers for the duration and are
    /// all back in `cores`, with all cross-shard mail ingested, on return.
    ///
    /// # Panics
    ///
    /// Re-raises (as a generic panic) any panic that occurred in a node
    /// callback on a worker thread.
    pub(crate) fn run_segment(
        &mut self,
        cores: &mut Vec<SimCore<M>>,
        until: Option<SimTime>,
        max_events: Option<u64>,
    ) {
        let shards = self.shared.shards;
        debug_assert_eq!(cores.len(), shards);
        let shared = Arc::clone(&self.shared);

        // Bootstrap: compute the first window from the cores directly (all
        // mailboxes are empty between segments).
        shared.until.store(enc(until), Ordering::Relaxed);
        for (shard, core) in cores.iter().enumerate() {
            self.eff[shard] = enc(core.peek_time());
        }
        let mut total = 0u64;
        if self.finish_or_publish(&mut total, until, max_events) {
            // Nothing runnable: no reason to wake the workers at all.
            return;
        }

        // Lend cores 1..S to the workers and open the segment.
        for shard in (1..shards).rev() {
            let core = cores.pop().expect("one core per shard"); // srlb-lint: allow(panic-hygiene) -- debug_assert above pins cores.len() == shards
            *lock(&shared.slots[shard]) = Some(core);
        }
        {
            let mut session = lock(&shared.session);
            session.generation += 1;
            drop(session);
            shared.session_cv.notify_all();
        }

        // Window loop: the main thread is the worker for shard 0 plus the
        // coordinator between the barriers.
        let core0 = &mut cores[0];
        let mut parity = 0usize;
        let mut finished = false;
        while !finished {
            shared.run_window(0, parity, core0);
            self.main_sense_wait(); // compute done
            finished = self.coordinate(&mut total, until, max_events);
            self.main_sense_wait(); // decision published
            if finished {
                shared.ingest_mail(0, parity, core0);
            }
            parity ^= 1;
        }
        self.main_sense_wait(); // workers parked their cores

        for shard in 1..shards {
            let core = lock(&shared.slots[shard]).take();
            match core {
                Some(core) => cores.push(core),
                // A worker lost its core mid-panic; fall through to the
                // poison re-raise below with the cores we have.
                None => break,
            }
        }
        if shared.poisoned.load(Ordering::Acquire) {
            panic!("a sharded worker panicked while processing events"); // srlb-lint: allow(panic-hygiene) -- re-raises a node-callback panic captured on a worker thread; swallowing it would silently corrupt results
        }
    }

    fn main_sense_wait(&mut self) {
        self.shared.barrier.wait(&mut self.main_sense);
    }

    /// Coordinator phase: folds the workers' published window state into the
    /// finish-or-continue decision.  Returns `true` when the segment is done.
    fn coordinate(
        &mut self,
        total: &mut u64,
        until: Option<SimTime>,
        max_events: Option<u64>,
    ) -> bool {
        let shards = self.shared.shards;
        let mut stopped = false;
        for d in 0..shards {
            *total += self.shared.processed[d].load(Ordering::Relaxed);
            stopped |= self.shared.stopped[d].load(Ordering::Relaxed);
            let mut next = self.shared.next_time[d].load(Ordering::Relaxed);
            for src in 0..shards {
                next = next.min(self.shared.out_min[src * shards + d].load(Ordering::Relaxed));
            }
            self.eff[d] = next;
        }
        let finish = stopped
            || self.shared.poisoned.load(Ordering::Acquire)
            || self.finish_or_publish(total, until, max_events);
        self.shared
            .command
            .store(if finish { CMD_FINISH } else { CMD_RUN }, Ordering::Relaxed);
        finish
    }

    /// Shared tail of bootstrap and coordination: given fresh
    /// `effective_next` values in `self.eff`, decide whether the segment is
    /// over; if not, publish per-shard horizons and the window budget.
    /// Returns `true` to finish.
    fn finish_or_publish(
        &mut self,
        total: &mut u64,
        until: Option<SimTime>,
        max_events: Option<u64>,
    ) -> bool {
        let shared = &self.shared;
        let shards = shared.shards;
        // Global minimum next-event time: the fast-forwarded window start.
        let t0 = self.eff.iter().copied().min().unwrap_or(NO_TIME);
        if t0 == NO_TIME {
            return true;
        }
        if until.is_some_and(|u| t0 > u.as_nanos()) {
            return true;
        }
        if max_events.is_some_and(|m| *total >= m) {
            return true;
        }
        // h[d] = lookahead + min(min over s != d of eff[s], t0 + lookahead),
        // via min + second-min.  The first term bounds arrivals cut from
        // another shard's *existing* work (>= eff[s] + lookahead); the
        // `t0 + lookahead` cap bounds *reaction chains* — a peer that is
        // currently idle until far in the future can still be woken by a
        // message sent during this very window (earliest at t0 + lookahead)
        // and its reply can land at d as early as t0 + 2 * lookahead.
        let cap = t0.saturating_add(self.lookahead_nanos);
        let (mut lo, mut lo_count, mut second) = (NO_TIME, 0usize, NO_TIME);
        for &e in &self.eff {
            if e < lo {
                second = lo;
                lo = e;
                lo_count = 1;
            } else if e == lo {
                lo_count += 1;
            } else if e < second {
                second = e;
            }
        }
        for d in 0..shards {
            let others = if self.eff[d] == lo && lo_count == 1 {
                second
            } else {
                lo
            };
            let h = if others == NO_TIME {
                // Every other shard is provably idle with no mail in flight:
                // run unbounded; `SimCore::run_window` stops at the first
                // cross-shard send, before any reaction chain can start.
                NO_TIME
            } else {
                others.min(cap).saturating_add(self.lookahead_nanos)
            };
            shared.horizons[d].store(h, Ordering::Relaxed);
        }
        shared.window_budget.store(
            max_events.map_or(u64::MAX, |m| m - *total),
            Ordering::Relaxed,
        );
        false
    }
}

impl<M> Drop for WorkerPool<M> {
    fn drop(&mut self) {
        {
            let mut session = lock(&self.shared.session);
            session.shutdown = true;
        }
        self.shared.session_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Drives `rounds` full round-trips of a `SenseBarrier` across `parties`
/// threads and returns once all of them have finished.  Pure synchronisation
/// work — exists so the bench crate can measure per-window barrier overhead
/// without reaching into the pool internals (the caller times the call).
pub fn barrier_rounds(parties: usize, rounds: u64) {
    let barrier = Arc::new(SenseBarrier::new(parties));
    let spawned: Vec<JoinHandle<()>> = (1..parties)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut sense = 0u8;
                for _ in 0..rounds {
                    barrier.wait(&mut sense);
                }
            })
        })
        .collect();
    let mut sense = 0u8;
    for _ in 0..rounds {
        barrier.wait(&mut sense);
    }
    for handle in spawned {
        let _ = handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sense_barrier_round_trips_across_threads() {
        // Completes (rather than deadlocking) across many reuse cycles.
        barrier_rounds(3, 500);
    }

    #[test]
    fn sense_barrier_single_party_is_free() {
        let barrier = SenseBarrier::new(1);
        let mut sense = 0u8;
        for _ in 0..10 {
            barrier.wait(&mut sense);
        }
    }
}
