//! Multi-threaded sharded execution over [`SimCore`]s, synchronised by
//! conservative time windows — byte-identical to the serial loop.
//!
//! # Model
//!
//! The node table is partitioned by a [`ShardPlan`]; each shard owns one
//! [`SimCore`] holding the nodes assigned to it (foreign slots stay vacant so
//! ids line up).  A classic conservative (Chandy–Misra–Bryant-style) window
//! protocol synchronises the shards: with `lookahead` = the minimum link
//! latency between any cross-shard node pair, every event a shard processes
//! before time `t` can only schedule cross-shard arrivals at `≥ t +
//! lookahead`, so each shard may run ahead of its peers by the lookahead
//! without ever receiving a "past" event.  Cross-shard messages accumulate in
//! per-destination outboxes and are exchanged at window barriers.
//!
//! Windows are driven by a persistent [`WorkerPool`](crate::pool): the main
//! thread is the coordinator plus the worker for shard 0, and `S - 1`
//! long-lived threads (parked between run segments) drive the rest.  Each
//! window, the coordinator **fast-forwards** the window start to the global
//! minimum next-event time `t0` (empty windows cost one barrier round, not
//! one round per lookahead of simulated time), hands each shard its own
//! horizon `h[d] = lookahead + min(min over s != d of next[s],
//! t0 + lookahead)` — the cap accounts for reaction chains triggered by this
//! window's own sends; see [`crate::pool`] for the full soundness argument —
//! (a shard whose peers are all provably idle **coalesces** arbitrarily many
//! windows, stopping at its first cross-shard send), and workers exchange
//! outboxes by swapping double-buffered mailbox vectors — no channels, no
//! per-window allocation.
//!
//! On hosts with a single available core — or under
//! [`PoolPolicy::Never`] — a multi-shard plan *collapses* to the single-core
//! batched engine: conservative windows only pay off when shards actually
//! run in parallel, and outputs are identical either way by construction.
//!
//! # Why the result is byte-identical to the serial loop
//!
//! Event order is defined by globally unique
//! [`EventKey`](crate::event::EventKey)s `(time, src, seq)` that are pure
//! functions of each *scheduling* node's own history, and every node draws
//! randomness from its private stream.  By induction over windows, each node
//! therefore observes exactly the callback sequence it would observe under
//! the serial engine and emits exactly the same events with the same keys —
//! regardless of shard count, shard plan, or thread interleaving.  One
//! caveat (not exercised by the SRLB experiment drivers): a
//! [`Context::stop`] request is honoured at the next window boundary rather
//! than the next event.
//!
//! # `RunUntil::Events` overshoot contract
//!
//! A pure event budget of `n` stops the run at the first window barrier
//! where the cumulative processed count reaches `n`.  Every window carries a
//! per-shard cap equal to the remaining budget `r`, so with `S` shards the
//! run processes at most `n + (S - 1) · r` events, where `r` is the
//! remainder at the final window's start — and **exactly** `n` (matching
//! the serial engine) whenever no window processes more than one event
//! globally, or more generally whenever the budget does not expire mid
//! window.  The contract is pinned by unit tests below.

use std::fmt;
use std::sync::Arc;

use crate::core::{SimCore, SimStats};
use crate::event::ScheduledEvent;
use crate::link::{Topology, TopologyModel};
use crate::network::{drive_core, RunUntil};
use crate::node::{Context, Node, NodeId};
use crate::pool::WorkerPool;
use crate::time::{SimDuration, SimTime};

/// How an experiment driver executes the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Single-threaded, one event at a time — the reference loop.
    SerialStep,
    /// Single-threaded, same-timestamp batched loop (the default).
    #[default]
    Batched,
    /// Multi-threaded conservative-window sharding across `threads` worker
    /// shards.  `threads <= 1` degenerates to [`ExecMode::Batched`].
    Sharded {
        /// Number of worker shards (and threads).
        threads: usize,
    },
}

impl ExecMode {
    /// Environment variable read by [`ExecMode::from_env`] (and set by the
    /// bench CLI's `--sim-threads` flag).
    pub const ENV_VAR: &'static str = "SRLB_SIM_THREADS";

    /// Resolves the mode from `SRLB_SIM_THREADS`: values above 1 select
    /// sharded execution with that many worker shards; everything else
    /// (unset, empty, `0`, `1`, unparsable) selects the batched default.
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV_VAR)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(threads) if threads > 1 => ExecMode::Sharded { threads },
            _ => ExecMode::Batched,
        }
    }

    /// The number of worker shards this mode drives.
    pub fn threads(self) -> usize {
        match self {
            ExecMode::SerialStep | ExecMode::Batched => 1,
            ExecMode::Sharded { threads } => threads.max(1),
        }
    }
}

/// Whether a multi-shard plan actually runs on worker threads.
///
/// Conservative-window sharding is a pure throughput knob: outputs are
/// byte-identical either way, so on a host without at least two available
/// cores the threaded protocol can only lose to the batched single-core loop
/// (every window still costs barrier hand-offs, with no parallel work to pay
/// for them).  The default policy therefore collapses to a single core when
/// the host cannot run two shards at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolPolicy {
    /// Use worker threads iff `std::thread::available_parallelism() >= 2`,
    /// overridable via the `SRLB_SIM_POOL` environment variable (`force` /
    /// `off`).
    #[default]
    Auto,
    /// Always run the threaded pool (tests use this to exercise the full
    /// window protocol regardless of host shape).
    Force,
    /// Never spawn workers: collapse to the single-core batched engine.
    Never,
}

impl PoolPolicy {
    /// Environment override consulted by [`PoolPolicy::Auto`].
    pub const ENV_VAR: &'static str = "SRLB_SIM_POOL";

    /// Whether a multi-shard plan should run on the threaded pool.
    fn threaded(self) -> bool {
        match self {
            PoolPolicy::Force => true,
            PoolPolicy::Never => false,
            PoolPolicy::Auto => match std::env::var(Self::ENV_VAR).ok().as_deref() {
                Some("force") => true,
                Some("off") => false,
                _ => std::thread::available_parallelism().is_ok_and(|n| n.get() >= 2),
            },
        }
    }
}

/// Assignment of node-table slots to shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shard_of: Vec<u32>,
    shards: u32,
}

impl ShardPlan {
    /// Everything on one shard (serial execution).
    pub fn single(slots: usize) -> Self {
        ShardPlan {
            shard_of: vec![0; slots],
            shards: 1,
        }
    }

    /// Builds a plan from explicit per-slot assignments.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or any assignment is out of range.
    pub fn from_assignments(shard_of: Vec<u32>, shards: u32) -> Self {
        assert!(shards > 0, "a shard plan needs at least one shard");
        assert!(
            shard_of.iter().all(|&s| s < shards),
            "shard assignment out of range"
        );
        ShardPlan { shard_of, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// Number of planned node slots.
    pub fn slots(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard owning slot `id` (0 for ids beyond the plan).
    pub fn shard_of(&self, id: NodeId) -> usize {
        self.shard_of.get(id.index()).copied().unwrap_or(0) as usize
    }

    /// Round-robin placement over the experiment layout `client | lbs |
    /// servers` (node 0 is the client, then `lb_count` load balancers, then
    /// `max_servers` backends): the client on shard 0, every other tier
    /// striped modulo `threads`.  Placement never affects outputs, only the
    /// achievable lookahead — see [`ShardPlan::topology_aware`].
    pub fn round_robin(lb_count: usize, max_servers: usize, threads: usize) -> Self {
        let total = 1 + lb_count + max_servers;
        let threads = threads.clamp(1, total);
        if threads <= 1 {
            return ShardPlan::single(total);
        }
        let mut shard_of = vec![0u32; total];
        for j in 0..lb_count {
            shard_of[1 + j] = (j % threads) as u32;
        }
        for i in 0..max_servers {
            shard_of[1 + lb_count + i] = (i % threads) as u32;
        }
        ShardPlan::from_assignments(shard_of, threads as u32)
    }

    /// Topology-aware placement over the same layout: keeps each rack's
    /// servers *and* its attached load balancers on one shard so the only
    /// cross-shard links are cross-rack (or client) links.
    ///
    /// Under [`TopologyModel::RackZone`] this lifts the conservative
    /// lookahead from the intra-rack latency (the minimum link anywhere) to
    /// the cross-rack latency — e.g. 15 µs → 80 µs on the default rack/zone
    /// model, >5× fewer barriers for the same simulated time — and shrinks
    /// cross-shard event volume to the request/response legs that actually
    /// cross racks.  Racks are grouped modulo `min(threads, racks)`: more
    /// threads than racks cannot help (any rack split re-introduces an
    /// intra-rack cross-shard link), so the plan caps the shard count
    /// instead.  For [`TopologyModel::Uniform`] every placement yields the
    /// same lookahead and this degenerates to round-robin.
    pub fn topology_aware(
        model: &TopologyModel,
        lb_count: usize,
        max_servers: usize,
        threads: usize,
    ) -> Self {
        let total = 1 + lb_count + max_servers;
        let threads = threads.clamp(1, total);
        match model {
            TopologyModel::Uniform { .. } => ShardPlan::round_robin(lb_count, max_servers, threads),
            TopologyModel::RackZone { racks, .. } => {
                let shards = threads.min((*racks).max(1));
                if shards <= 1 {
                    return ShardPlan::single(total);
                }
                let mut shard_of = vec![0u32; total];
                for j in 0..lb_count {
                    shard_of[1 + j] = (model.rack_of(j) % shards) as u32;
                }
                for i in 0..max_servers {
                    shard_of[1 + lb_count + i] = (model.rack_of(i) % shards) as u32;
                }
                ShardPlan::from_assignments(shard_of, shards as u32)
            }
        }
    }

    /// Node-slot counts per shard (index = shard).
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards as usize];
        for &s in &self.shard_of {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// The minimum link latency between any two slots on *different* shards
    /// — the conservative lookahead.  `None` when no cross-shard pair
    /// exists (single shard).
    fn lookahead(&self, topology: &Topology) -> Option<SimDuration> {
        let n = self.shard_of.len();
        let mut min: Option<SimDuration> = None;
        for a in 0..n {
            for b in 0..n {
                if a != b && self.shard_of[a] != self.shard_of[b] {
                    let lat = topology.latency(NodeId(a), NodeId(b));
                    min = Some(min.map_or(lat, |m| m.min(lat)));
                }
            }
        }
        min
    }
}

/// The multi-threaded discrete-event engine frontend: a set of per-shard
/// [`SimCore`]s advancing in conservative time windows.
///
/// With a single shard this is exactly the batched serial engine (no threads
/// are spawned); with `S > 1` shards, a persistent `WorkerPool` of `S - 1`
/// threads plus the calling thread each drive one core.  Either way the run
/// output is byte-identical to [`crate::Network`] on the same seed and node
/// layout.
pub struct ShardedNetwork<M> {
    cores: Vec<SimCore<M>>,
    plan: ShardPlan,
    lookahead: SimDuration,
    /// Lazily spawned on the first multi-shard run segment; reused (workers
    /// parked, buffers warm) for every segment after.
    pool: Option<WorkerPool<M>>,
    /// Cross-shard events awaiting ingestion, per destination shard (from
    /// barrier-time `control` / `on_start` callbacks).
    pending: Vec<Vec<ScheduledEvent<M>>>,
    next_slot: usize,
}

impl<M> fmt::Debug for ShardedNetwork<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedNetwork")
            .field("shards", &self.cores.len())
            .field("lookahead", &self.lookahead)
            .field("nodes", &self.next_slot)
            .finish()
    }
}

impl<M> ShardedNetwork<M> {
    /// Creates an empty sharded network under [`PoolPolicy::Auto`]; see
    /// [`ShardedNetwork::with_pool_policy`].
    pub fn new(seed: u64, topology: Topology, plan: ShardPlan) -> Self {
        Self::with_pool_policy(seed, topology, plan, PoolPolicy::default())
    }

    /// Creates an empty sharded network.
    ///
    /// A multi-shard plan *collapses* to one shard (the batched single-core
    /// engine, byte-identical outputs) when the cross-shard lookahead is
    /// zero (some cross-shard link has no latency, so conservative windows
    /// would permit no parallelism), when the plan has one shard, or when
    /// `policy` resolves against worker threads (no second core available,
    /// or [`PoolPolicy::Never`]).
    pub fn with_pool_policy(
        seed: u64,
        topology: Topology,
        plan: ShardPlan,
        policy: PoolPolicy,
    ) -> Self {
        let lookahead = plan.lookahead(&topology);
        let (plan, lookahead) = match lookahead {
            Some(l) if l > SimDuration::ZERO && plan.shards() > 1 && policy.threaded() => (plan, l),
            _ => (ShardPlan::single(plan.slots()), SimDuration::ZERO),
        };
        let shards = plan.shards();
        let shard_of: Arc<[u32]> = Arc::from(plan.shard_of.clone().into_boxed_slice());
        let cores = (0..shards)
            .map(|s| {
                let mut core = SimCore::new(seed, topology.clone());
                if shards > 1 {
                    core.set_router(Arc::clone(&shard_of), s as u32, shards);
                }
                core
            })
            .collect();
        ShardedNetwork {
            cores,
            plan,
            lookahead,
            pool: None,
            pending: (0..shards).map(|_| Vec::new()).collect(),
            next_slot: 0,
        }
    }

    /// The shard plan in effect (after any collapse).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Installs a fault-injection layer on every core (see
    /// [`crate::faults`]).  Must be called before any node is added so all
    /// execution modes see the same fault state from the first delivery on.
    ///
    /// Each core compiles its own copy of the config; the stateless rules
    /// are pure functions of event keys and the stateful rules are per
    /// directed link, whose deliveries all land on the destination's owning
    /// core in global key order — so per-shard copies evolve exactly like
    /// the single serial copy would.
    pub fn set_faults(&mut self, config: &crate::faults::FaultConfig) {
        for core in &mut self.cores {
            core.set_faults(config);
        }
    }

    /// Number of shards actually in use (after any zero-lookahead collapse).
    pub fn shards(&self) -> usize {
        self.cores.len()
    }

    /// The conservative lookahead window length (zero on a single shard).
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    fn owner_of(&self, id: NodeId) -> usize {
        if self.cores.len() == 1 {
            0
        } else {
            self.plan.shard_of(id)
        }
    }

    /// Allocates the next slot id on every core (keeping the tables
    /// aligned) and returns it.
    fn alloc_slot(&mut self) -> NodeId {
        let expected = NodeId(self.next_slot);
        for core in &mut self.cores {
            let id = core.reserve_node();
            debug_assert_eq!(id, expected, "core node tables must stay aligned");
        }
        self.next_slot += 1;
        expected
    }

    /// Adds a node (owned by the shard its slot is planned onto) and returns
    /// its id.  Same start semantics as [`SimCore::add_node`].
    pub fn add_node(&mut self, node: impl Node<M> + Send + 'static) -> NodeId {
        let id = self.alloc_slot();
        let owner = self.owner_of(id);
        self.cores[owner].insert_node(id, node);
        id
    }

    /// Reserves an empty node slot on every shard; see
    /// [`SimCore::reserve_node`].
    pub fn reserve_node(&mut self) -> NodeId {
        self.alloc_slot()
    }

    /// Fills a reserved (or vacated) slot on its owning shard; see
    /// [`SimCore::insert_node`].
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the slot is occupied.
    pub fn insert_node(&mut self, id: NodeId, node: impl Node<M> + Send + 'static) {
        let owner = self.owner_of(id);
        self.cores[owner].insert_node(id, node);
    }

    /// Current simulated time: the furthest any shard has processed.
    pub fn now(&self) -> SimTime {
        self.cores
            .iter()
            .map(SimCore::now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Merged run statistics across all shards (counts add,
    /// `last_event_time` is the maximum).
    pub fn stats(&self) -> SimStats {
        let mut merged = SimStats::default();
        for core in &self.cores {
            merged.absorb(core.stats());
        }
        merged
    }

    /// Number of node slots.
    pub fn node_count(&self) -> usize {
        self.next_slot
    }

    /// The topology used for link latencies.
    pub fn topology(&self) -> &Topology {
        self.cores[0].topology()
    }

    /// Total number of events ever scheduled, summed over shards.  An event
    /// is counted once: on the queue of the shard that delivers it.
    pub fn scheduled_total(&self) -> u64 {
        self.cores.iter().map(SimCore::scheduled_total).sum()
    }

    /// Immutable access to a node as a `dyn Node<M>`; see
    /// [`SimCore::with_node`].
    pub fn with_node<R>(&self, id: NodeId, f: impl FnOnce(&dyn Node<M>) -> R) -> Option<R> {
        self.cores[self.owner_of(id)].with_node(id, f)
    }

    /// Immutable, downcast access to a node; see [`SimCore::node_as`].
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.cores[self.owner_of(id)].node_as(id)
    }

    /// Mutable, downcast access to a node; see [`SimCore::node_as_mut`].
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let owner = self.owner_of(id);
        self.cores[owner].node_as_mut(id)
    }

    /// Delivers a **control event** to a node on its owning shard; see
    /// [`SimCore::control`].  Cross-shard messages emitted by the callback
    /// are exchanged when the next run segment begins.
    pub fn control<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Context<'_, M>) -> R,
    ) -> Option<R> {
        let owner = self.owner_of(id);
        self.cores[owner].control(id, f)
    }

    /// Removes a node from its owning shard and returns it; see
    /// [`SimCore::take_node`].
    pub fn take_node<T: 'static>(&mut self, id: NodeId) -> Option<T>
    where
        M: 'static,
    {
        let owner = self.owner_of(id);
        self.cores[owner].take_node(id)
    }

    /// Moves every event sitting in a core outbox (from `on_start` or
    /// barrier-time `control` callbacks) into the owning core's queue or the
    /// coordinator's pending set.
    fn collect_outboxes(&mut self) {
        for src in 0..self.cores.len() {
            for (dest, events) in self.cores[src].drain_outboxes() {
                self.pending[dest].extend(events);
            }
        }
        self.flush_pending();
    }

    /// Ingests all coordinator-held cross-shard events into their cores.
    fn flush_pending(&mut self) {
        for (shard, events) in self.pending.iter_mut().enumerate() {
            for event in events.drain(..) {
                self.cores[shard].ingest(event);
            }
        }
    }

    /// Runs under the given policy with batched stepping (and conservative
    /// windows when more than one shard is in use).  Returns merged
    /// statistics for the whole run so far.
    pub fn run_until(&mut self, policy: RunUntil) -> SimStats
    where
        M: Send + 'static,
    {
        self.run_internal(policy, true)
    }

    /// Runs under the given policy one event at a time — the reference
    /// serial loop.  Only meaningful on a single shard; with multiple shards
    /// the workers still step batched (the result is identical either way).
    pub fn run_until_stepwise(&mut self, policy: RunUntil) -> SimStats
    where
        M: Send + 'static,
    {
        self.run_internal(policy, false)
    }

    fn run_internal(&mut self, policy: RunUntil, batched: bool) -> SimStats
    where
        M: Send + 'static,
    {
        for core in &mut self.cores {
            core.clear_stop_request();
        }
        // Start all cores first, then exchange: an on_start callback may
        // have queued cross-shard messages into the outboxes.
        for core in &mut self.cores {
            core.start();
        }
        self.collect_outboxes();

        if self.cores.len() == 1 {
            drive_core(&mut self.cores[0], policy, batched);
        } else {
            self.run_windows(policy);
            // At a time-bounded barrier the serial engine's clock reads the
            // time of the last processed event *globally*; align every shard
            // so barrier-time control callbacks observe the identical `now`.
            let global_now = self.now();
            for core in &mut self.cores {
                core.align_clock(global_now);
            }
        }
        self.stats()
    }

    /// One conservative-window run segment on the persistent pool.
    ///
    /// All cross-shard events are fully exchanged and ingested by the time
    /// `run_segment` returns, so between segments the only coordinator-held
    /// state is `pending` (barrier-time control traffic).
    fn run_windows(&mut self, policy: RunUntil)
    where
        M: Send + 'static,
    {
        let (until, max_events) = policy.bounds();
        let lookahead = self.lookahead.as_nanos();
        let shards = self.cores.len();
        let pool = self
            .pool
            .get_or_insert_with(|| WorkerPool::new(shards, lookahead));
        pool.run_segment(&mut self.cores, until, max_events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::node::TimerToken;

    /// Ping-pong across a uniform-latency link, counting what each side saw.
    struct Echo {
        peer: Option<NodeId>,
        cap: u32,
        seen: Vec<u32>,
    }

    impl Node<u32> for Echo {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, 0);
            }
        }
        fn on_message(&mut self, msg: u32, from: NodeId, ctx: &mut Context<'_, u32>) {
            self.seen.push(msg);
            if msg < self.cap {
                ctx.send(from, msg + 1);
            }
        }
    }

    /// A node that periodically fires a timer and sprays random-valued
    /// messages at all peers — exercises timers, fan-out and per-node RNG.
    struct Sprayer {
        peers: Vec<NodeId>,
        rounds: u32,
        got: Vec<(usize, u32)>,
    }

    impl Node<u32> for Sprayer {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.schedule_timer(SimDuration::from_micros(30), TimerToken(0));
        }
        fn on_message(&mut self, msg: u32, from: NodeId, _ctx: &mut Context<'_, u32>) {
            self.got.push((from.index(), msg));
        }
        fn on_timer(&mut self, _token: TimerToken, ctx: &mut Context<'_, u32>) {
            for &peer in &self.peers {
                let v = ctx.random_index(1_000) as u32;
                ctx.send(peer, v);
            }
            self.rounds -= 1;
            if self.rounds > 0 {
                ctx.schedule_timer(SimDuration::from_micros(30), TimerToken(0));
            }
        }
    }

    fn spray_fleet(net_add: &mut dyn FnMut(Sprayer) -> NodeId, n: usize) -> Vec<NodeId> {
        // First allocate ids 0..n, wiring everyone to everyone (ids are
        // deterministic because slots allocate sequentially).
        let all: Vec<NodeId> = (0..n).map(NodeId).collect();
        (0..n)
            .map(|i| {
                let peers: Vec<NodeId> = all.iter().copied().filter(|p| p.index() != i).collect();
                net_add(Sprayer {
                    peers,
                    rounds: 5,
                    got: vec![],
                })
            })
            .collect()
    }

    /// Harvested per-node message logs plus merged stats — the full
    /// observable outcome of a spray run.
    type SprayOutcome = (SimStats, Vec<Vec<(usize, u32)>>);

    fn spray_serial(n: usize) -> SprayOutcome {
        let mut net = Network::new(11, Topology::uniform(SimDuration::from_micros(50)));
        let ids = spray_fleet(&mut |s| net.add_node(s), n);
        net.run_until_stepwise(RunUntil::Drained);
        let stats = net.stats();
        let logs = ids
            .iter()
            .map(|&id| net.take_node::<Sprayer>(id).unwrap().got)
            .collect();
        (stats, logs)
    }

    fn spray_sharded(n: usize, shards: u32) -> SprayOutcome {
        let plan = ShardPlan::from_assignments((0..n).map(|i| i as u32 % shards).collect(), shards);
        // Force the worker pool so the full window protocol runs even when
        // the test host reports a single available core.
        let mut net = ShardedNetwork::with_pool_policy(
            11,
            Topology::uniform(SimDuration::from_micros(50)),
            plan,
            PoolPolicy::Force,
        );
        let ids = spray_fleet(&mut |s| net.add_node(s), n);
        net.run_until(RunUntil::Drained);
        let stats = net.stats();
        let logs = ids
            .iter()
            .map(|&id| net.take_node::<Sprayer>(id).unwrap().got)
            .collect();
        (stats, logs)
    }

    #[test]
    fn sharded_runs_match_the_serial_loop_exactly() {
        let reference = spray_serial(6);
        for shards in [1, 2, 3, 4] {
            assert_eq!(
                spray_sharded(6, shards),
                reference,
                "{shards}-shard run must be byte-identical to serial"
            );
        }
    }

    #[test]
    fn ping_pong_across_shards_matches_serial() {
        fn serial() -> (SimStats, Vec<u32>) {
            let mut net = Network::new(1, Topology::uniform(SimDuration::from_micros(100)));
            let a = net.add_node(Echo {
                peer: None,
                cap: 40,
                seen: vec![],
            });
            let _b = net.add_node(Echo {
                peer: Some(a),
                cap: 40,
                seen: vec![],
            });
            net.run_until_stepwise(RunUntil::Drained);
            let stats = net.stats();
            (stats, net.take_node::<Echo>(a).unwrap().seen)
        }
        fn sharded() -> (SimStats, Vec<u32>) {
            let plan = ShardPlan::from_assignments(vec![0, 1], 2);
            let mut net = ShardedNetwork::with_pool_policy(
                1,
                Topology::uniform(SimDuration::from_micros(100)),
                plan,
                PoolPolicy::Force,
            );
            let a = net.add_node(Echo {
                peer: None,
                cap: 40,
                seen: vec![],
            });
            let _b = net.add_node(Echo {
                peer: Some(a),
                cap: 40,
                seen: vec![],
            });
            assert_eq!(net.shards(), 2);
            assert_eq!(net.lookahead(), SimDuration::from_micros(100));
            net.run_until(RunUntil::Drained);
            let stats = net.stats();
            (stats, net.take_node::<Echo>(a).unwrap().seen)
        }
        assert_eq!(sharded(), serial());
    }

    #[test]
    fn time_bounded_segments_and_controls_match_serial() {
        // Alternate run segments with control events (like the scenario
        // engine does) and check clocks and outputs agree.
        fn drive(sharded: bool) -> (SimStats, SimTime, Vec<u32>) {
            let topo = Topology::uniform(SimDuration::from_micros(100));
            let bound = RunUntil::Time(SimTime::from_secs_f64(0.001));
            if sharded {
                let plan = ShardPlan::from_assignments(vec![0, 1], 2);
                let mut net = ShardedNetwork::with_pool_policy(3, topo, plan, PoolPolicy::Force);
                let a = net.add_node(Echo {
                    peer: None,
                    cap: 1_000,
                    seen: vec![],
                });
                let b = net.add_node(Echo {
                    peer: Some(a),
                    cap: 1_000,
                    seen: vec![],
                });
                net.run_until(bound);
                let t = net.now();
                net.control::<Echo, _>(b, |echo, ctx| {
                    echo.cap = 0;
                    ctx.send(a, 7_000);
                });
                net.run_until(RunUntil::Drained);
                (net.stats(), t, net.take_node::<Echo>(a).unwrap().seen)
            } else {
                let mut net = Network::new(3, topo);
                let a = net.add_node(Echo {
                    peer: None,
                    cap: 1_000,
                    seen: vec![],
                });
                let b = net.add_node(Echo {
                    peer: Some(a),
                    cap: 1_000,
                    seen: vec![],
                });
                net.run_until_stepwise(bound);
                let t = net.now();
                net.control::<Echo, _>(b, |echo, ctx| {
                    echo.cap = 0;
                    ctx.send(a, 7_000);
                });
                net.run_until_stepwise(RunUntil::Drained);
                (net.stats(), t, net.take_node::<Echo>(a).unwrap().seen)
            }
        }
        assert_eq!(drive(true), drive(false));
    }

    #[test]
    fn zero_lookahead_collapses_to_one_shard() {
        let plan = ShardPlan::from_assignments(vec![0, 1], 2);
        let net: ShardedNetwork<u32> =
            ShardedNetwork::new(1, Topology::uniform(SimDuration::ZERO), plan);
        assert_eq!(net.shards(), 1);
        assert_eq!(net.lookahead(), SimDuration::ZERO);
    }

    #[test]
    fn reserved_and_late_inserted_nodes_work_across_shards() {
        let plan = ShardPlan::from_assignments(vec![0, 1, 1], 2);
        let mut net = ShardedNetwork::with_pool_policy(
            5,
            Topology::uniform(SimDuration::from_micros(10)),
            plan,
            PoolPolicy::Force,
        );
        let a = net.add_node(Echo {
            peer: None,
            cap: 0,
            seen: vec![],
        });
        let reserved = net.reserve_node(); // slot 1 on shard 1

        struct To {
            target: NodeId,
        }
        impl Node<u32> for To {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(self.target, 5);
            }
            fn on_message(&mut self, _m: u32, _f: NodeId, _c: &mut Context<'_, u32>) {}
        }
        net.add_node(To { target: reserved }); // slot 2 on shard 1
        net.run_until(RunUntil::Drained);
        let stats = net.stats();
        assert_eq!(stats.dropped_vacant, 1, "reserved slot dropped the send");

        net.insert_node(
            reserved,
            Echo {
                peer: None,
                cap: 0,
                seen: vec![],
            },
        );
        // A control on shard 0 sends cross-shard to the just-inserted node.
        net.control::<Echo, _>(a, |_echo, ctx| ctx.send(reserved, 9))
            .unwrap();
        net.run_until(RunUntil::Drained);
        let echo = net.take_node::<Echo>(reserved).unwrap();
        assert_eq!(echo.seen, vec![9]);
    }

    #[test]
    fn exec_mode_defaults_and_thread_counts() {
        assert_eq!(ExecMode::default(), ExecMode::Batched);
        assert_eq!(ExecMode::SerialStep.threads(), 1);
        assert_eq!(ExecMode::Batched.threads(), 1);
        assert_eq!(ExecMode::Sharded { threads: 4 }.threads(), 4);
        assert_eq!(ExecMode::Sharded { threads: 0 }.threads(), 1);
    }

    #[test]
    fn shard_plan_accessors() {
        let plan = ShardPlan::from_assignments(vec![0, 1, 0], 2);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.slots(), 3);
        assert_eq!(plan.shard_of(NodeId(1)), 1);
        assert_eq!(plan.shard_of(NodeId(99)), 0);
        let single = ShardPlan::single(4);
        assert_eq!(single.shards(), 1);
        assert_eq!(single.slots(), 4);
    }

    #[test]
    #[should_panic(expected = "shard assignment out of range")]
    fn shard_plan_rejects_out_of_range_assignments() {
        let _ = ShardPlan::from_assignments(vec![0, 2], 2);
    }

    #[test]
    fn pool_policy_never_collapses_to_one_shard() {
        let plan = ShardPlan::from_assignments(vec![0, 1], 2);
        let net: ShardedNetwork<u32> = ShardedNetwork::with_pool_policy(
            1,
            Topology::uniform(SimDuration::from_micros(100)),
            plan,
            PoolPolicy::Never,
        );
        assert_eq!(net.shards(), 1);
        assert_eq!(net.lookahead(), SimDuration::ZERO);
    }

    /// `RunUntil::Events` contract, exact half: when no window processes
    /// more than one event globally (a ping-pong has exactly one in-flight
    /// message), a budget stop lands on exactly the serial count — for any
    /// budget.
    #[test]
    fn event_budget_is_exact_when_windows_hold_single_events() {
        for budget in [1u64, 2, 3, 7, 20] {
            let plan = ShardPlan::from_assignments(vec![0, 1], 2);
            let mut net = ShardedNetwork::with_pool_policy(
                1,
                Topology::uniform(SimDuration::from_micros(100)),
                plan,
                PoolPolicy::Force,
            );
            let a = net.add_node(Echo {
                peer: None,
                cap: 1_000,
                seen: vec![],
            });
            let _b = net.add_node(Echo {
                peer: Some(a),
                cap: 1_000,
                seen: vec![],
            });
            net.run_until(RunUntil::Events(budget));
            assert_eq!(
                net.stats().events_processed,
                budget,
                "budget {budget} must stop exactly on the serial count"
            );
        }
    }

    /// `RunUntil::Events` contract, bound half: with `S` shards and
    /// remainder `r` at the final window's start, the run processes at most
    /// `n + (S - 1) · r ≤ S · n` events — and never more than the serial
    /// engine has available.  Also pins that the overshoot is deterministic
    /// (same spec, same budget → same count).
    #[test]
    fn event_budget_overshoot_stays_within_documented_bound() {
        let serial_total = spray_serial(6).0.events_processed;
        for shards in [2u32, 3] {
            for budget in [5u64, 17, 50] {
                let run = || {
                    let plan = ShardPlan::from_assignments(
                        (0..6).map(|i| i as u32 % shards).collect(),
                        shards,
                    );
                    let mut net = ShardedNetwork::with_pool_policy(
                        11,
                        Topology::uniform(SimDuration::from_micros(50)),
                        plan,
                        PoolPolicy::Force,
                    );
                    spray_fleet(&mut |s| net.add_node(s), 6);
                    net.run_until(RunUntil::Events(budget));
                    net.stats().events_processed
                };
                let processed = run();
                let available = serial_total.min(budget * u64::from(shards));
                assert!(
                    processed >= budget.min(serial_total) && processed <= available,
                    "{shards} shards, budget {budget}: processed {processed} \
                     outside [{}, {available}]",
                    budget.min(serial_total)
                );
                assert_eq!(processed, run(), "overshoot must be deterministic");
            }
        }
    }

    /// A shard whose peers are idle runs to completion in one coalesced
    /// window instead of one barrier round per lookahead of simulated time.
    #[test]
    fn isolated_shard_work_drains_without_cross_shard_traffic() {
        // Two echo pairs, each pair entirely on one shard: after on_start
        // neither shard ever sends cross-shard, so every window is
        // unbounded and the run must still terminate (and match serial).
        fn build(net_add: &mut dyn FnMut(Echo) -> NodeId) {
            let a = net_add(Echo {
                peer: None,
                cap: 30,
                seen: vec![],
            });
            net_add(Echo {
                peer: Some(a),
                cap: 30,
                seen: vec![],
            });
            let c = net_add(Echo {
                peer: None,
                cap: 50,
                seen: vec![],
            });
            net_add(Echo {
                peer: Some(c),
                cap: 50,
                seen: vec![],
            });
        }
        let mut serial = Network::new(9, Topology::uniform(SimDuration::from_micros(40)));
        build(&mut |e| serial.add_node(e));
        serial.run_until_stepwise(RunUntil::Drained);

        let plan = ShardPlan::from_assignments(vec![0, 0, 1, 1], 2);
        let mut sharded = ShardedNetwork::with_pool_policy(
            9,
            Topology::uniform(SimDuration::from_micros(40)),
            plan,
            PoolPolicy::Force,
        );
        build(&mut |e| sharded.add_node(e));
        sharded.run_until(RunUntil::Drained);
        assert_eq!(sharded.stats(), serial.stats());
    }

    /// A node with a far-future timer that instantly acks anything it is
    /// sent — bait for an unsound horizon: its shard looks idle until the
    /// timer, but a message can wake it this very window.
    struct SleepyRelay {
        acked: u32,
    }

    impl Node<u32> for SleepyRelay {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.schedule_timer(SimDuration::from_secs_f64(1.0), TimerToken(0));
        }
        fn on_message(&mut self, msg: u32, from: NodeId, ctx: &mut Context<'_, u32>) {
            self.acked += 1;
            ctx.send(from, msg + 1);
        }
        fn on_timer(&mut self, _token: TimerToken, _ctx: &mut Context<'_, u32>) {}
    }

    /// A node ticking a fast local timer; on one designated tick it pings
    /// the relay, and it logs every callback so the ack's position in its
    /// history is observable.
    struct Ticker {
        relay: NodeId,
        ticks_left: u32,
        ping_on_tick: u32,
        log: Vec<(u64, u32)>,
    }

    impl Node<u32> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.schedule_timer(SimDuration::from_micros(10), TimerToken(0));
        }
        fn on_message(&mut self, msg: u32, _from: NodeId, ctx: &mut Context<'_, u32>) {
            self.log.push((ctx.now().as_nanos(), msg));
        }
        fn on_timer(&mut self, _token: TimerToken, ctx: &mut Context<'_, u32>) {
            self.log.push((ctx.now().as_nanos(), u32::MAX));
            if self.ticks_left == self.ping_on_tick {
                ctx.send(self.relay, 0);
            }
            self.ticks_left -= 1;
            if self.ticks_left > 0 {
                ctx.schedule_timer(SimDuration::from_micros(10), TimerToken(0));
            }
        }
    }

    /// Regression: the per-shard horizon must cap at `t0 + lookahead` for
    /// reaction chains.  Shard 1's only queued work is a timer one second
    /// out, so `next[1]` alone would let shard 0 run its whole fast timer
    /// train in one window — but shard 0's ping wakes the relay *this*
    /// window and the ack must land mid-train, exactly as in serial.
    #[test]
    fn reaction_chain_from_idle_shard_cannot_be_overtaken() {
        fn run(sharded: bool) -> (SimStats, Vec<(u64, u32)>, u32) {
            let topo = Topology::uniform(SimDuration::from_micros(50));
            let (stats, log, acked);
            if sharded {
                let plan = ShardPlan::from_assignments(vec![0, 1], 2);
                let mut net = ShardedNetwork::with_pool_policy(7, topo, plan, PoolPolicy::Force);
                let relay = NodeId(1);
                let t = net.add_node(Ticker {
                    relay,
                    ticks_left: 100,
                    ping_on_tick: 95,
                    log: vec![],
                });
                let r = net.add_node(SleepyRelay { acked: 0 });
                net.run_until(RunUntil::Drained);
                stats = net.stats();
                log = net.take_node::<Ticker>(t).unwrap().log;
                acked = net.take_node::<SleepyRelay>(r).unwrap().acked;
            } else {
                let mut net = Network::new(7, topo);
                let relay = NodeId(1);
                let t = net.add_node(Ticker {
                    relay,
                    ticks_left: 100,
                    ping_on_tick: 95,
                    log: vec![],
                });
                let r = net.add_node(SleepyRelay { acked: 0 });
                net.run_until_stepwise(RunUntil::Drained);
                stats = net.stats();
                log = net.take_node::<Ticker>(t).unwrap().log;
                acked = net.take_node::<SleepyRelay>(r).unwrap().acked;
            }
            (stats, log, acked)
        }
        let serial = run(false);
        assert_eq!(serial.2, 1, "the relay saw exactly one ping");
        let ack_pos = serial.1.iter().position(|&(_, m)| m != u32::MAX);
        assert!(
            ack_pos.is_some_and(|p| p < serial.1.len() - 1),
            "the ack must land mid-train in serial, or the test is inert"
        );
        assert_eq!(run(true), serial);
    }

    #[test]
    fn topology_aware_plan_groups_racks_and_caps_shards() {
        let model = TopologyModel::rack_zone_default(); // 4 racks
                                                        // 2 LBs, 8 servers: rack r holds servers {r, r+4} and LB r % 2.
        let plan = ShardPlan::topology_aware(&model, 2, 8, 4);
        assert_eq!(plan.shards(), 4);
        // Same-rack nodes always share a shard.
        for i in 0..8 {
            for j in 0..8 {
                if model.rack_of(i) == model.rack_of(j) {
                    assert_eq!(
                        plan.shard_of(NodeId(1 + 2 + i)),
                        plan.shard_of(NodeId(1 + 2 + j)),
                        "servers {i} and {j} share a rack, must share a shard"
                    );
                }
            }
        }
        // LB j rides with rack j % racks.
        for j in 0..2 {
            assert_eq!(
                plan.shard_of(NodeId(1 + j)),
                plan.shard_of(NodeId(1 + 2 + (j % 4))),
                "LB {j} must be co-sharded with its rack's servers"
            );
        }
        // More threads than racks cannot help: shard count caps at racks.
        assert_eq!(ShardPlan::topology_aware(&model, 2, 8, 8).shards(), 4);
        // The grouped plan's lookahead is the cross-rack latency, not the
        // intra-rack minimum a rack-splitting plan would be stuck with.
        let client = NodeId(0);
        let lbs = [NodeId(1), NodeId(2)];
        let servers: Vec<NodeId> = (0..8).map(|i| NodeId(3 + i)).collect();
        let topo = model.build(client, &lbs, &servers);
        assert_eq!(
            plan.lookahead(&topo),
            Some(SimDuration::from_micros(80)),
            "rack-grouped lookahead must be the cross-rack latency"
        );
        // A 3-thread round-robin plan splits racks and pays the intra-rack
        // minimum instead.
        let rr = ShardPlan::round_robin(2, 8, 3);
        assert_eq!(rr.lookahead(&topo), Some(SimDuration::from_micros(15)));
        // ... while the topology-aware 3-thread plan keeps racks whole.
        let aware = ShardPlan::topology_aware(&model, 2, 8, 3);
        assert_eq!(aware.shards(), 3);
        assert_eq!(aware.lookahead(&topo), Some(SimDuration::from_micros(80)));
    }

    #[test]
    fn topology_aware_plan_degenerates_to_round_robin_on_uniform() {
        let model = TopologyModel::paper();
        let aware = ShardPlan::topology_aware(&model, 2, 6, 3);
        let rr = ShardPlan::round_robin(2, 6, 3);
        assert_eq!(aware.shard_of, rr.shard_of);
        assert_eq!(ShardPlan::topology_aware(&model, 2, 6, 1).shards(), 1);
    }

    #[test]
    fn shard_sizes_counts_slots_per_shard() {
        let plan = ShardPlan::from_assignments(vec![0, 1, 0, 1, 1], 2);
        assert_eq!(plan.shard_sizes(), vec![2, 3]);
    }
}
