//! Multi-threaded sharded execution over [`SimCore`]s, synchronised by
//! conservative time windows — byte-identical to the serial loop.
//!
//! # Model
//!
//! The node table is partitioned by a [`ShardPlan`]; each shard owns one
//! [`SimCore`] holding the nodes assigned to it (foreign slots stay vacant so
//! ids line up).  A classic conservative (Chandy–Misra–Bryant-style) window
//! protocol synchronises the shards: with `lookahead` = the minimum link
//! latency between any cross-shard node pair, every event a shard processes
//! in the window `[t0, t0 + lookahead)` can only schedule cross-shard
//! arrivals at `≥ t0 + lookahead`, so all shards may process their local
//! events inside the window in parallel without ever receiving a "past"
//! event.  Cross-shard messages accumulate in per-destination outboxes and
//! are exchanged at window barriers.
//!
//! # Why the result is byte-identical to the serial loop
//!
//! Event order is defined by globally unique
//! [`EventKey`](crate::event::EventKey)s `(time, src, seq)` that are pure
//! functions of each *scheduling* node's own history, and every node draws
//! randomness from its private stream.  By induction over windows, each node
//! therefore observes exactly the callback sequence it would observe under
//! the serial engine and emits exactly the same events with the same keys —
//! regardless of shard count or thread interleaving.  Two caveats (neither
//! is exercised by the SRLB experiment drivers): a [`Context::stop`] request
//! is honoured at the next window boundary rather than the next event, and a
//! pure event budget (`RunUntil::Events`) may overshoot by up to one window
//! before the coordinator notices.

use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;

use crate::core::{SimCore, SimStats};
use crate::event::ScheduledEvent;
use crate::link::Topology;
use crate::network::{drive_core, RunUntil};
use crate::node::{Context, Node, NodeId};
use crate::time::{SimDuration, SimTime};

/// How an experiment driver executes the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Single-threaded, one event at a time — the reference loop.
    SerialStep,
    /// Single-threaded, same-timestamp batched loop (the default).
    #[default]
    Batched,
    /// Multi-threaded conservative-window sharding across `threads` worker
    /// shards.  `threads <= 1` degenerates to [`ExecMode::Batched`].
    Sharded {
        /// Number of worker shards (and threads).
        threads: usize,
    },
}

impl ExecMode {
    /// Environment variable read by [`ExecMode::from_env`] (and set by the
    /// bench CLI's `--sim-threads` flag).
    pub const ENV_VAR: &'static str = "SRLB_SIM_THREADS";

    /// Resolves the mode from `SRLB_SIM_THREADS`: values above 1 select
    /// sharded execution with that many worker shards; everything else
    /// (unset, empty, `0`, `1`, unparsable) selects the batched default.
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV_VAR)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(threads) if threads > 1 => ExecMode::Sharded { threads },
            _ => ExecMode::Batched,
        }
    }

    /// The number of worker shards this mode drives.
    pub fn threads(self) -> usize {
        match self {
            ExecMode::SerialStep | ExecMode::Batched => 1,
            ExecMode::Sharded { threads } => threads.max(1),
        }
    }
}

/// Assignment of node-table slots to shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shard_of: Vec<u32>,
    shards: u32,
}

impl ShardPlan {
    /// Everything on one shard (serial execution).
    pub fn single(slots: usize) -> Self {
        ShardPlan {
            shard_of: vec![0; slots],
            shards: 1,
        }
    }

    /// Builds a plan from explicit per-slot assignments.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or any assignment is out of range.
    pub fn from_assignments(shard_of: Vec<u32>, shards: u32) -> Self {
        assert!(shards > 0, "a shard plan needs at least one shard");
        assert!(
            shard_of.iter().all(|&s| s < shards),
            "shard assignment out of range"
        );
        ShardPlan { shard_of, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// Number of planned node slots.
    pub fn slots(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard owning slot `id` (0 for ids beyond the plan).
    pub fn shard_of(&self, id: NodeId) -> usize {
        self.shard_of.get(id.index()).copied().unwrap_or(0) as usize
    }

    /// The minimum link latency between any two slots on *different* shards
    /// — the conservative lookahead.  `None` when no cross-shard pair
    /// exists (single shard).
    fn lookahead(&self, topology: &Topology) -> Option<SimDuration> {
        let n = self.shard_of.len();
        let mut min: Option<SimDuration> = None;
        for a in 0..n {
            for b in 0..n {
                if a != b && self.shard_of[a] != self.shard_of[b] {
                    let lat = topology.latency(NodeId(a), NodeId(b));
                    min = Some(min.map_or(lat, |m| m.min(lat)));
                }
            }
        }
        min
    }
}

/// A window assignment sent to a worker shard.
struct WindowCmd<M> {
    /// Process local events strictly below this time.
    horizon: SimTime,
    /// Additional time bound from the run policy (inclusive).
    until: Option<SimTime>,
    /// Cross-shard events that arrived for this shard at the last barrier.
    inbox: Vec<ScheduledEvent<M>>,
}

/// A worker shard's report at a window barrier.
struct WindowReply<M> {
    shard: usize,
    next_time: Option<SimTime>,
    outboxes: Vec<(usize, Vec<ScheduledEvent<M>>)>,
    processed: u64,
    stopped: bool,
}

/// The multi-threaded discrete-event engine frontend: a set of per-shard
/// [`SimCore`]s advancing in lock-step conservative time windows.
///
/// With a single shard this is exactly the batched serial engine (no threads
/// are spawned); with `S > 1` shards, `S` scoped worker threads each drive
/// one core.  Either way the run output is byte-identical to
/// [`crate::Network`] on the same seed and node layout.
pub struct ShardedNetwork<M> {
    cores: Vec<SimCore<M>>,
    plan: ShardPlan,
    lookahead: SimDuration,
    /// Cross-shard events awaiting ingestion, per destination shard (held
    /// between run segments when a run ends at a barrier).
    pending: Vec<Vec<ScheduledEvent<M>>>,
    next_slot: usize,
}

impl<M> fmt::Debug for ShardedNetwork<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedNetwork")
            .field("shards", &self.cores.len())
            .field("lookahead", &self.lookahead)
            .field("nodes", &self.next_slot)
            .finish()
    }
}

impl<M> ShardedNetwork<M> {
    /// Creates an empty sharded network.
    ///
    /// If the plan's cross-shard lookahead is zero (some cross-shard link
    /// has no latency) or the plan has one shard, execution collapses to a
    /// single shard: conservative windows would not permit any parallelism
    /// at zero lookahead, and a single core needs no synchronisation at all.
    pub fn new(seed: u64, topology: Topology, plan: ShardPlan) -> Self {
        let lookahead = plan.lookahead(&topology);
        let (plan, lookahead) = match lookahead {
            Some(l) if l > SimDuration::ZERO && plan.shards() > 1 => (plan, l),
            _ => (ShardPlan::single(plan.slots()), SimDuration::ZERO),
        };
        let shards = plan.shards();
        let shard_of: Arc<[u32]> = Arc::from(plan.shard_of.clone().into_boxed_slice());
        let cores = (0..shards)
            .map(|s| {
                let mut core = SimCore::new(seed, topology.clone());
                if shards > 1 {
                    core.set_router(Arc::clone(&shard_of), s as u32, shards);
                }
                core
            })
            .collect();
        ShardedNetwork {
            cores,
            plan,
            lookahead,
            pending: (0..shards).map(|_| Vec::new()).collect(),
            next_slot: 0,
        }
    }

    /// Installs a fault-injection layer on every core (see
    /// [`crate::faults`]).  Must be called before any node is added so all
    /// execution modes see the same fault state from the first delivery on.
    ///
    /// Each core compiles its own copy of the config; the stateless rules
    /// are pure functions of event keys and the stateful rules are per
    /// directed link, whose deliveries all land on the destination's owning
    /// core in global key order — so per-shard copies evolve exactly like
    /// the single serial copy would.
    pub fn set_faults(&mut self, config: &crate::faults::FaultConfig) {
        for core in &mut self.cores {
            core.set_faults(config);
        }
    }

    /// Number of shards actually in use (after any zero-lookahead collapse).
    pub fn shards(&self) -> usize {
        self.cores.len()
    }

    /// The conservative lookahead window length (zero on a single shard).
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    fn owner_of(&self, id: NodeId) -> usize {
        if self.cores.len() == 1 {
            0
        } else {
            self.plan.shard_of(id)
        }
    }

    /// Allocates the next slot id on every core (keeping the tables
    /// aligned) and returns it.
    fn alloc_slot(&mut self) -> NodeId {
        let expected = NodeId(self.next_slot);
        for core in &mut self.cores {
            let id = core.reserve_node();
            debug_assert_eq!(id, expected, "core node tables must stay aligned");
        }
        self.next_slot += 1;
        expected
    }

    /// Adds a node (owned by the shard its slot is planned onto) and returns
    /// its id.  Same start semantics as [`SimCore::add_node`].
    pub fn add_node(&mut self, node: impl Node<M> + Send + 'static) -> NodeId {
        let id = self.alloc_slot();
        let owner = self.owner_of(id);
        self.cores[owner].insert_node(id, node);
        id
    }

    /// Reserves an empty node slot on every shard; see
    /// [`SimCore::reserve_node`].
    pub fn reserve_node(&mut self) -> NodeId {
        self.alloc_slot()
    }

    /// Fills a reserved (or vacated) slot on its owning shard; see
    /// [`SimCore::insert_node`].
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the slot is occupied.
    pub fn insert_node(&mut self, id: NodeId, node: impl Node<M> + Send + 'static) {
        let owner = self.owner_of(id);
        self.cores[owner].insert_node(id, node);
    }

    /// Current simulated time: the furthest any shard has processed.
    pub fn now(&self) -> SimTime {
        self.cores
            .iter()
            .map(SimCore::now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Merged run statistics across all shards (counts add,
    /// `last_event_time` is the maximum).
    pub fn stats(&self) -> SimStats {
        let mut merged = SimStats::default();
        for core in &self.cores {
            merged.absorb(core.stats());
        }
        merged
    }

    /// Number of node slots.
    pub fn node_count(&self) -> usize {
        self.next_slot
    }

    /// The topology used for link latencies.
    pub fn topology(&self) -> &Topology {
        self.cores[0].topology()
    }

    /// Total number of events ever scheduled, summed over shards.  An event
    /// is counted once: on the queue of the shard that delivers it.
    pub fn scheduled_total(&self) -> u64 {
        self.cores.iter().map(SimCore::scheduled_total).sum()
    }

    /// Immutable access to a node as a `dyn Node<M>`; see
    /// [`SimCore::with_node`].
    pub fn with_node<R>(&self, id: NodeId, f: impl FnOnce(&dyn Node<M>) -> R) -> Option<R> {
        self.cores[self.owner_of(id)].with_node(id, f)
    }

    /// Immutable, downcast access to a node; see [`SimCore::node_as`].
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.cores[self.owner_of(id)].node_as(id)
    }

    /// Mutable, downcast access to a node; see [`SimCore::node_as_mut`].
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let owner = self.owner_of(id);
        self.cores[owner].node_as_mut(id)
    }

    /// Delivers a **control event** to a node on its owning shard; see
    /// [`SimCore::control`].  Cross-shard messages emitted by the callback
    /// are exchanged when the next run segment begins.
    pub fn control<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Context<'_, M>) -> R,
    ) -> Option<R> {
        let owner = self.owner_of(id);
        self.cores[owner].control(id, f)
    }

    /// Removes a node from its owning shard and returns it; see
    /// [`SimCore::take_node`].
    pub fn take_node<T: 'static>(&mut self, id: NodeId) -> Option<T>
    where
        M: 'static,
    {
        let owner = self.owner_of(id);
        self.cores[owner].take_node(id)
    }

    /// Moves every event sitting in a core outbox (from `on_start` or
    /// barrier-time `control` callbacks) into the owning core's queue or the
    /// coordinator's pending set.
    fn collect_outboxes(&mut self) {
        for src in 0..self.cores.len() {
            for (dest, events) in self.cores[src].drain_outboxes() {
                self.pending[dest].extend(events);
            }
        }
        self.flush_pending();
    }

    /// Ingests all coordinator-held cross-shard events into their cores.
    fn flush_pending(&mut self) {
        for (shard, events) in self.pending.iter_mut().enumerate() {
            for event in events.drain(..) {
                self.cores[shard].ingest(event);
            }
        }
    }

    /// Runs under the given policy with batched stepping (and conservative
    /// windows when more than one shard is in use).  Returns merged
    /// statistics for the whole run so far.
    pub fn run_until(&mut self, policy: RunUntil) -> SimStats
    where
        M: Send,
    {
        self.run_internal(policy, true)
    }

    /// Runs under the given policy one event at a time — the reference
    /// serial loop.  Only meaningful on a single shard; with multiple shards
    /// the workers still step batched (the result is identical either way).
    pub fn run_until_stepwise(&mut self, policy: RunUntil) -> SimStats
    where
        M: Send,
    {
        self.run_internal(policy, false)
    }

    fn run_internal(&mut self, policy: RunUntil, batched: bool) -> SimStats
    where
        M: Send,
    {
        for core in &mut self.cores {
            core.clear_stop_request();
        }
        // Start all cores first, then exchange: an on_start callback may
        // have queued cross-shard messages into the outboxes.
        for core in &mut self.cores {
            core.start();
        }
        self.collect_outboxes();

        if self.cores.len() == 1 {
            drive_core(&mut self.cores[0], policy, batched);
        } else {
            self.run_windows(policy);
            // At a time-bounded barrier the serial engine's clock reads the
            // time of the last processed event *globally*; align every shard
            // so barrier-time control callbacks observe the identical `now`.
            let global_now = self.now();
            for core in &mut self.cores {
                core.align_clock(global_now);
            }
        }
        self.stats()
    }

    /// The conservative window loop across scoped worker threads.
    fn run_windows(&mut self, policy: RunUntil)
    where
        M: Send,
    {
        let (until, max_events) = policy.bounds();
        let lookahead = self.lookahead;
        let shard_count = self.cores.len();
        let pending = &mut self.pending;

        // Next pending local time per shard, captured before the cores move
        // into their worker threads.
        let mut next_times: Vec<Option<SimTime>> =
            self.cores.iter().map(|c| c.peek_time()).collect();

        std::thread::scope(|scope| {
            let (reply_tx, reply_rx) = mpsc::channel::<WindowReply<M>>();
            let mut cmd_txs = Vec::with_capacity(shard_count);
            for (shard, core) in self.cores.iter_mut().enumerate() {
                let (cmd_tx, cmd_rx) = mpsc::channel::<WindowCmd<M>>();
                let reply_tx = reply_tx.clone();
                cmd_txs.push(cmd_tx);
                scope.spawn(move || {
                    while let Ok(cmd) = cmd_rx.recv() {
                        for event in cmd.inbox {
                            core.ingest(event);
                        }
                        let mut processed = 0u64;
                        while !core.stop_requested() {
                            let Some(next) = core.peek_time() else {
                                break;
                            };
                            if next >= cmd.horizon {
                                break;
                            }
                            if cmd.until.is_some_and(|u| next > u) {
                                break;
                            }
                            processed += core.step_batch(u64::MAX);
                        }
                        let reply = WindowReply {
                            shard,
                            next_time: core.peek_time(),
                            outboxes: core.drain_outboxes(),
                            processed,
                            stopped: core.stop_requested(),
                        };
                        if reply_tx.send(reply).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(reply_tx);

            let mut total_processed = 0u64;
            loop {
                // The earliest pending work anywhere: local queues plus
                // cross-shard events still held by the coordinator.
                let mut t0: Option<SimTime> = None;
                for shard in 0..shard_count {
                    let local = next_times[shard];
                    let inbox = pending[shard].iter().map(|e| e.key.time).min();
                    for t in [local, inbox].into_iter().flatten() {
                        t0 = Some(t0.map_or(t, |cur: SimTime| cur.min(t)));
                    }
                }
                let Some(t0) = t0 else {
                    break;
                };
                if until.is_some_and(|u| t0 > u) {
                    break;
                }
                if max_events.is_some_and(|m| total_processed >= m) {
                    break;
                }

                let horizon = t0 + lookahead;
                for (shard, cmd_tx) in cmd_txs.iter().enumerate() {
                    let cmd = WindowCmd {
                        horizon,
                        until,
                        inbox: std::mem::take(&mut pending[shard]),
                    };
                    if cmd_tx.send(cmd).is_err() {
                        return; // a worker died; scope will propagate its panic
                    }
                }
                let mut stopped = false;
                for _ in 0..shard_count {
                    let Ok(reply) = reply_rx.recv() else {
                        return; // a worker died; scope will propagate its panic
                    };
                    next_times[reply.shard] = reply.next_time;
                    total_processed += reply.processed;
                    stopped |= reply.stopped;
                    for (dest, events) in reply.outboxes {
                        pending[dest].extend(events);
                    }
                }
                if stopped {
                    break;
                }
            }
            drop(cmd_txs); // workers exit their recv loops
        });

        // Park any events still in flight at the final barrier on the owning
        // cores so a later run segment (or node harvest) sees them.
        self.flush_pending();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::node::TimerToken;

    /// Ping-pong across a uniform-latency link, counting what each side saw.
    struct Echo {
        peer: Option<NodeId>,
        cap: u32,
        seen: Vec<u32>,
    }

    impl Node<u32> for Echo {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, 0);
            }
        }
        fn on_message(&mut self, msg: u32, from: NodeId, ctx: &mut Context<'_, u32>) {
            self.seen.push(msg);
            if msg < self.cap {
                ctx.send(from, msg + 1);
            }
        }
    }

    /// A node that periodically fires a timer and sprays random-valued
    /// messages at all peers — exercises timers, fan-out and per-node RNG.
    struct Sprayer {
        peers: Vec<NodeId>,
        rounds: u32,
        got: Vec<(usize, u32)>,
    }

    impl Node<u32> for Sprayer {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.schedule_timer(SimDuration::from_micros(30), TimerToken(0));
        }
        fn on_message(&mut self, msg: u32, from: NodeId, _ctx: &mut Context<'_, u32>) {
            self.got.push((from.index(), msg));
        }
        fn on_timer(&mut self, _token: TimerToken, ctx: &mut Context<'_, u32>) {
            for &peer in &self.peers {
                let v = ctx.random_index(1_000) as u32;
                ctx.send(peer, v);
            }
            self.rounds -= 1;
            if self.rounds > 0 {
                ctx.schedule_timer(SimDuration::from_micros(30), TimerToken(0));
            }
        }
    }

    fn spray_fleet(net_add: &mut dyn FnMut(Sprayer) -> NodeId, n: usize) -> Vec<NodeId> {
        // First allocate ids 0..n, wiring everyone to everyone (ids are
        // deterministic because slots allocate sequentially).
        let all: Vec<NodeId> = (0..n).map(NodeId).collect();
        (0..n)
            .map(|i| {
                let peers: Vec<NodeId> = all.iter().copied().filter(|p| p.index() != i).collect();
                net_add(Sprayer {
                    peers,
                    rounds: 5,
                    got: vec![],
                })
            })
            .collect()
    }

    /// Harvested per-node message logs plus merged stats — the full
    /// observable outcome of a spray run.
    type SprayOutcome = (SimStats, Vec<Vec<(usize, u32)>>);

    fn spray_serial(n: usize) -> SprayOutcome {
        let mut net = Network::new(11, Topology::uniform(SimDuration::from_micros(50)));
        let ids = spray_fleet(&mut |s| net.add_node(s), n);
        net.run_until_stepwise(RunUntil::Drained);
        let stats = net.stats();
        let logs = ids
            .iter()
            .map(|&id| net.take_node::<Sprayer>(id).unwrap().got)
            .collect();
        (stats, logs)
    }

    fn spray_sharded(n: usize, shards: u32) -> SprayOutcome {
        let plan = ShardPlan::from_assignments((0..n).map(|i| i as u32 % shards).collect(), shards);
        let mut net =
            ShardedNetwork::new(11, Topology::uniform(SimDuration::from_micros(50)), plan);
        let ids = spray_fleet(&mut |s| net.add_node(s), n);
        net.run_until(RunUntil::Drained);
        let stats = net.stats();
        let logs = ids
            .iter()
            .map(|&id| net.take_node::<Sprayer>(id).unwrap().got)
            .collect();
        (stats, logs)
    }

    #[test]
    fn sharded_runs_match_the_serial_loop_exactly() {
        let reference = spray_serial(6);
        for shards in [1, 2, 3, 4] {
            assert_eq!(
                spray_sharded(6, shards),
                reference,
                "{shards}-shard run must be byte-identical to serial"
            );
        }
    }

    #[test]
    fn ping_pong_across_shards_matches_serial() {
        fn serial() -> (SimStats, Vec<u32>) {
            let mut net = Network::new(1, Topology::uniform(SimDuration::from_micros(100)));
            let a = net.add_node(Echo {
                peer: None,
                cap: 40,
                seen: vec![],
            });
            let _b = net.add_node(Echo {
                peer: Some(a),
                cap: 40,
                seen: vec![],
            });
            net.run_until_stepwise(RunUntil::Drained);
            let stats = net.stats();
            (stats, net.take_node::<Echo>(a).unwrap().seen)
        }
        fn sharded() -> (SimStats, Vec<u32>) {
            let plan = ShardPlan::from_assignments(vec![0, 1], 2);
            let mut net =
                ShardedNetwork::new(1, Topology::uniform(SimDuration::from_micros(100)), plan);
            let a = net.add_node(Echo {
                peer: None,
                cap: 40,
                seen: vec![],
            });
            let _b = net.add_node(Echo {
                peer: Some(a),
                cap: 40,
                seen: vec![],
            });
            assert_eq!(net.shards(), 2);
            assert_eq!(net.lookahead(), SimDuration::from_micros(100));
            net.run_until(RunUntil::Drained);
            let stats = net.stats();
            (stats, net.take_node::<Echo>(a).unwrap().seen)
        }
        assert_eq!(sharded(), serial());
    }

    #[test]
    fn time_bounded_segments_and_controls_match_serial() {
        // Alternate run segments with control events (like the scenario
        // engine does) and check clocks and outputs agree.
        fn drive(sharded: bool) -> (SimStats, SimTime, Vec<u32>) {
            let topo = Topology::uniform(SimDuration::from_micros(100));
            let bound = RunUntil::Time(SimTime::from_secs_f64(0.001));
            if sharded {
                let plan = ShardPlan::from_assignments(vec![0, 1], 2);
                let mut net = ShardedNetwork::new(3, topo, plan);
                let a = net.add_node(Echo {
                    peer: None,
                    cap: 1_000,
                    seen: vec![],
                });
                let b = net.add_node(Echo {
                    peer: Some(a),
                    cap: 1_000,
                    seen: vec![],
                });
                net.run_until(bound);
                let t = net.now();
                net.control::<Echo, _>(b, |echo, ctx| {
                    echo.cap = 0;
                    ctx.send(a, 7_000);
                });
                net.run_until(RunUntil::Drained);
                (net.stats(), t, net.take_node::<Echo>(a).unwrap().seen)
            } else {
                let mut net = Network::new(3, topo);
                let a = net.add_node(Echo {
                    peer: None,
                    cap: 1_000,
                    seen: vec![],
                });
                let b = net.add_node(Echo {
                    peer: Some(a),
                    cap: 1_000,
                    seen: vec![],
                });
                net.run_until_stepwise(bound);
                let t = net.now();
                net.control::<Echo, _>(b, |echo, ctx| {
                    echo.cap = 0;
                    ctx.send(a, 7_000);
                });
                net.run_until_stepwise(RunUntil::Drained);
                (net.stats(), t, net.take_node::<Echo>(a).unwrap().seen)
            }
        }
        assert_eq!(drive(true), drive(false));
    }

    #[test]
    fn zero_lookahead_collapses_to_one_shard() {
        let plan = ShardPlan::from_assignments(vec![0, 1], 2);
        let net: ShardedNetwork<u32> =
            ShardedNetwork::new(1, Topology::uniform(SimDuration::ZERO), plan);
        assert_eq!(net.shards(), 1);
        assert_eq!(net.lookahead(), SimDuration::ZERO);
    }

    #[test]
    fn reserved_and_late_inserted_nodes_work_across_shards() {
        let plan = ShardPlan::from_assignments(vec![0, 1, 1], 2);
        let mut net = ShardedNetwork::new(5, Topology::uniform(SimDuration::from_micros(10)), plan);
        let a = net.add_node(Echo {
            peer: None,
            cap: 0,
            seen: vec![],
        });
        let reserved = net.reserve_node(); // slot 1 on shard 1

        struct To {
            target: NodeId,
        }
        impl Node<u32> for To {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(self.target, 5);
            }
            fn on_message(&mut self, _m: u32, _f: NodeId, _c: &mut Context<'_, u32>) {}
        }
        net.add_node(To { target: reserved }); // slot 2 on shard 1
        net.run_until(RunUntil::Drained);
        let stats = net.stats();
        assert_eq!(stats.dropped_vacant, 1, "reserved slot dropped the send");

        net.insert_node(
            reserved,
            Echo {
                peer: None,
                cap: 0,
                seen: vec![],
            },
        );
        // A control on shard 0 sends cross-shard to the just-inserted node.
        net.control::<Echo, _>(a, |_echo, ctx| ctx.send(reserved, 9))
            .unwrap();
        net.run_until(RunUntil::Drained);
        let echo = net.take_node::<Echo>(reserved).unwrap();
        assert_eq!(echo.seen, vec![9]);
    }

    #[test]
    fn exec_mode_defaults_and_thread_counts() {
        assert_eq!(ExecMode::default(), ExecMode::Batched);
        assert_eq!(ExecMode::SerialStep.threads(), 1);
        assert_eq!(ExecMode::Batched.threads(), 1);
        assert_eq!(ExecMode::Sharded { threads: 4 }.threads(), 4);
        assert_eq!(ExecMode::Sharded { threads: 0 }.threads(), 1);
    }

    #[test]
    fn shard_plan_accessors() {
        let plan = ShardPlan::from_assignments(vec![0, 1, 0], 2);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.slots(), 3);
        assert_eq!(plan.shard_of(NodeId(1)), 1);
        assert_eq!(plan.shard_of(NodeId(99)), 0);
        let single = ShardPlan::single(4);
        assert_eq!(single.shards(), 1);
        assert_eq!(single.slots(), 4);
    }

    #[test]
    #[should_panic(expected = "shard assignment out of range")]
    fn shard_plan_rejects_out_of_range_assignments() {
        let _ = ShardPlan::from_assignments(vec![0, 2], 2);
    }
}
