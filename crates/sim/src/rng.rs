//! Seeded, fork-able randomness.
//!
//! Every experiment takes a single `u64` seed; components that need
//! independent random streams obtain them by [`SimRng::fork`]ing with a
//! distinct label, so that adding randomness to one component does not
//! perturb the stream seen by another (a common source of irreproducibility
//! in simulation studies).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A deterministic random number generator with labelled sub-streams.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for the sub-stream named `label`.
    ///
    /// Forking is a pure function of `(seed, label)`: the returned generator
    /// does not share state with `self` and does not consume numbers from it.
    pub fn fork(&self, label: u64) -> SimRng {
        // SplitMix64-style mixing of the seed and the label.
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(label.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Derives an independent generator from a string label (hashed
    /// deterministically).
    pub fn fork_named(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.fork(h)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "independent seeds should rarely collide");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let root = SimRng::new(42);
        let mut f1 = root.fork(1);
        let mut f1_again = root.fork(1);
        let mut f2 = root.fork(2);
        let s1: Vec<u64> = (0..16).map(|_| f1.next_u64()).collect();
        let s1_again: Vec<u64> = (0..16).map(|_| f1_again.next_u64()).collect();
        let s2: Vec<u64> = (0..16).map(|_| f2.next_u64()).collect();
        assert_eq!(s1, s1_again);
        assert_ne!(s1, s2);
    }

    #[test]
    fn fork_does_not_consume_parent_state() {
        let mut a = SimRng::new(99);
        let before: u64 = a.gen();
        let mut b = SimRng::new(99);
        let _child = b.fork(5);
        let after: u64 = b.gen();
        assert_eq!(before, after);
    }

    #[test]
    fn fork_named_matches_itself() {
        let root = SimRng::new(1);
        let mut x = root.fork_named("servers");
        let mut y = root.fork_named("servers");
        let mut z = root.fork_named("clients");
        assert_eq!(x.next_u64(), y.next_u64());
        let _ = z.next_u64();
    }

    #[test]
    fn seed_accessor_returns_original() {
        assert_eq!(SimRng::new(123).seed(), 123);
    }

    #[test]
    fn fill_bytes_works() {
        let mut rng = SimRng::new(3);
        let mut buf = [0u8; 32];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        rng.try_fill_bytes(&mut buf).unwrap();
    }
}
