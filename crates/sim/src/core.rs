//! The reusable simulation core: clock + event queue + node registry +
//! statistics, drivable one event at a time.
//!
//! [`SimCore`] owns the dispatch logic once; the serial loop
//! ([`crate::Network`]), the batched loop and the sharded worker threads
//! ([`crate::ShardedNetwork`]) are all thin drivers over [`SimCore::step`] /
//! [`SimCore::step_batch`] / [`SimCore::peek_time`] instead of three copies
//! of the dispatch `match`.

use std::fmt;
use std::sync::Arc;

use crate::event::{EventPayload, EventQueue, ScheduledEvent};
use crate::faults::{DropCause, FaultConfig, FaultState};
use crate::link::Topology;
use crate::node::{Context, Node, NodeId, ShardRouter};
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::trace::{TraceEntry, TraceKind, TraceLog};

/// Counters describing a finished (or paused) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Events popped from the queue and dispatched.
    pub events_processed: u64,
    /// Messages delivered to nodes.
    pub messages_delivered: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Total messages dropped for any reason; always equals
    /// `dropped_unroutable + dropped_vacant + dropped_injected +
    /// dropped_queue + dropped_link_down`.
    pub messages_dropped: u64,
    /// Messages addressed to a node id outside the node table (dropped).
    pub dropped_unroutable: u64,
    /// Messages addressed to a valid slot that holds no node — reserved but
    /// never filled, or removed via `take_node` (dropped).
    pub dropped_vacant: u64,
    /// Messages consumed by the fault layer's injected faults: a
    /// probabilistic loss rule or a deterministic one-shot drop.
    pub dropped_injected: u64,
    /// Messages tail-dropped by a full per-link bounded queue.
    pub dropped_queue: u64,
    /// Messages lost to a link down window.
    pub dropped_link_down: u64,
    /// Simulated time of the last processed event.
    pub last_event_time: SimTime,
}

impl SimStats {
    /// Folds another core's counters into this one (used to merge per-shard
    /// statistics): counts add, `last_event_time` takes the maximum.
    pub fn absorb(&mut self, other: SimStats) {
        self.events_processed += other.events_processed;
        self.messages_delivered += other.messages_delivered;
        self.timers_fired += other.timers_fired;
        self.messages_dropped += other.messages_dropped;
        self.dropped_unroutable += other.dropped_unroutable;
        self.dropped_vacant += other.dropped_vacant;
        self.dropped_injected += other.dropped_injected;
        self.dropped_queue += other.dropped_queue;
        self.dropped_link_down += other.dropped_link_down;
        self.last_event_time = self.last_event_time.max(other.last_event_time);
    }
}

/// What a single [`SimCore::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One event was dispatched; the clock now reads `time`.
    Processed {
        /// Delivery time of the dispatched event.
        time: SimTime,
    },
    /// The event queue is empty; nothing was done.
    Idle,
}

/// Boxed callback that renders a message for the trace log.
type DescribeFn<M> = Box<dyn Fn(&M) -> String + Send>;

/// Per-slot engine state that must survive node removal/re-insertion.
///
/// The scheduling counter in particular may never reset: event keys are
/// `(time, src, seq)` and a reset would let a re-inserted node reuse a key,
/// breaking the global-uniqueness property the deterministic ordering
/// depends on.
#[derive(Debug)]
struct SlotMeta {
    rng: SimRng,
    send_seq: u64,
}

/// A node held out of its registry slot while (a batch of) its events are
/// dispatched.
type HeldNode<M> = Option<(NodeId, Box<dyn AnyNode<M>>)>;

/// The reusable discrete-event simulation core.
///
/// `M` is the message type exchanged by nodes (for SRLB experiments this is
/// the packet/message enum defined in `srlb-core`).
pub struct SimCore<M> {
    nodes: Vec<Option<Box<dyn AnyNode<M>>>>,
    meta: Vec<SlotMeta>,
    queue: EventQueue<M>,
    topology: Topology,
    /// Root generator that node streams are forked from; a pure function of
    /// the run seed, so every core built from the same seed derives the same
    /// per-node streams.
    rng_root: SimRng,
    now: SimTime,
    started: bool,
    stop_requested: bool,
    stats: SimStats,
    trace: TraceLog,
    trace_describe: Option<DescribeFn<M>>,
    router: Option<ShardRouter<M>>,
    /// Run seed, kept so a fault layer installed later can salt its
    /// interleaving-independent loss coin.
    seed: u64,
    /// Fault-injection state; `None` (the default) costs one branch per
    /// delivery and changes nothing else.
    faults: Option<Box<FaultState>>,
}

impl<M> fmt::Debug for SimCore<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimCore")
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .field("now", &self.now)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<M> SimCore<M> {
    /// Creates an empty core with the given seed and topology.
    pub fn new(seed: u64, topology: Topology) -> Self {
        SimCore {
            nodes: Vec::new(),
            meta: Vec::new(),
            queue: EventQueue::new(),
            topology,
            rng_root: SimRng::new(seed).fork_named("node"),
            now: SimTime::ZERO,
            started: false,
            stop_requested: false,
            stats: SimStats::default(),
            trace: TraceLog::disabled(),
            trace_describe: None,
            router: None,
            seed,
            faults: None,
        }
    }

    /// Installs a fault-injection layer compiled from `config` (see
    /// [`crate::faults`]).  An empty config removes the layer.  Must be
    /// called before any node is started so every execution mode sees the
    /// same fault state from the first delivery on.
    pub fn set_faults(&mut self, config: &FaultConfig) {
        debug_assert!(!self.started, "faults must be installed before start");
        self.faults = if config.is_empty() {
            None
        } else {
            Some(Box::new(FaultState::new(config, self.seed)))
        };
    }

    /// Installs the cross-shard router (sharded execution only).  Must be
    /// called before any node is started.
    pub(crate) fn set_router(&mut self, shard_of: Arc<[u32]>, my_shard: u32, shards: usize) {
        debug_assert!(!self.started, "router must be installed before start");
        self.router = Some(ShardRouter::new(shard_of, my_shard, shards));
    }

    /// Appends a fresh slot (node table + per-slot engine state) and returns
    /// its id.
    fn push_slot(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(None);
        self.meta.push(SlotMeta {
            rng: self.rng_root.fork(id.0 as u64),
            send_seq: 0,
        });
        id
    }

    /// Adds a node and returns its id.
    ///
    /// Nodes added before the core starts receive their `on_start` callback
    /// when the first run begins; a node added to an already-started core
    /// (e.g. a backend brought up mid-experiment by a scenario schedule) is
    /// started immediately at the current simulated time.
    pub fn add_node(&mut self, node: impl Node<M> + Send + 'static) -> NodeId {
        let id = self.push_slot();
        self.nodes[id.index()] = Some(Box::new(node));
        if self.started {
            self.start_node(id);
        }
        id
    }

    /// Reserves an empty node slot and returns its id, so a scenario can fix
    /// the id ↔ address layout of backends that only join the cluster later
    /// (via [`SimCore::insert_node`]).  Events addressed to a reserved but
    /// unfilled slot are dropped and counted in [`SimStats::dropped_vacant`].
    pub fn reserve_node(&mut self) -> NodeId {
        self.push_slot()
    }

    /// Fills an empty node slot (from [`SimCore::reserve_node`] or a
    /// [`SimCore::take_node`] removal) with `node`.  On an already-started
    /// core the node's `on_start` runs immediately at the current simulated
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the slot is occupied.
    pub fn insert_node(&mut self, id: NodeId, node: impl Node<M> + Send + 'static) {
        let slot = self
            .nodes
            .get_mut(id.index())
            // srlb-lint: allow(panic-hygiene) -- documented panic contract of insert_node: an out-of-range id is caller error
            .unwrap_or_else(|| panic!("node slot {id} out of range"));
        assert!(slot.is_none(), "node slot {id} is already occupied");
        *slot = Some(Box::new(node));
        if self.started {
            self.start_node(id);
        }
    }

    /// Runs `on_start` on the node in slot `id` (which must be occupied).
    fn start_node(&mut self, id: NodeId) {
        let mut node = self.nodes[id.index()].take().expect("node present"); // srlb-lint: allow(panic-hygiene) -- private helper; both callers check occupancy before calling
        let meta = &mut self.meta[id.index()];
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            from: None,
            queue: &mut self.queue,
            send_seq: &mut meta.send_seq,
            router: self.router.as_mut(),
            topology: &self.topology,
            rng: &mut meta.rng,
            stop_requested: &mut self.stop_requested,
        };
        node.on_start(&mut ctx);
        self.nodes[id.index()] = Some(node);
    }

    /// Runs `on_start` on every node (idempotent; only the first call does
    /// anything).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for index in 0..self.nodes.len() {
            if self.nodes[index].is_some() {
                self.start_node(NodeId(index));
            }
        }
    }

    /// Enables tracing of message deliveries, using `describe` to render each
    /// message for the trace log.
    pub fn enable_trace(&mut self, describe: impl Fn(&M) -> String + Send + 'static) {
        self.trace = TraceLog::new();
        self.trace_describe = Some(Box::new(describe));
    }

    /// The trace log (empty unless [`SimCore::enable_trace`] was called).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock to `t` without processing events (never moves it
    /// backwards).  The sharded driver uses this at window barriers so that
    /// control callbacks observe the same `now` on every shard as they would
    /// on the serial engine.
    pub fn align_clock(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Number of node slots (occupied or not).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The topology used for link latencies.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Whether a node requested a stop that has not been cleared yet.
    pub fn stop_requested(&self) -> bool {
        self.stop_requested
    }

    /// Clears a pending stop request (drivers call this when a new run
    /// segment begins).
    pub fn clear_stop_request(&mut self) {
        self.stop_requested = false;
    }

    /// Delivery time of the next pending event, if any — the driver's view
    /// for deciding whether stepping is worthwhile under a time bound.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Total number of events ever scheduled on this core.
    pub fn scheduled_total(&self) -> u64 {
        self.queue.scheduled_total()
    }

    /// Ingests an event that another shard scheduled for a node owned by
    /// this core.
    pub(crate) fn ingest(&mut self, event: ScheduledEvent<M>) {
        self.queue.admit(event);
    }

    /// Drains this core's cross-shard outboxes (empty when no router is
    /// installed).
    pub(crate) fn drain_outboxes(&mut self) -> Vec<(usize, Vec<ScheduledEvent<M>>)> {
        self.router
            .as_mut()
            .map(ShardRouter::drain_outboxes)
            .unwrap_or_default()
    }

    /// Whether any cross-shard outbox holds an undelivered event.
    pub(crate) fn outbound_pending(&self) -> bool {
        self.router.as_ref().is_some_and(ShardRouter::has_outbound)
    }

    /// Visits every per-destination-shard outbox (including empty ones, so
    /// callers can reset per-destination state) with `(dst, &mut outbox)`.
    /// The pool swaps non-empty outboxes against its mailbox buffers in
    /// place of the allocating [`SimCore::drain_outboxes`].
    pub(crate) fn publish_outboxes(
        &mut self,
        mut f: impl FnMut(usize, &mut Vec<ScheduledEvent<M>>),
    ) {
        if let Some(router) = self.router.as_mut() {
            for (dst, outbox) in router.outbound_mut().iter_mut().enumerate() {
                f(dst, outbox);
            }
        }
    }

    /// One sharded compute phase: processes local events strictly below
    /// `below` (and at or below `until`), at most `budget` of them.
    ///
    /// `below = None` means the coordinator proved every other shard idle —
    /// run freely, but stop after the time-group that emits the first
    /// cross-shard send: a reply routed back through another shard could
    /// otherwise arrive in this core's processed past.
    pub(crate) fn run_window(
        &mut self,
        below: Option<SimTime>,
        until: Option<SimTime>,
        budget: u64,
    ) -> u64 {
        match below {
            Some(h) => {
                // `below` is exclusive; `run_segment`'s bound is inclusive.
                let Some(h) = h.as_nanos().checked_sub(1) else {
                    return 0;
                };
                let mut bound = SimTime::from_nanos(h);
                if let Some(u) = until {
                    bound = bound.min(u);
                }
                self.run_segment(Some(bound), budget)
            }
            None => {
                let mut processed = 0u64;
                while processed < budget && !self.stop_requested {
                    match self.queue.peek_time() {
                        Some(t) if until.is_none_or(|u| t <= u) => {}
                        _ => break,
                    }
                    processed += self.step_batch(budget - processed);
                    if self.outbound_pending() {
                        break;
                    }
                }
                processed
            }
        }
    }

    /// Puts a held node back into its registry slot.
    fn put_back(&mut self, held: HeldNode<M>) {
        if let Some((id, node)) = held {
            self.nodes[id.index()] = Some(node);
        }
    }

    /// Dispatches one already-popped event.  `held` carries the most
    /// recently used node between consecutive dispatches so a burst of
    /// events for one target pays the registry take/put only once.
    fn dispatch(&mut self, event: ScheduledEvent<M>, held: &mut HeldNode<M>) {
        self.now = event.key.time;
        self.stats.events_processed += 1;
        self.stats.last_event_time = self.now;

        // Fault layer: only messages traverse links (timers are node-local),
        // and the verdict is taken before target resolution so a doomed
        // message costs no registry traffic.  `event.key.src` is the sender.
        if matches!(event.payload, EventPayload::Message { .. }) {
            if let Some(faults) = self.faults.as_mut() {
                if let Some(cause) = faults.judge(event.key, event.target, self.now) {
                    self.stats.messages_dropped += 1;
                    match cause {
                        DropCause::Injected => self.stats.dropped_injected += 1,
                        DropCause::Queue => self.stats.dropped_queue += 1,
                        DropCause::LinkDown => self.stats.dropped_link_down += 1,
                    }
                    return;
                }
            }
        }

        let target = event.target;
        if held.as_ref().is_none_or(|(id, _)| *id != target) {
            if let Some((id, node)) = held.take() {
                self.nodes[id.index()] = Some(node);
            }
            let Some(slot) = self.nodes.get_mut(target.index()) else {
                self.stats.messages_dropped += 1;
                self.stats.dropped_unroutable += 1;
                return;
            };
            let Some(node) = slot.take() else {
                self.stats.messages_dropped += 1;
                self.stats.dropped_vacant += 1;
                return;
            };
            *held = Some((target, node));
        }
        let (_, node) = held.as_mut().expect("node held for dispatch"); // srlb-lint: allow(panic-hygiene) -- the block above either populated `held` or returned early
        let meta = &mut self.meta[target.index()];

        match event.payload {
            EventPayload::Message { from, msg } => {
                self.stats.messages_delivered += 1;
                if let Some(describe) = &self.trace_describe {
                    self.trace.record(TraceEntry {
                        time: self.now,
                        kind: TraceKind::MessageDelivered,
                        target,
                        from: Some(from),
                        description: describe(&msg),
                    });
                }
                let mut ctx = Context {
                    now: self.now,
                    self_id: target,
                    from: Some(from),
                    queue: &mut self.queue,
                    send_seq: &mut meta.send_seq,
                    router: self.router.as_mut(),
                    topology: &self.topology,
                    rng: &mut meta.rng,
                    stop_requested: &mut self.stop_requested,
                };
                node.on_message(msg, from, &mut ctx);
            }
            EventPayload::Timer { token } => {
                self.stats.timers_fired += 1;
                if self.trace.is_enabled() {
                    self.trace.record(TraceEntry {
                        time: self.now,
                        kind: TraceKind::TimerFired,
                        target,
                        from: None,
                        description: format!("timer {}", token.0),
                    });
                }
                let mut ctx = Context {
                    now: self.now,
                    self_id: target,
                    from: None,
                    queue: &mut self.queue,
                    send_seq: &mut meta.send_seq,
                    router: self.router.as_mut(),
                    topology: &self.topology,
                    rng: &mut meta.rng,
                    stop_requested: &mut self.stop_requested,
                };
                node.on_timer(token, &mut ctx);
            }
        }
    }

    /// Pops and dispatches the single next event.
    ///
    /// This is the reference entry point: every other execution mode is
    /// defined as "produces exactly the per-event effects of repeated
    /// `step()` calls in key order".
    pub fn step(&mut self) -> StepOutcome {
        let Some(event) = self.queue.pop() else {
            return StepOutcome::Idle;
        };
        let time = event.key.time;
        let mut held = None;
        self.dispatch(event, &mut held);
        self.put_back(held);
        StepOutcome::Processed { time }
    }

    /// [`SimCore::step`] with the time bound fused into the pop: dispatches
    /// the next event only if its time is at or below `until`, in one queue
    /// operation instead of a separate peek + bounds check + pop.  `None`
    /// bounds nothing (identical to `step`).
    pub fn step_within(&mut self, until: Option<SimTime>) -> StepOutcome {
        let Some(event) = self.queue.pop_within(until) else {
            return StepOutcome::Idle;
        };
        let time = event.key.time;
        let mut held = None;
        self.dispatch(event, &mut held);
        self.put_back(held);
        StepOutcome::Processed { time }
    }

    /// Dispatches every event sharing the next pending timestamp (at most
    /// `budget` of them), amortising registry take/put across consecutive
    /// events for the same node.  Returns the number of events processed.
    ///
    /// Equivalence with the serial loop is preserved even when a callback
    /// schedules *new* events at the current timestamp: events are popped
    /// one at a time, and the heap always yields the globally smallest key,
    /// so dispatch order is exactly ascending key order.  If a stop request
    /// or the budget interrupts the batch, the remaining ties simply stay
    /// queued with their keys intact.
    pub fn step_batch(&mut self, budget: u64) -> u64 {
        if budget == 0 || self.stop_requested {
            return 0;
        }
        let Some(batch_time) = self.queue.peek_time() else {
            return 0;
        };
        let mut held = None;
        let processed = self.drain_time_group(batch_time, budget, &mut held);
        self.put_back(held);
        processed
    }

    /// Dispatches events straight off the heap while the head's timestamp
    /// equals `batch_time` (at most `budget` of them).  The heap always
    /// yields the globally smallest key, so a callback scheduling *new*
    /// events at the current timestamp has them interleaved in exact key
    /// order automatically; a stop request or an exhausted budget simply
    /// leaves the remaining ties in the queue.
    fn drain_time_group(
        &mut self,
        batch_time: SimTime,
        budget: u64,
        held: &mut HeldNode<M>,
    ) -> u64 {
        let mut processed = 0u64;
        loop {
            let event = self.queue.pop().expect("peeked event exists"); // srlb-lint: allow(panic-hygiene) -- callers enter only after peek_time returned Some, and the loop re-peeks before iterating
            self.dispatch(event, held);
            processed += 1;
            if self.stop_requested || processed >= budget {
                break;
            }
            match self.queue.peek_time() {
                Some(time) if time == batch_time => {}
                _ => break,
            }
        }
        processed
    }

    /// Runs events in key order until the queue drains, an event at a time
    /// later than `until` surfaces, `budget` events have been dispatched, or
    /// a callback requests a stop — the batched engine loop.  Exactly
    /// equivalent to driving [`SimCore::step`] under the same bounds, but
    /// with one fused queue peek per event instead of separate
    /// peek/pop/policy passes, and the target node staying out of the
    /// registry across consecutive events that hit it.  Returns the number
    /// of events processed.
    pub fn run_segment(&mut self, until: Option<SimTime>, budget: u64) -> u64 {
        let mut processed = 0u64;
        let mut held: HeldNode<M> = None;
        while processed < budget && !self.stop_requested {
            let Some(event) = self.queue.pop_within(until) else {
                break;
            };
            self.dispatch(event, &mut held);
            processed += 1;
        }
        self.put_back(held);
        processed
    }

    /// Immutable access to a node as a `dyn Node<M>`.
    ///
    /// Returns `None` if the id is out of range.
    pub fn with_node<R>(&self, id: NodeId, f: impl FnOnce(&dyn Node<M>) -> R) -> Option<R> {
        self.nodes
            .get(id.index())
            .and_then(|slot| slot.as_ref())
            .map(|node| f(node.as_node()))
    }

    /// Immutable, downcast access to a node of concrete type `T`.
    ///
    /// Returns `None` if the id is out of range or the node has a different
    /// type.  Useful for peeking at node state (e.g. a server's scoreboard)
    /// while the simulation is paused between run segments.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes
            .get(id.index())
            .and_then(|slot| slot.as_ref())
            .and_then(|node| node.as_any().downcast_ref::<T>())
    }

    /// Mutable, downcast access to a node of concrete type `T`.
    ///
    /// Returns `None` if the id is out of range or the node has a different
    /// type.  Intended for applying out-of-band state changes between run
    /// segments; prefer [`SimCore::control`] when the change needs to
    /// schedule timers or send messages.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes
            .get_mut(id.index())
            .and_then(|slot| slot.as_mut())
            .and_then(|node| node.as_any_mut().downcast_mut::<T>())
    }

    /// Delivers a **control event** to the node in slot `id`: runs `f` with
    /// mutable access to the node (downcast to `T`) and a [`Context`] at the
    /// current simulated time, exactly as if the engine were delivering a
    /// callback.  This is how a scenario schedule applies out-of-band
    /// changes — failing a load balancer, resizing a server — that may need
    /// to reschedule timers or emit messages.
    ///
    /// Returns `None` (without running `f`) if the id is out of range, the
    /// slot is empty, or the node is not of type `T`.
    pub fn control<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Context<'_, M>) -> R,
    ) -> Option<R> {
        let slot = self.nodes.get_mut(id.index())?;
        if !slot.as_ref()?.as_any().is::<T>() {
            return None;
        }
        let mut node = slot.take()?;
        let meta = &mut self.meta[id.index()];
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            from: None,
            queue: &mut self.queue,
            send_seq: &mut meta.send_seq,
            router: self.router.as_mut(),
            topology: &self.topology,
            rng: &mut meta.rng,
            stop_requested: &mut self.stop_requested,
        };
        let result = node
            .as_any_mut()
            .downcast_mut::<T>()
            .map(|typed| f(typed, &mut ctx));
        self.nodes[id.index()] = Some(node);
        result
    }

    /// Removes the node with id `id` from the core and returns it, downcast
    /// to `T`.  Returns `None` if the id is out of range, the node was
    /// already taken, or it has a different concrete type.
    ///
    /// Use this after a run to extract results from several nodes (the
    /// engine will simply drop any further events addressed to the removed
    /// node, counting them in [`SimStats::dropped_vacant`]).
    pub fn take_node<T: 'static>(&mut self, id: NodeId) -> Option<T>
    where
        M: 'static,
    {
        let slot = self.nodes.get_mut(id.index())?;
        if !slot.as_ref()?.as_any().is::<T>() {
            return None;
        }
        let node = slot.take()?;
        node.into_any().downcast::<T>().ok().map(|boxed| *boxed)
    }
}

/// Object-safe combination of [`Node`], `Any` and `Send`, so concrete node
/// types can be recovered after a run (used by the experiment driver to
/// extract collected measurements) and node tables can move across worker
/// threads.
pub(crate) trait AnyNode<M>: Node<M> + Send {
    fn as_node(&self) -> &dyn Node<M>;
    fn as_any(&self) -> &dyn std::any::Any;
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

impl<M, T: Node<M> + Send + 'static> AnyNode<M> for T {
    fn as_node(&self) -> &dyn Node<M> {
        self
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TimerToken;
    use crate::time::SimDuration;

    struct Echo {
        peer: Option<NodeId>,
        cap: u32,
        seen: Vec<u32>,
    }

    impl Node<u32> for Echo {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, 0);
            }
        }
        fn on_message(&mut self, msg: u32, from: NodeId, ctx: &mut Context<'_, u32>) {
            self.seen.push(msg);
            if msg < self.cap {
                ctx.send(from, msg + 1);
            }
        }
    }

    fn drained(core: &mut SimCore<u32>) -> u64 {
        core.start();
        let mut n = 0;
        while let StepOutcome::Processed { .. } = core.step() {
            n += 1;
        }
        n
    }

    #[test]
    fn step_processes_one_event_and_reports_time() {
        let mut core = SimCore::new(1, Topology::uniform(SimDuration::from_micros(100)));
        let a = core.add_node(Echo {
            peer: None,
            cap: 2,
            seen: vec![],
        });
        let _b = core.add_node(Echo {
            peer: Some(a),
            cap: 2,
            seen: vec![],
        });
        core.start();
        assert_eq!(core.peek_time(), Some(SimTime::from_nanos(100_000)));
        let outcome = core.step();
        assert_eq!(
            outcome,
            StepOutcome::Processed {
                time: SimTime::from_nanos(100_000)
            }
        );
        assert_eq!(core.stats().events_processed, 1);
    }

    #[test]
    fn idle_step_on_empty_queue() {
        let mut core: SimCore<u32> = SimCore::new(1, Topology::datacenter());
        core.start();
        assert_eq!(core.step(), StepOutcome::Idle);
        assert_eq!(core.stats().events_processed, 0);
    }

    #[test]
    fn drop_counters_distinguish_unroutable_from_vacant() {
        struct Sprayer {
            vacant: NodeId,
        }
        impl Node<u32> for Sprayer {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(NodeId(99), 1); // no such slot
                ctx.send(self.vacant, 2); // reserved, never filled
                ctx.send(NodeId(99), 3); // no such slot, again
            }
            fn on_message(&mut self, _m: u32, _f: NodeId, _c: &mut Context<'_, u32>) {}
        }
        let mut core = SimCore::new(1, Topology::datacenter());
        let vacant = core.reserve_node();
        core.add_node(Sprayer { vacant });
        drained(&mut core);
        let stats = core.stats();
        assert_eq!(stats.dropped_unroutable, 2);
        assert_eq!(stats.dropped_vacant, 1);
        assert_eq!(
            stats.messages_dropped,
            stats.dropped_unroutable + stats.dropped_vacant,
            "the legacy total stays the sum of the split counters"
        );
        assert_eq!(stats.messages_delivered, 0);
    }

    #[test]
    fn step_batch_matches_stepwise_execution() {
        // A fan-out node whose messages all land at the same timestamp; the
        // batched loop must deliver them in the same order as step().
        struct Fan {
            peers: Vec<NodeId>,
        }
        impl Node<u32> for Fan {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                for (i, &p) in self.peers.iter().enumerate() {
                    ctx.send(p, i as u32);
                }
            }
            fn on_message(&mut self, _m: u32, _f: NodeId, _c: &mut Context<'_, u32>) {}
        }
        fn build(batched: bool) -> (SimStats, Vec<Vec<u32>>) {
            let mut core = SimCore::new(9, Topology::uniform(SimDuration::from_micros(10)));
            let sinks: Vec<NodeId> = (0..4)
                .map(|_| {
                    core.add_node(Echo {
                        peer: None,
                        cap: 0,
                        seen: vec![],
                    })
                })
                .collect();
            core.add_node(Fan {
                peers: sinks.clone(),
            });
            core.start();
            if batched {
                while core.step_batch(u64::MAX) > 0 {}
            } else {
                while let StepOutcome::Processed { .. } = core.step() {}
            }
            let seen = sinks
                .iter()
                .map(|&s| core.take_node::<Echo>(s).unwrap().seen)
                .collect();
            (core.stats(), seen)
        }
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn step_batch_interleaves_same_time_events_in_key_order() {
        // Node 0's timer callback schedules another timer at the *same*
        // timestamp (zero delay).  Its key (src 0) sorts before the buffered
        // tie from node 1, so the batched loop must interleave it first —
        // exactly like the serial loop would.
        struct ZeroDelay {
            fired: Vec<u64>,
            chain: bool,
        }
        impl Node<u32> for ZeroDelay {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.schedule_timer(SimDuration::from_micros(5), TimerToken(1));
            }
            fn on_message(&mut self, _m: u32, _f: NodeId, _c: &mut Context<'_, u32>) {}
            fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, u32>) {
                self.fired.push(token.0);
                if self.chain && token == TimerToken(1) {
                    ctx.schedule_timer(SimDuration::ZERO, TimerToken(2));
                }
            }
        }
        fn order(batched: bool) -> Vec<(usize, u64)> {
            let mut core = SimCore::new(3, Topology::datacenter());
            let a = core.add_node(ZeroDelay {
                fired: vec![],
                chain: true,
            });
            let b = core.add_node(ZeroDelay {
                fired: vec![],
                chain: false,
            });
            core.start();
            if batched {
                while core.step_batch(u64::MAX) > 0 {}
            } else {
                while let StepOutcome::Processed { .. } = core.step() {}
            }
            let mut log = vec![];
            for (idx, id) in [a, b].into_iter().enumerate() {
                for t in core.take_node::<ZeroDelay>(id).unwrap().fired {
                    log.push((idx, t));
                }
            }
            log
        }
        assert_eq!(order(true), order(false));
    }

    #[test]
    fn step_batch_respects_budget_and_keeps_ties_queued() {
        struct Fan {
            peers: Vec<NodeId>,
        }
        impl Node<u32> for Fan {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                for &p in &self.peers {
                    ctx.send(p, 1);
                }
            }
            fn on_message(&mut self, _m: u32, _f: NodeId, _c: &mut Context<'_, u32>) {}
        }
        let mut core = SimCore::new(9, Topology::uniform(SimDuration::from_micros(10)));
        let sinks: Vec<NodeId> = (0..6)
            .map(|_| {
                core.add_node(Echo {
                    peer: None,
                    cap: 0,
                    seen: vec![],
                })
            })
            .collect();
        core.add_node(Fan {
            peers: sinks.clone(),
        });
        core.start();
        assert_eq!(core.step_batch(2), 2);
        assert_eq!(core.pending_events(), 4, "unprocessed ties stay queued");
        assert_eq!(core.step_batch(u64::MAX), 4);
        assert_eq!(core.stats().messages_delivered, 6);
    }

    #[test]
    fn align_clock_never_moves_backwards() {
        let mut core: SimCore<u32> = SimCore::new(1, Topology::datacenter());
        core.align_clock(SimTime::from_nanos(50));
        assert_eq!(core.now(), SimTime::from_nanos(50));
        core.align_clock(SimTime::from_nanos(10));
        assert_eq!(core.now(), SimTime::from_nanos(50));
    }

    #[test]
    fn stats_absorb_sums_counts_and_maxes_time() {
        let mut a = SimStats {
            events_processed: 2,
            messages_delivered: 1,
            timers_fired: 1,
            messages_dropped: 2,
            dropped_unroutable: 1,
            dropped_vacant: 0,
            dropped_injected: 1,
            dropped_queue: 0,
            dropped_link_down: 0,
            last_event_time: SimTime::from_nanos(10),
        };
        let b = SimStats {
            events_processed: 3,
            messages_delivered: 2,
            timers_fired: 0,
            messages_dropped: 5,
            dropped_unroutable: 0,
            dropped_vacant: 2,
            dropped_injected: 1,
            dropped_queue: 1,
            dropped_link_down: 1,
            last_event_time: SimTime::from_nanos(7),
        };
        a.absorb(b);
        assert_eq!(a.events_processed, 5);
        assert_eq!(a.messages_dropped, 7);
        assert_eq!(a.dropped_unroutable, 1);
        assert_eq!(a.dropped_vacant, 2);
        assert_eq!(a.dropped_injected, 2);
        assert_eq!(a.dropped_queue, 1);
        assert_eq!(a.dropped_link_down, 1);
        assert_eq!(a.last_event_time, SimTime::from_nanos(10));
    }

    #[test]
    fn fault_layer_drops_messages_but_never_timers() {
        use crate::faults::{FaultConfig, LinkMatch, LossRule};

        struct Talker {
            peer: NodeId,
            timer_fired: bool,
        }
        impl Node<u32> for Talker {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(self.peer, 7);
                ctx.schedule_timer(SimDuration::from_micros(5), TimerToken(1));
            }
            fn on_message(&mut self, _m: u32, _f: NodeId, _c: &mut Context<'_, u32>) {}
            fn on_timer(&mut self, _t: TimerToken, _c: &mut Context<'_, u32>) {
                self.timer_fired = true;
            }
        }
        let mut core = SimCore::new(5, Topology::datacenter());
        let config = FaultConfig {
            loss: vec![LossRule {
                link: LinkMatch::default(),
                probability: 1.0,
            }],
            ..FaultConfig::default()
        };
        core.set_faults(&config);
        let sink = core.add_node(Echo {
            peer: None,
            cap: 0,
            seen: vec![],
        });
        let talker = core.add_node(Talker {
            peer: sink,
            timer_fired: false,
        });
        drained(&mut core);
        let stats = core.stats();
        assert_eq!(stats.messages_delivered, 0);
        assert_eq!(stats.dropped_injected, 1);
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.timers_fired, 1, "timers are exempt from faults");
        assert!(core.take_node::<Talker>(talker).unwrap().timer_fired);
    }

    #[test]
    fn empty_fault_config_clears_the_layer() {
        let mut core: SimCore<u32> = SimCore::new(5, Topology::datacenter());
        core.set_faults(&crate::faults::FaultConfig::default());
        assert!(core.faults.is_none());
    }
}
