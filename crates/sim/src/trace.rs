//! Optional event tracing.
//!
//! A [`TraceLog`] records message deliveries and timer firings; it is used by
//! the Service Hunting walkthrough example (the reproduction of the paper's
//! Figure 1) and by integration tests that assert on packet paths.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::node::NodeId;
use crate::time::SimTime;

/// The kind of traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A message was delivered from `from` to the recorded node.
    MessageDelivered,
    /// A timer fired at the recorded node.
    TimerFired,
}

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Simulated time of the event.
    pub time: SimTime,
    /// Kind of event.
    pub kind: TraceKind,
    /// Node the event was delivered to.
    pub target: NodeId,
    /// Sender, for message deliveries.
    pub from: Option<NodeId>,
    /// Human-readable description (e.g. the packet summary).
    pub description: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TraceKind::MessageDelivered => write!(
                f,
                "{} {} -> {}: {}",
                self.time,
                self.from.map(|n| n.to_string()).unwrap_or_default(),
                self.target,
                self.description
            ),
            TraceKind::TimerFired => {
                write!(
                    f,
                    "{} timer @ {}: {}",
                    self.time, self.target, self.description
                )
            }
        }
    }
}

/// An in-memory log of traced events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceLog {
    entries: Vec<TraceEntry>,
    enabled: bool,
}

impl TraceLog {
    /// Creates an enabled, empty log.
    pub fn new() -> Self {
        TraceLog {
            entries: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled log (records nothing, costs nothing).
    pub fn disabled() -> Self {
        TraceLog {
            entries: Vec::new(),
            enabled: false,
        }
    }

    /// Whether the log records events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an entry if the log is enabled.
    pub fn record(&mut self, entry: TraceEntry) {
        if self.enabled {
            self.entries.push(entry);
        }
    }

    /// The recorded entries, in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterator over entries whose description contains `needle`.
    pub fn matching<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries
            .iter()
            .filter(move |e| e.description.contains(needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(desc: &str) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_nanos(1),
            kind: TraceKind::MessageDelivered,
            target: NodeId(1),
            from: Some(NodeId(0)),
            description: desc.to_string(),
        }
    }

    #[test]
    fn enabled_log_records() {
        let mut log = TraceLog::new();
        assert!(log.is_enabled());
        assert!(log.is_empty());
        log.record(entry("SYN"));
        log.record(entry("SYN-ACK"));
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries()[0].description, "SYN");
        assert_eq!(log.matching("SYN").count(), 2);
        assert_eq!(log.matching("ACK").count(), 1);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(entry("SYN"));
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn display_formats_both_kinds() {
        let delivered = entry("SYN").to_string();
        assert!(delivered.contains("node-0"));
        assert!(delivered.contains("node-1"));
        assert!(delivered.contains("SYN"));
        let timer = TraceEntry {
            time: SimTime::from_nanos(5),
            kind: TraceKind::TimerFired,
            target: NodeId(2),
            from: None,
            description: "window end".to_string(),
        };
        assert!(timer.to_string().contains("timer"));
    }
}
