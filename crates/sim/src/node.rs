//! The [`Node`] trait implemented by every simulated component, and the
//! [`Context`] handed to nodes during callbacks.

use std::fmt;
use std::sync::Arc;

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::event::{EventKey, EventPayload, EventQueue, ScheduledEvent};
use crate::link::Topology;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifier of a node inside a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Raw index of the node in the network's node table.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Opaque token a node attaches to a timer so it can recognise it when it
/// fires.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimerToken(pub u64);

/// A simulated component: a traffic source, the load balancer, a server, …
///
/// Nodes communicate exclusively by exchanging messages of type `M` through
/// the [`Context`]; the engine delivers each message after the link latency
/// configured in the [`Topology`].
///
/// Nodes must be `Send` so the sharded engine can drive disjoint node
/// partitions from worker threads; a node is only ever touched by one thread
/// at a time, so no `Sync` bound is needed.
pub trait Node<M> {
    /// Called once when the simulation starts, before any message is
    /// delivered.  The default implementation does nothing.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message sent by `from` arrives at this node.
    fn on_message(&mut self, msg: M, from: NodeId, ctx: &mut Context<'_, M>);

    /// Called when a timer scheduled by this node fires.  The default
    /// implementation does nothing.
    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, M>) {
        let _ = (token, ctx);
    }

    /// A short human-readable name used in traces; defaults to the node id.
    fn name(&self) -> String {
        String::new()
    }
}

/// Routes freshly scheduled events either into the local event queue or into
/// per-destination-shard outboxes, depending on which shard owns the target
/// node.  Outboxes are exchanged at conservative time-window boundaries by
/// the sharded driver.
pub(crate) struct ShardRouter<M> {
    shard_of: Arc<[u32]>,
    my_shard: u32,
    outbound: Vec<Vec<ScheduledEvent<M>>>,
}

impl<M> fmt::Debug for ShardRouter<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardRouter")
            .field("my_shard", &self.my_shard)
            .field("shards", &self.outbound.len())
            .finish()
    }
}

impl<M> ShardRouter<M> {
    pub(crate) fn new(shard_of: Arc<[u32]>, my_shard: u32, shards: usize) -> Self {
        ShardRouter {
            shard_of,
            my_shard,
            outbound: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    /// The destination shard if `to` is owned by a *different* shard.  Ids
    /// outside the shard plan resolve to `None` (treated as local, so the
    /// owning core drops them exactly as the serial engine would).
    fn remote_shard(&self, to: NodeId) -> Option<usize> {
        let shard = *self.shard_of.get(to.index())?;
        (shard != self.my_shard).then_some(shard as usize)
    }

    /// Whether any outbox holds an undelivered cross-shard event.
    pub(crate) fn has_outbound(&self) -> bool {
        self.outbound.iter().any(|events| !events.is_empty())
    }

    /// Direct access to the per-destination-shard outbox vectors, for the
    /// pool's swap-based (allocation-free) exchange.
    pub(crate) fn outbound_mut(&mut self) -> &mut [Vec<ScheduledEvent<M>>] {
        &mut self.outbound
    }

    /// Drains the non-empty outboxes as `(destination shard, events)` pairs.
    pub(crate) fn drain_outboxes(&mut self) -> Vec<(usize, Vec<ScheduledEvent<M>>)> {
        let mut out = Vec::new();
        for (shard, events) in self.outbound.iter_mut().enumerate() {
            if !events.is_empty() {
                out.push((shard, std::mem::take(events)));
            }
        }
        out
    }
}

/// The API available to a node while it handles a callback.
///
/// A `Context` borrows the engine's event queue and topology plus the node's
/// *private* random-number generator and scheduling counter.  Everything a
/// node schedules through it carries an [`EventKey`] derived purely from the
/// node's own history, so event ordering — and therefore the whole run — is
/// identical whether the engine executes serially, in same-timestamp
/// batches, or across worker shards.
#[derive(Debug)]
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: NodeId,
    pub(crate) from: Option<NodeId>,
    pub(crate) queue: &'a mut EventQueue<M>,
    pub(crate) send_seq: &'a mut u64,
    pub(crate) router: Option<&'a mut ShardRouter<M>>,
    pub(crate) topology: &'a Topology,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) stop_requested: &'a mut bool,
}

impl<'a, M> Context<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being called back.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The sender of the message currently being handled, if any
    /// (`None` inside `on_start` and `on_timer`).
    pub fn sender(&self) -> Option<NodeId> {
        self.from
    }

    /// Sends `msg` to node `to`; it will be delivered after the link latency
    /// between this node and `to`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let latency = self.topology.latency(self.self_id, to);
        self.send_with_extra_delay(to, msg, latency, SimDuration::ZERO);
    }

    /// Sends `msg` to node `to` with an additional delay on top of the link
    /// latency (e.g. to model serialisation or processing time).
    pub fn send_after(&mut self, to: NodeId, msg: M, extra: SimDuration) {
        let latency = self.topology.latency(self.self_id, to);
        self.send_with_extra_delay(to, msg, latency, extra);
    }

    /// Replies to the sender of the message currently being handled.
    ///
    /// # Panics
    ///
    /// Panics if called outside of `on_message` (when there is no sender).
    pub fn reply(&mut self, msg: M) {
        let to = self
            .from
            // srlb-lint: allow(panic-hygiene) -- documented panic contract of reply(): calling outside on_message is caller error
            .expect("reply() may only be used while handling a message");
        self.send(to, msg);
    }

    /// Claims the next ordering key from this node's private scheduling
    /// counter.
    fn next_key(&mut self, deliver_at: SimTime) -> EventKey {
        let seq = *self.send_seq;
        *self.send_seq += 1;
        EventKey {
            time: deliver_at,
            src: self.self_id,
            seq,
        }
    }

    fn send_with_extra_delay(
        &mut self,
        to: NodeId,
        msg: M,
        latency: SimDuration,
        extra: SimDuration,
    ) {
        let deliver_at = self.now + latency + extra;
        let key = self.next_key(deliver_at);
        let payload = EventPayload::Message {
            from: self.self_id,
            msg,
        };
        if let Some(router) = self.router.as_deref_mut() {
            if let Some(shard) = router.remote_shard(to) {
                router.outbound[shard].push(ScheduledEvent {
                    key,
                    target: to,
                    payload,
                });
                return;
            }
        }
        self.queue.push(key, to, payload);
    }

    /// Schedules a timer for this node to fire after `delay`, carrying
    /// `token`.  Timers are always local to the shard owning the node.
    pub fn schedule_timer(&mut self, delay: SimDuration, token: TimerToken) {
        let key = self.next_key(self.now + delay);
        self.queue
            .push(key, self.self_id, EventPayload::Timer { token });
    }

    /// Requests that the simulation stop after the current callback returns.
    ///
    /// In sharded execution the request is honoured at the next conservative
    /// time-window boundary rather than at the next event; the SRLB
    /// experiment nodes never call `stop`, so run outputs stay identical
    /// across execution modes.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }

    /// Mutable access to this **node's** deterministic random number
    /// generator.  Each node owns an independent stream forked from the run
    /// seed and the node id, so one node's draws never perturb another's —
    /// regardless of how the engine interleaves callbacks.
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut *self.rng
    }

    /// Draws a uniformly random index in `0..n` (convenience wrapper used by
    /// random candidate selection).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn random_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "random_index requires a non-empty range");
        (self.rng.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(3).to_string(), "node-3");
        assert_eq!(NodeId(3).index(), 3);
    }

    #[test]
    fn timer_token_is_ordered() {
        assert!(TimerToken(1) < TimerToken(2));
        assert_eq!(TimerToken::default(), TimerToken(0));
    }

    #[test]
    fn router_routes_only_foreign_ids() {
        let shard_of: Arc<[u32]> = Arc::from(vec![0u32, 1, 0].into_boxed_slice());
        let router: ShardRouter<u32> = ShardRouter::new(shard_of, 0, 2);
        assert_eq!(router.remote_shard(NodeId(0)), None);
        assert_eq!(router.remote_shard(NodeId(1)), Some(1));
        assert_eq!(router.remote_shard(NodeId(2)), None);
        // Out-of-plan ids are treated as local so the owning core drops them.
        assert_eq!(router.remote_shard(NodeId(99)), None);
        assert!(!format!("{router:?}").is_empty());
    }
}
