//! The [`Node`] trait implemented by every simulated component, and the
//! [`Context`] handed to nodes during callbacks.

use std::fmt;

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::event::{EventPayload, EventQueue};
use crate::link::Topology;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifier of a node inside a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Raw index of the node in the network's node table.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Opaque token a node attaches to a timer so it can recognise it when it
/// fires.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimerToken(pub u64);

/// A simulated component: a traffic source, the load balancer, a server, …
///
/// Nodes communicate exclusively by exchanging messages of type `M` through
/// the [`Context`]; the engine delivers each message after the link latency
/// configured in the [`Topology`].
pub trait Node<M> {
    /// Called once when the simulation starts, before any message is
    /// delivered.  The default implementation does nothing.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message sent by `from` arrives at this node.
    fn on_message(&mut self, msg: M, from: NodeId, ctx: &mut Context<'_, M>);

    /// Called when a timer scheduled by this node fires.  The default
    /// implementation does nothing.
    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, M>) {
        let _ = (token, ctx);
    }

    /// A short human-readable name used in traces; defaults to the node id.
    fn name(&self) -> String {
        String::new()
    }
}

/// The API available to a node while it handles a callback.
///
/// A `Context` borrows the engine's event queue, topology and random number
/// generator; everything a node schedules through it is inserted into the
/// global event queue with deterministic ordering.
#[derive(Debug)]
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: NodeId,
    pub(crate) from: Option<NodeId>,
    pub(crate) queue: &'a mut EventQueue<M>,
    pub(crate) topology: &'a Topology,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) stop_requested: &'a mut bool,
}

impl<'a, M> Context<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being called back.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The sender of the message currently being handled, if any
    /// (`None` inside `on_start` and `on_timer`).
    pub fn sender(&self) -> Option<NodeId> {
        self.from
    }

    /// Sends `msg` to node `to`; it will be delivered after the link latency
    /// between this node and `to`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let latency = self.topology.latency(self.self_id, to);
        self.send_with_extra_delay(to, msg, latency, SimDuration::ZERO);
    }

    /// Sends `msg` to node `to` with an additional delay on top of the link
    /// latency (e.g. to model serialisation or processing time).
    pub fn send_after(&mut self, to: NodeId, msg: M, extra: SimDuration) {
        let latency = self.topology.latency(self.self_id, to);
        self.send_with_extra_delay(to, msg, latency, extra);
    }

    /// Replies to the sender of the message currently being handled.
    ///
    /// # Panics
    ///
    /// Panics if called outside of `on_message` (when there is no sender).
    pub fn reply(&mut self, msg: M) {
        let to = self
            .from
            .expect("reply() may only be used while handling a message");
        self.send(to, msg);
    }

    fn send_with_extra_delay(
        &mut self,
        to: NodeId,
        msg: M,
        latency: SimDuration,
        extra: SimDuration,
    ) {
        let deliver_at = self.now + latency + extra;
        self.queue.push(
            deliver_at,
            to,
            EventPayload::Message {
                from: self.self_id,
                msg,
            },
        );
    }

    /// Schedules a timer for this node to fire after `delay`, carrying
    /// `token`.
    pub fn schedule_timer(&mut self, delay: SimDuration, token: TimerToken) {
        self.queue.push(
            self.now + delay,
            self.self_id,
            EventPayload::Timer { token },
        );
    }

    /// Requests that the simulation stop after the current callback returns.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }

    /// Mutable access to this run's deterministic random number generator.
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut *self.rng
    }

    /// Draws a uniformly random index in `0..n` (convenience wrapper used by
    /// random candidate selection).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn random_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "random_index requires a non-empty range");
        (self.rng.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(3).to_string(), "node-3");
        assert_eq!(NodeId(3).index(), 3);
    }

    #[test]
    fn timer_token_is_ordered() {
        assert!(TimerToken(1) < TimerToken(2));
        assert_eq!(TimerToken::default(), TimerToken(0));
    }
}
