//! The simulation engine.

use std::fmt;

use crate::event::{EventPayload, EventQueue};
use crate::link::Topology;
use crate::node::{Context, Node, NodeId};
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::trace::{TraceEntry, TraceKind, TraceLog};

/// Limits applied to a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimit {
    /// Stop once simulated time exceeds this value (`None` = unlimited).
    pub until: Option<SimTime>,
    /// Stop after processing this many events (`None` = unlimited).
    pub max_events: Option<u64>,
}

impl RunLimit {
    /// No limits: run until the event queue drains or a node calls
    /// [`Context::stop`].
    pub fn unlimited() -> Self {
        RunLimit {
            until: None,
            max_events: None,
        }
    }

    /// Run until the given simulated time.
    pub fn until(time: SimTime) -> Self {
        RunLimit {
            until: Some(time),
            max_events: None,
        }
    }

    /// Run for at most `n` events.
    pub fn max_events(n: u64) -> Self {
        RunLimit {
            until: None,
            max_events: Some(n),
        }
    }
}

/// Counters describing a finished (or paused) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Events popped from the queue and dispatched.
    pub events_processed: u64,
    /// Messages delivered to nodes.
    pub messages_delivered: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Messages addressed to a node id that does not exist (dropped).
    pub messages_dropped: u64,
    /// Simulated time of the last processed event.
    pub last_event_time: SimTime,
}

/// Boxed callback that renders a message for the trace log.
type DescribeFn<M> = Box<dyn Fn(&M) -> String>;

/// The discrete-event simulation engine.
///
/// `M` is the message type exchanged by nodes (for SRLB experiments this is
/// the packet/message enum defined in `srlb-core`).
pub struct Network<M> {
    nodes: Vec<Option<Box<dyn AnyNode<M>>>>,
    queue: EventQueue<M>,
    topology: Topology,
    rng: SimRng,
    now: SimTime,
    started: bool,
    stop_requested: bool,
    stats: SimStats,
    trace: TraceLog,
    trace_describe: Option<DescribeFn<M>>,
}

impl<M> fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .field("now", &self.now)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<M> Network<M> {
    /// Creates an empty network with the given seed and topology.
    pub fn new(seed: u64, topology: Topology) -> Self {
        Network {
            nodes: Vec::new(),
            queue: EventQueue::new(),
            topology,
            rng: SimRng::new(seed).fork_named("network"),
            now: SimTime::ZERO,
            started: false,
            stop_requested: false,
            stats: SimStats::default(),
            trace: TraceLog::disabled(),
            trace_describe: None,
        }
    }

    /// Adds a node and returns its id.
    ///
    /// Nodes added before the first call to [`Network::run`] /
    /// [`Network::run_with_limit`] receive their `on_start` callback when the
    /// run begins; a node added to an already-started network (e.g. a backend
    /// brought up mid-experiment by a scenario schedule) is started
    /// immediately at the current simulated time.
    pub fn add_node(&mut self, node: impl Node<M> + 'static) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(Box::new(node)));
        if self.started {
            self.start_node(id);
        }
        id
    }

    /// Reserves an empty node slot and returns its id, so a scenario can fix
    /// the id ↔ address layout of backends that only join the cluster later
    /// (via [`Network::insert_node`]).  Events addressed to a reserved but
    /// unfilled slot are dropped and counted in
    /// [`SimStats::messages_dropped`].
    pub fn reserve_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(None);
        id
    }

    /// Fills an empty node slot (from [`Network::reserve_node`] or a
    /// [`Network::take_node`] removal) with `node`.  On an already-started
    /// network the node's `on_start` runs immediately at the current
    /// simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the slot is occupied.
    pub fn insert_node(&mut self, id: NodeId, node: impl Node<M> + 'static) {
        let slot = self
            .nodes
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("node slot {id} out of range"));
        assert!(slot.is_none(), "node slot {id} is already occupied");
        *slot = Some(Box::new(node));
        if self.started {
            self.start_node(id);
        }
    }

    /// Runs `on_start` on the node in slot `id` (which must be occupied).
    fn start_node(&mut self, id: NodeId) {
        let mut node = self.nodes[id.index()].take().expect("node present");
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            from: None,
            queue: &mut self.queue,
            topology: &self.topology,
            rng: &mut self.rng,
            stop_requested: &mut self.stop_requested,
        };
        node.on_start(&mut ctx);
        self.nodes[id.index()] = Some(node);
    }

    /// Enables tracing of message deliveries, using `describe` to render each
    /// message for the trace log.
    pub fn enable_trace(&mut self, describe: impl Fn(&M) -> String + 'static) {
        self.trace = TraceLog::new();
        self.trace_describe = Some(Box::new(describe));
    }

    /// The trace log (empty unless [`Network::enable_trace`] was called).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The topology used for link latencies.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a node as a `dyn Node<M>`.
    ///
    /// Returns `None` if the id is out of range.
    pub fn with_node<R>(&self, id: NodeId, f: impl FnOnce(&dyn Node<M>) -> R) -> Option<R> {
        self.nodes
            .get(id.index())
            .and_then(|slot| slot.as_ref())
            .map(|node| f(node.as_node()))
    }

    /// Immutable, downcast access to a node of concrete type `T`.
    ///
    /// Returns `None` if the id is out of range or the node has a different
    /// type.  Useful for peeking at node state (e.g. a server's scoreboard)
    /// while the simulation is paused between [`Network::run_with_limit`]
    /// calls.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes
            .get(id.index())
            .and_then(|slot| slot.as_ref())
            .and_then(|node| node.as_any().downcast_ref::<T>())
    }

    /// Mutable, downcast access to a node of concrete type `T`.
    ///
    /// Returns `None` if the id is out of range or the node has a different
    /// type.  Intended for applying out-of-band state changes between
    /// [`Network::run_with_limit`] segments; prefer [`Network::control`] when
    /// the change needs to schedule timers or send messages.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes
            .get_mut(id.index())
            .and_then(|slot| slot.as_mut())
            .and_then(|node| node.as_any_mut().downcast_mut::<T>())
    }

    /// Delivers a **control event** to the node in slot `id`: runs `f` with
    /// mutable access to the node (downcast to `T`) and a [`Context`] at the
    /// current simulated time, exactly as if the engine were delivering a
    /// callback.  This is how a scenario schedule applies out-of-band
    /// changes — failing a load balancer, resizing a server — that may need
    /// to reschedule timers or emit messages.
    ///
    /// Returns `None` (without running `f`) if the id is out of range, the
    /// slot is empty, or the node is not of type `T`.
    pub fn control<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Context<'_, M>) -> R,
    ) -> Option<R> {
        let slot = self.nodes.get_mut(id.index())?;
        if !slot.as_ref()?.as_any().is::<T>() {
            return None;
        }
        let mut node = slot.take()?;
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            from: None,
            queue: &mut self.queue,
            topology: &self.topology,
            rng: &mut self.rng,
            stop_requested: &mut self.stop_requested,
        };
        let result = node
            .as_any_mut()
            .downcast_mut::<T>()
            .map(|typed| f(typed, &mut ctx));
        self.nodes[id.index()] = Some(node);
        result
    }

    /// Runs `on_start` on every node (once).
    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for index in 0..self.nodes.len() {
            if self.nodes[index].is_some() {
                self.start_node(NodeId(index));
            }
        }
    }

    /// Runs until the event queue drains, a node requests a stop, or the
    /// limit is hit.  Returns the statistics of the whole run so far.
    ///
    /// A [`Context::stop`] request only ends the run segment it was issued
    /// in (including one issued from an `on_start` of this call); a
    /// subsequent `run_with_limit` call resumes processing (scenario drivers
    /// alternate run segments with control events).
    pub fn run_with_limit(&mut self, limit: RunLimit) -> SimStats {
        // Clear before start() so a stop issued from an on_start callback
        // still ends this segment before any event is processed.
        self.stop_requested = false;
        self.start();
        let mut processed_this_call: u64 = 0;
        while let Some(next_time) = self.queue.peek_time() {
            if self.stop_requested {
                break;
            }
            if let Some(until) = limit.until {
                if next_time > until {
                    break;
                }
            }
            if let Some(max) = limit.max_events {
                if processed_this_call >= max {
                    break;
                }
            }
            let event = self.queue.pop().expect("peeked event exists");
            self.now = event.time;
            self.stats.events_processed += 1;
            self.stats.last_event_time = self.now;
            processed_this_call += 1;

            let target = event.target;
            let Some(slot) = self.nodes.get_mut(target.index()) else {
                self.stats.messages_dropped += 1;
                continue;
            };
            let Some(mut node) = slot.take() else {
                self.stats.messages_dropped += 1;
                continue;
            };

            match event.payload {
                EventPayload::Message { from, msg } => {
                    self.stats.messages_delivered += 1;
                    if let Some(describe) = &self.trace_describe {
                        self.trace.record(TraceEntry {
                            time: self.now,
                            kind: TraceKind::MessageDelivered,
                            target,
                            from: Some(from),
                            description: describe(&msg),
                        });
                    }
                    let mut ctx = Context {
                        now: self.now,
                        self_id: target,
                        from: Some(from),
                        queue: &mut self.queue,
                        topology: &self.topology,
                        rng: &mut self.rng,
                        stop_requested: &mut self.stop_requested,
                    };
                    node.on_message(msg, from, &mut ctx);
                }
                EventPayload::Timer { token } => {
                    self.stats.timers_fired += 1;
                    if self.trace.is_enabled() {
                        self.trace.record(TraceEntry {
                            time: self.now,
                            kind: TraceKind::TimerFired,
                            target,
                            from: None,
                            description: format!("timer {}", token.0),
                        });
                    }
                    let mut ctx = Context {
                        now: self.now,
                        self_id: target,
                        from: None,
                        queue: &mut self.queue,
                        topology: &self.topology,
                        rng: &mut self.rng,
                        stop_requested: &mut self.stop_requested,
                    };
                    node.on_timer(token, &mut ctx);
                }
            }
            self.nodes[target.index()] = Some(node);
        }
        self.stats
    }

    /// Runs until the event queue drains or a node requests a stop.
    pub fn run(&mut self) -> SimStats {
        self.run_with_limit(RunLimit::unlimited())
    }

    /// Consumes the network and returns the node with id `id`, downcast to
    /// `T`, so results accumulated inside nodes can be extracted after a run.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the node is not of type `T`.
    pub fn into_node<T: 'static>(mut self, id: NodeId) -> T
    where
        M: 'static,
    {
        self.take_node(id)
            .unwrap_or_else(|| panic!("node {id} is missing or not of the requested type"))
    }

    /// Removes the node with id `id` from the network and returns it,
    /// downcast to `T`.  Returns `None` if the id is out of range, the node
    /// was already taken, or it has a different concrete type.
    ///
    /// Use this after a run to extract results from several nodes (the
    /// engine will simply drop any further events addressed to the removed
    /// node, counting them in [`SimStats::messages_dropped`]).
    pub fn take_node<T: 'static>(&mut self, id: NodeId) -> Option<T>
    where
        M: 'static,
    {
        let slot = self.nodes.get_mut(id.index())?;
        if !slot.as_ref()?.as_any().is::<T>() {
            return None;
        }
        let node = slot.take()?;
        node.into_any().downcast::<T>().ok().map(|boxed| *boxed)
    }
}

/// Object-safe combination of [`Node`] and `Any`, so concrete node types can
/// be recovered after a run (used by the experiment driver to extract
/// collected measurements).
trait AnyNode<M>: Node<M> {
    fn as_node(&self) -> &dyn Node<M>;
    fn as_any(&self) -> &dyn std::any::Any;
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

impl<M, T: Node<M> + 'static> AnyNode<M> for T {
    fn as_node(&self) -> &dyn Node<M> {
        self
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TimerToken;
    use crate::time::SimDuration;

    /// A node that echoes numbers back until a cap, counting what it saw.
    struct Echo {
        peer: Option<NodeId>,
        cap: u32,
        seen: Vec<u32>,
    }

    impl Node<u32> for Echo {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, 0);
            }
        }
        fn on_message(&mut self, msg: u32, from: NodeId, ctx: &mut Context<'_, u32>) {
            self.seen.push(msg);
            if msg < self.cap {
                ctx.send(from, msg + 1);
            }
        }
    }

    #[test]
    fn ping_pong_terminates_and_counts() {
        let mut net = Network::new(1, Topology::uniform(SimDuration::from_micros(100)));
        let a = net.add_node(Echo {
            peer: None,
            cap: 10,
            seen: vec![],
        });
        let b = net.add_node(Echo {
            peer: Some(a),
            cap: 10,
            seen: vec![],
        });
        let stats = net.run();
        assert_eq!(stats.messages_delivered, 11); // msgs 0..=10
        assert_eq!(stats.timers_fired, 0);
        assert_eq!(stats.messages_dropped, 0);
        // one-way latency 100us, 11 hops
        assert_eq!(
            stats.last_event_time,
            SimTime::ZERO + SimDuration::from_micros(1100)
        );
        let a_node: Echo = {
            let _ = b;
            net.into_node(a)
        };
        assert_eq!(a_node.seen, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn run_until_respects_time_limit() {
        let mut net = Network::new(1, Topology::uniform(SimDuration::from_millis(1)));
        let a = net.add_node(Echo {
            peer: None,
            cap: 1_000,
            seen: vec![],
        });
        let _b = net.add_node(Echo {
            peer: Some(a),
            cap: 1_000,
            seen: vec![],
        });
        let stats = net.run_with_limit(RunLimit::until(SimTime::from_secs_f64(0.0105)));
        assert!(stats.messages_delivered <= 11);
        assert!(net.now() <= SimTime::from_secs_f64(0.0105));
    }

    #[test]
    fn run_respects_event_limit() {
        let mut net = Network::new(1, Topology::uniform(SimDuration::from_micros(1)));
        let a = net.add_node(Echo {
            peer: None,
            cap: u32::MAX,
            seen: vec![],
        });
        let _b = net.add_node(Echo {
            peer: Some(a),
            cap: u32::MAX,
            seen: vec![],
        });
        let stats = net.run_with_limit(RunLimit::max_events(50));
        assert_eq!(stats.events_processed, 50);
    }

    /// A node that schedules a periodic timer and stops the run after 5 fires.
    struct Ticker {
        fired: u32,
    }

    impl Node<u32> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.schedule_timer(SimDuration::from_millis(10), TimerToken(1));
        }
        fn on_message(&mut self, _msg: u32, _from: NodeId, _ctx: &mut Context<'_, u32>) {}
        fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, u32>) {
            assert_eq!(token, TimerToken(1));
            self.fired += 1;
            if self.fired >= 5 {
                ctx.stop();
            } else {
                ctx.schedule_timer(SimDuration::from_millis(10), TimerToken(1));
            }
        }
    }

    #[test]
    fn timers_fire_and_stop_works() {
        let mut net = Network::new(7, Topology::datacenter());
        let t = net.add_node(Ticker { fired: 0 });
        let stats = net.run();
        assert_eq!(stats.timers_fired, 5);
        assert_eq!(net.now(), SimTime::from_secs_f64(0.05));
        let ticker: Ticker = net.into_node(t);
        assert_eq!(ticker.fired, 5);
    }

    struct Lost;
    impl Node<u32> for Lost {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            // send to a node id that does not exist
            ctx.send(NodeId(99), 1);
        }
        fn on_message(&mut self, _msg: u32, _from: NodeId, _ctx: &mut Context<'_, u32>) {}
    }

    #[test]
    fn messages_to_unknown_nodes_are_dropped_and_counted() {
        let mut net = Network::new(7, Topology::datacenter());
        net.add_node(Lost);
        let stats = net.run();
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.messages_delivered, 0);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run_once(seed: u64) -> Vec<u32> {
            struct RandomSender {
                peer: Option<NodeId>,
                got: Vec<u32>,
            }
            impl Node<u32> for RandomSender {
                fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                    if let Some(peer) = self.peer {
                        for _ in 0..20 {
                            let v = ctx.random_index(1000) as u32;
                            ctx.send(peer, v);
                        }
                    }
                }
                fn on_message(&mut self, msg: u32, _from: NodeId, _ctx: &mut Context<'_, u32>) {
                    self.got.push(msg);
                }
            }
            let mut net = Network::new(seed, Topology::datacenter());
            let sink = net.add_node(RandomSender {
                peer: None,
                got: vec![],
            });
            let _src = net.add_node(RandomSender {
                peer: Some(sink),
                got: vec![],
            });
            net.run();
            let sink_node: RandomSender = net.into_node(sink);
            sink_node.got
        }
        assert_eq!(run_once(5), run_once(5));
        assert_ne!(run_once(5), run_once(6));
    }

    #[test]
    fn trace_records_deliveries_when_enabled() {
        let mut net = Network::new(1, Topology::datacenter());
        let a = net.add_node(Echo {
            peer: None,
            cap: 2,
            seen: vec![],
        });
        let _b = net.add_node(Echo {
            peer: Some(a),
            cap: 2,
            seen: vec![],
        });
        net.enable_trace(|m| format!("msg {m}"));
        net.run();
        assert_eq!(net.trace().len(), 3);
        assert!(net.trace().entries()[0].description.contains("msg 0"));
    }

    #[test]
    fn with_node_gives_read_access() {
        let mut net = Network::new(1, Topology::datacenter());
        let a = net.add_node(Echo {
            peer: None,
            cap: 0,
            seen: vec![],
        });
        let name = net.with_node(a, |n| n.name()).unwrap();
        assert_eq!(name, "");
        assert!(net.with_node(NodeId(42), |_| ()).is_none());
    }

    #[test]
    fn reserved_slots_drop_messages_until_filled() {
        let mut net = Network::new(1, Topology::datacenter());
        let reserved = net.reserve_node();

        #[derive(Debug)]
        struct To {
            target: NodeId,
        }
        impl Node<u32> for To {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(self.target, 5);
            }
            fn on_message(&mut self, _m: u32, _f: NodeId, _c: &mut Context<'_, u32>) {}
        }
        net.add_node(To { target: reserved });
        let stats = net.run();
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.messages_delivered, 0);

        // Filling the slot mid-run starts the node and delivers to it.
        net.insert_node(
            reserved,
            Echo {
                peer: None,
                cap: 0,
                seen: vec![],
            },
        );
        net.add_node(To { target: reserved });
        net.run();
        let echo: Echo = net.take_node(reserved).unwrap();
        assert_eq!(echo.seen, vec![5]);
    }

    #[test]
    fn late_added_nodes_are_started_immediately() {
        let mut net = Network::new(7, Topology::datacenter());
        net.add_node(Ticker { fired: 0 });
        net.run();
        // The network has already started and stopped once; a node added now
        // receives on_start right away and its timers are delivered by the
        // next run segment.
        let t2 = net.add_node(Ticker { fired: 0 });
        net.run();
        let ticker: Ticker = net.into_node(t2);
        assert_eq!(ticker.fired, 5);
    }

    #[test]
    fn control_runs_with_a_context_and_node_as_mut_mutates() {
        let mut net = Network::new(1, Topology::datacenter());
        let a = net.add_node(Echo {
            peer: None,
            cap: 0,
            seen: vec![],
        });
        net.run();
        // A control event can both mutate the node and send messages.
        let sent = net
            .control::<Echo, _>(a, |echo, ctx| {
                echo.seen.push(99);
                ctx.send(a, 1);
                echo.seen.len()
            })
            .unwrap();
        assert_eq!(sent, 1);
        net.run();
        net.node_as_mut::<Echo>(a).unwrap().cap = 7;
        let echo: Echo = net.into_node(a);
        assert_eq!(echo.seen, vec![99, 1]);
        assert_eq!(echo.cap, 7);
    }

    #[test]
    fn stop_from_on_start_ends_the_segment_before_any_event() {
        struct StopImmediately {
            got: u32,
        }
        impl Node<u32> for StopImmediately {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let me = ctx.self_id();
                ctx.send(me, 1);
                ctx.stop();
            }
            fn on_message(&mut self, msg: u32, _f: NodeId, _c: &mut Context<'_, u32>) {
                self.got += msg;
            }
        }
        let mut net = Network::new(1, Topology::datacenter());
        let a = net.add_node(StopImmediately { got: 0 });
        let stats = net.run();
        assert_eq!(stats.events_processed, 0, "stop from on_start is honoured");
        // The stop only ended that segment: a further run delivers normally.
        net.run();
        let node: StopImmediately = net.into_node(a);
        assert_eq!(node.got, 1);
    }

    #[test]
    fn control_on_wrong_type_or_empty_slot_is_none() {
        let mut net: Network<u32> = Network::new(1, Topology::datacenter());
        let a = net.add_node(Lost);
        let reserved = net.reserve_node();
        assert!(net.control::<Echo, _>(a, |_, _| ()).is_none());
        assert!(net.control::<Lost, _>(reserved, |_, _| ()).is_none());
        assert!(net.control::<Lost, _>(NodeId(99), |_, _| ()).is_none());
        assert!(net.node_as_mut::<Echo>(a).is_none());
    }
}
