//! The single-threaded simulation engine frontend.
//!
//! [`Network`] is now a thin driver over [`SimCore`]: the node registry,
//! clock, event queue and dispatch logic live in the core, and this type
//! only decides *how far* to run it (the [`RunUntil`] policy) and *how* to
//! step it (batched by default, per-event via
//! [`Network::run_until_stepwise`]).  The multi-threaded frontend over the
//! same core is [`crate::ShardedNetwork`].

use std::fmt;

use crate::core::{SimCore, SimStats, StepOutcome};
use crate::link::Topology;
use crate::node::{Context, Node, NodeId};
use crate::time::SimTime;
use crate::trace::TraceLog;

/// How far a run segment should advance the simulation.
///
/// This collapses the historical unbounded-run / limit-struct / stop flag
/// trio into one policy value.  All variants additionally end early if
/// the queue drains or a node calls [`Context::stop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunUntil {
    /// Run until the event queue drains.
    Drained,
    /// Run until a node requests a stop (or the queue drains).  Semantically
    /// identical to [`RunUntil::Drained`] — every policy honours stop
    /// requests — but states the intent that a node is expected to end the
    /// run; combinators normalise it to `Drained`.
    Stopped,
    /// Run until simulated time would exceed this value.
    Time(SimTime),
    /// Run for at most this many events.
    Events(u64),
    /// Run until the time bound **or** the event budget is hit, whichever
    /// comes first.
    TimeOrEvents {
        /// Stop once simulated time would exceed this value.
        until: SimTime,
        /// Stop after processing this many events.
        max_events: u64,
    },
}

impl RunUntil {
    /// The `(time bound, event budget)` pair this policy imposes.
    pub fn bounds(self) -> (Option<SimTime>, Option<u64>) {
        match self {
            RunUntil::Drained | RunUntil::Stopped => (None, None),
            RunUntil::Time(t) => (Some(t), None),
            RunUntil::Events(n) => (None, Some(n)),
            RunUntil::TimeOrEvents { until, max_events } => (Some(until), Some(max_events)),
        }
    }

    fn from_bounds(until: Option<SimTime>, max_events: Option<u64>) -> Self {
        match (until, max_events) {
            (None, None) => RunUntil::Drained,
            (Some(t), None) => RunUntil::Time(t),
            (None, Some(n)) => RunUntil::Events(n),
            (Some(t), Some(n)) => RunUntil::TimeOrEvents {
                until: t,
                max_events: n,
            },
        }
    }

    /// Additionally bounds the policy by simulated time; the tighter of two
    /// time bounds wins.
    pub fn or_time(self, t: SimTime) -> Self {
        let (until, max_events) = self.bounds();
        Self::from_bounds(Some(until.map_or(t, |u| u.min(t))), max_events)
    }

    /// Additionally bounds the policy by an event budget; the tighter of two
    /// budgets wins.
    pub fn or_events(self, n: u64) -> Self {
        let (until, max_events) = self.bounds();
        Self::from_bounds(until, Some(max_events.map_or(n, |m| m.min(n))))
    }
}

/// Drives `core` under `policy`, either batched (same-timestamp bursts) or
/// one event at a time.  Returns the number of events processed by this
/// call.  Shared by [`Network`] and the single-shard fast path of
/// [`crate::ShardedNetwork`].
pub(crate) fn drive_core<M>(core: &mut SimCore<M>, policy: RunUntil, batched: bool) -> u64 {
    // Clear before start() so a stop issued from an on_start callback still
    // ends this segment before any event is processed.
    core.clear_stop_request();
    core.start();
    let (until, max_events) = policy.bounds();
    let mut processed = 0u64;
    if batched {
        loop {
            if core.stop_requested() {
                break;
            }
            let Some(next_time) = core.peek_time() else {
                break;
            };
            if until.is_some_and(|u| next_time > u) {
                break;
            }
            if max_events.is_some_and(|m| processed >= m) {
                break;
            }
            // One call runs whole same-timestamp groups with every policy
            // check hoisted to the group boundary; the outer loop re-checks
            // the exit conditions and terminates on the next pass.
            let budget = max_events.map_or(u64::MAX, |m| m - processed);
            processed += core.run_segment(until, budget);
        }
    } else {
        // The reference per-event loop, with the same fused peek/pop the
        // batched path enjoys: the time bound rides the pop, so each event
        // costs one heap operation plus the stop/budget re-checks.  The
        // remaining throughput delta vs batched is the held-node
        // amortisation and group-level policy hoisting `run_segment` adds.
        while !core.stop_requested() && max_events.is_none_or(|m| processed < m) {
            match core.step_within(until) {
                StepOutcome::Processed { .. } => processed += 1,
                StepOutcome::Idle => break,
            }
        }
    }
    processed
}

/// The single-threaded discrete-event simulation engine.
///
/// `M` is the message type exchanged by nodes (for SRLB experiments this is
/// the packet/message enum defined in `srlb-core`).
pub struct Network<M> {
    core: SimCore<M>,
}

impl<M> fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network").field("core", &self.core).finish()
    }
}

impl<M> Network<M> {
    /// Creates an empty network with the given seed and topology.
    pub fn new(seed: u64, topology: Topology) -> Self {
        Network {
            core: SimCore::new(seed, topology),
        }
    }

    /// The underlying [`SimCore`] (for drivers that want to step manually).
    pub fn core(&self) -> &SimCore<M> {
        &self.core
    }

    /// Mutable access to the underlying [`SimCore`].
    pub fn core_mut(&mut self) -> &mut SimCore<M> {
        &mut self.core
    }

    /// Adds a node and returns its id.
    ///
    /// Nodes added before the first run segment receive their `on_start`
    /// callback when the run begins; a node added to an already-started
    /// network (e.g. a backend brought up mid-experiment by a scenario
    /// schedule) is started immediately at the current simulated time.
    pub fn add_node(&mut self, node: impl Node<M> + Send + 'static) -> NodeId {
        self.core.add_node(node)
    }

    /// Reserves an empty node slot and returns its id; see
    /// [`SimCore::reserve_node`].
    pub fn reserve_node(&mut self) -> NodeId {
        self.core.reserve_node()
    }

    /// Fills an empty node slot with `node`; see [`SimCore::insert_node`].
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the slot is occupied.
    pub fn insert_node(&mut self, id: NodeId, node: impl Node<M> + Send + 'static) {
        self.core.insert_node(id, node)
    }

    /// Enables tracing of message deliveries, using `describe` to render each
    /// message for the trace log.
    pub fn enable_trace(&mut self, describe: impl Fn(&M) -> String + Send + 'static) {
        self.core.enable_trace(describe)
    }

    /// The trace log (empty unless [`Network::enable_trace`] was called).
    pub fn trace(&self) -> &TraceLog {
        self.core.trace()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.core.stats()
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.core.node_count()
    }

    /// The topology used for link latencies.
    pub fn topology(&self) -> &Topology {
        self.core.topology()
    }

    /// Delivery time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.core.peek_time()
    }

    /// Pops and dispatches the single next event; see [`SimCore::step`].
    pub fn step(&mut self) -> StepOutcome {
        self.core.step()
    }

    /// Immutable access to a node as a `dyn Node<M>`; see
    /// [`SimCore::with_node`].
    pub fn with_node<R>(&self, id: NodeId, f: impl FnOnce(&dyn Node<M>) -> R) -> Option<R> {
        self.core.with_node(id, f)
    }

    /// Immutable, downcast access to a node of concrete type `T`; see
    /// [`SimCore::node_as`].
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.core.node_as(id)
    }

    /// Mutable, downcast access to a node of concrete type `T`; see
    /// [`SimCore::node_as_mut`].
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.core.node_as_mut(id)
    }

    /// Delivers a **control event** to the node in slot `id`; see
    /// [`SimCore::control`].
    pub fn control<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Context<'_, M>) -> R,
    ) -> Option<R> {
        self.core.control(id, f)
    }

    /// Runs under the given policy using the **batched** stepper (all events
    /// sharing a timestamp dispatch in one pass).  Returns the statistics of
    /// the whole run so far.
    ///
    /// A [`Context::stop`] request only ends the run segment it was issued
    /// in (including one issued from an `on_start` of this call); a
    /// subsequent run call resumes processing (scenario drivers alternate
    /// run segments with control events).
    pub fn run_until(&mut self, policy: RunUntil) -> SimStats {
        drive_core(&mut self.core, policy, true);
        self.core.stats()
    }

    /// Runs under the given policy one event at a time — the reference
    /// execution the batched and sharded modes are checked against.
    pub fn run_until_stepwise(&mut self, policy: RunUntil) -> SimStats {
        drive_core(&mut self.core, policy, false);
        self.core.stats()
    }

    /// Consumes the network and returns the node with id `id`, downcast to
    /// `T`, so results accumulated inside nodes can be extracted after a run.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the node is not of type `T`.
    pub fn into_node<T: 'static>(mut self, id: NodeId) -> T
    where
        M: 'static,
    {
        self.take_node(id)
            // srlb-lint: allow(panic-hygiene) -- documented panic contract of into_node; take_node is the fallible alternative
            .unwrap_or_else(|| panic!("node {id} is missing or not of the requested type"))
    }

    /// Removes the node with id `id` from the network and returns it,
    /// downcast to `T`; see [`SimCore::take_node`].
    pub fn take_node<T: 'static>(&mut self, id: NodeId) -> Option<T>
    where
        M: 'static,
    {
        self.core.take_node(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TimerToken;
    use crate::time::SimDuration;

    /// A node that echoes numbers back until a cap, counting what it saw.
    struct Echo {
        peer: Option<NodeId>,
        cap: u32,
        seen: Vec<u32>,
    }

    impl Node<u32> for Echo {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, 0);
            }
        }
        fn on_message(&mut self, msg: u32, from: NodeId, ctx: &mut Context<'_, u32>) {
            self.seen.push(msg);
            if msg < self.cap {
                ctx.send(from, msg + 1);
            }
        }
    }

    #[test]
    fn ping_pong_terminates_and_counts() {
        let mut net = Network::new(1, Topology::uniform(SimDuration::from_micros(100)));
        let a = net.add_node(Echo {
            peer: None,
            cap: 10,
            seen: vec![],
        });
        let b = net.add_node(Echo {
            peer: Some(a),
            cap: 10,
            seen: vec![],
        });
        let stats = net.run_until(RunUntil::Drained);
        assert_eq!(stats.messages_delivered, 11); // msgs 0..=10
        assert_eq!(stats.timers_fired, 0);
        assert_eq!(stats.messages_dropped, 0);
        // one-way latency 100us, 11 hops
        assert_eq!(
            stats.last_event_time,
            SimTime::ZERO + SimDuration::from_micros(1100)
        );
        let a_node: Echo = {
            let _ = b;
            net.into_node(a)
        };
        assert_eq!(a_node.seen, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn run_until_respects_time_limit() {
        let mut net = Network::new(1, Topology::uniform(SimDuration::from_millis(1)));
        let a = net.add_node(Echo {
            peer: None,
            cap: 1_000,
            seen: vec![],
        });
        let _b = net.add_node(Echo {
            peer: Some(a),
            cap: 1_000,
            seen: vec![],
        });
        let stats = net.run_until(RunUntil::Time(SimTime::from_secs_f64(0.0105)));
        assert!(stats.messages_delivered <= 11);
        assert!(net.now() <= SimTime::from_secs_f64(0.0105));
    }

    #[test]
    fn run_respects_event_limit() {
        let mut net = Network::new(1, Topology::uniform(SimDuration::from_micros(1)));
        let a = net.add_node(Echo {
            peer: None,
            cap: u32::MAX,
            seen: vec![],
        });
        let _b = net.add_node(Echo {
            peer: Some(a),
            cap: u32::MAX,
            seen: vec![],
        });
        let stats = net.run_until(RunUntil::Events(50));
        assert_eq!(stats.events_processed, 50);
    }

    #[test]
    fn run_until_combinators_normalise_and_tighten() {
        let t5 = SimTime::from_nanos(5);
        let t9 = SimTime::from_nanos(9);
        assert_eq!(RunUntil::Drained.or_time(t5), RunUntil::Time(t5));
        assert_eq!(RunUntil::Stopped.or_events(3), RunUntil::Events(3));
        assert_eq!(RunUntil::Time(t9).or_time(t5), RunUntil::Time(t5));
        assert_eq!(RunUntil::Time(t5).or_time(t9), RunUntil::Time(t5));
        assert_eq!(RunUntil::Events(7).or_events(9), RunUntil::Events(7));
        assert_eq!(
            RunUntil::Time(t5).or_events(7),
            RunUntil::TimeOrEvents {
                until: t5,
                max_events: 7
            }
        );
        assert_eq!(
            RunUntil::TimeOrEvents {
                until: t9,
                max_events: 9
            }
            .or_time(t5)
            .or_events(7),
            RunUntil::TimeOrEvents {
                until: t5,
                max_events: 7
            }
        );
        assert_eq!(RunUntil::Stopped.bounds(), (None, None));
    }

    #[test]
    fn stepwise_and_batched_runs_agree() {
        fn outcome(batched: bool) -> (SimStats, Vec<u32>) {
            let mut net = Network::new(1, Topology::uniform(SimDuration::from_micros(100)));
            let a = net.add_node(Echo {
                peer: None,
                cap: 20,
                seen: vec![],
            });
            let _b = net.add_node(Echo {
                peer: Some(a),
                cap: 20,
                seen: vec![],
            });
            if batched {
                net.run_until(RunUntil::Drained);
            } else {
                net.run_until_stepwise(RunUntil::Drained);
            }
            let stats = net.stats();
            (stats, net.into_node::<Echo>(a).seen)
        }
        assert_eq!(outcome(true), outcome(false));
    }

    /// A node that schedules a periodic timer and stops the run after 5 fires.
    struct Ticker {
        fired: u32,
    }

    impl Node<u32> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.schedule_timer(SimDuration::from_millis(10), TimerToken(1));
        }
        fn on_message(&mut self, _msg: u32, _from: NodeId, _ctx: &mut Context<'_, u32>) {}
        fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, u32>) {
            assert_eq!(token, TimerToken(1));
            self.fired += 1;
            if self.fired >= 5 {
                ctx.stop();
            } else {
                ctx.schedule_timer(SimDuration::from_millis(10), TimerToken(1));
            }
        }
    }

    #[test]
    fn timers_fire_and_stop_works() {
        let mut net = Network::new(7, Topology::datacenter());
        let t = net.add_node(Ticker { fired: 0 });
        let stats = net.run_until(RunUntil::Drained);
        assert_eq!(stats.timers_fired, 5);
        assert_eq!(net.now(), SimTime::from_secs_f64(0.05));
        let ticker: Ticker = net.into_node(t);
        assert_eq!(ticker.fired, 5);
    }

    struct Lost;
    impl Node<u32> for Lost {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            // send to a node id that does not exist
            ctx.send(NodeId(99), 1);
        }
        fn on_message(&mut self, _msg: u32, _from: NodeId, _ctx: &mut Context<'_, u32>) {}
    }

    #[test]
    fn messages_to_unknown_nodes_are_dropped_and_counted() {
        let mut net = Network::new(7, Topology::datacenter());
        net.add_node(Lost);
        let stats = net.run_until(RunUntil::Drained);
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.dropped_unroutable, 1);
        assert_eq!(stats.dropped_vacant, 0);
        assert_eq!(stats.messages_delivered, 0);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run_once(seed: u64) -> Vec<u32> {
            struct RandomSender {
                peer: Option<NodeId>,
                got: Vec<u32>,
            }
            impl Node<u32> for RandomSender {
                fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                    if let Some(peer) = self.peer {
                        for _ in 0..20 {
                            let v = ctx.random_index(1000) as u32;
                            ctx.send(peer, v);
                        }
                    }
                }
                fn on_message(&mut self, msg: u32, _from: NodeId, _ctx: &mut Context<'_, u32>) {
                    self.got.push(msg);
                }
            }
            let mut net = Network::new(seed, Topology::datacenter());
            let sink = net.add_node(RandomSender {
                peer: None,
                got: vec![],
            });
            let _src = net.add_node(RandomSender {
                peer: Some(sink),
                got: vec![],
            });
            net.run_until(RunUntil::Drained);
            let sink_node: RandomSender = net.into_node(sink);
            sink_node.got
        }
        assert_eq!(run_once(5), run_once(5));
        assert_ne!(run_once(5), run_once(6));
    }

    #[test]
    fn trace_records_deliveries_when_enabled() {
        let mut net = Network::new(1, Topology::datacenter());
        let a = net.add_node(Echo {
            peer: None,
            cap: 2,
            seen: vec![],
        });
        let _b = net.add_node(Echo {
            peer: Some(a),
            cap: 2,
            seen: vec![],
        });
        net.enable_trace(|m| format!("msg {m}"));
        net.run_until(RunUntil::Drained);
        assert_eq!(net.trace().len(), 3);
        assert!(net.trace().entries()[0].description.contains("msg 0"));
    }

    #[test]
    fn with_node_gives_read_access() {
        let mut net = Network::new(1, Topology::datacenter());
        let a = net.add_node(Echo {
            peer: None,
            cap: 0,
            seen: vec![],
        });
        let name = net.with_node(a, |n| n.name()).unwrap();
        assert_eq!(name, "");
        assert!(net.with_node(NodeId(42), |_| ()).is_none());
    }

    #[test]
    fn reserved_slots_drop_messages_until_filled() {
        let mut net = Network::new(1, Topology::datacenter());
        let reserved = net.reserve_node();

        #[derive(Debug)]
        struct To {
            target: NodeId,
        }
        impl Node<u32> for To {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(self.target, 5);
            }
            fn on_message(&mut self, _m: u32, _f: NodeId, _c: &mut Context<'_, u32>) {}
        }
        net.add_node(To { target: reserved });
        let stats = net.run_until(RunUntil::Drained);
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.dropped_vacant, 1);
        assert_eq!(stats.dropped_unroutable, 0);
        assert_eq!(stats.messages_delivered, 0);

        // Filling the slot mid-run starts the node and delivers to it.
        net.insert_node(
            reserved,
            Echo {
                peer: None,
                cap: 0,
                seen: vec![],
            },
        );
        net.add_node(To { target: reserved });
        net.run_until(RunUntil::Drained);
        let echo: Echo = net.take_node(reserved).unwrap();
        assert_eq!(echo.seen, vec![5]);
    }

    #[test]
    fn late_added_nodes_are_started_immediately() {
        let mut net = Network::new(7, Topology::datacenter());
        net.add_node(Ticker { fired: 0 });
        net.run_until(RunUntil::Drained);
        // The network has already started and stopped once; a node added now
        // receives on_start right away and its timers are delivered by the
        // next run segment.
        let t2 = net.add_node(Ticker { fired: 0 });
        net.run_until(RunUntil::Drained);
        let ticker: Ticker = net.into_node(t2);
        assert_eq!(ticker.fired, 5);
    }

    #[test]
    fn control_runs_with_a_context_and_node_as_mut_mutates() {
        let mut net = Network::new(1, Topology::datacenter());
        let a = net.add_node(Echo {
            peer: None,
            cap: 0,
            seen: vec![],
        });
        net.run_until(RunUntil::Drained);
        // A control event can both mutate the node and send messages.
        let sent = net
            .control::<Echo, _>(a, |echo, ctx| {
                echo.seen.push(99);
                ctx.send(a, 1);
                echo.seen.len()
            })
            .unwrap();
        assert_eq!(sent, 1);
        net.run_until(RunUntil::Drained);
        net.node_as_mut::<Echo>(a).unwrap().cap = 7;
        let echo: Echo = net.into_node(a);
        assert_eq!(echo.seen, vec![99, 1]);
        assert_eq!(echo.cap, 7);
    }

    #[test]
    fn stop_from_on_start_ends_the_segment_before_any_event() {
        struct StopImmediately {
            got: u32,
        }
        impl Node<u32> for StopImmediately {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let me = ctx.self_id();
                ctx.send(me, 1);
                ctx.stop();
            }
            fn on_message(&mut self, msg: u32, _f: NodeId, _c: &mut Context<'_, u32>) {
                self.got += msg;
            }
        }
        let mut net = Network::new(1, Topology::datacenter());
        let a = net.add_node(StopImmediately { got: 0 });
        let stats = net.run_until(RunUntil::Drained);
        assert_eq!(stats.events_processed, 0, "stop from on_start is honoured");
        // The stop only ended that segment: a further run delivers normally.
        net.run_until(RunUntil::Drained);
        let node: StopImmediately = net.into_node(a);
        assert_eq!(node.got, 1);
    }

    #[test]
    fn control_on_wrong_type_or_empty_slot_is_none() {
        let mut net: Network<u32> = Network::new(1, Topology::datacenter());
        let a = net.add_node(Lost);
        let reserved = net.reserve_node();
        assert!(net.control::<Echo, _>(a, |_, _| ()).is_none());
        assert!(net.control::<Lost, _>(reserved, |_, _| ()).is_none());
        assert!(net.control::<Lost, _>(NodeId(99), |_, _| ()).is_none());
        assert!(net.node_as_mut::<Echo>(a).is_none());
    }
}
