//! Link latencies between nodes.
//!
//! The paper's testbed bridges the load balancer and all servers on the same
//! link, so the default topology is a uniform one-way latency; specific pairs
//! can be overridden (e.g. a slower client↔load-balancer WAN hop).

use std::collections::HashMap;

use crate::node::NodeId;
use crate::time::SimDuration;

/// One-way link latencies between pairs of nodes.
#[derive(Debug, Clone)]
pub struct Topology {
    default_latency: SimDuration,
    overrides: HashMap<(NodeId, NodeId), SimDuration>,
    symmetric: bool,
}

impl Topology {
    /// A topology in which every pair of nodes is connected with the same
    /// one-way latency.
    pub fn uniform(latency: SimDuration) -> Self {
        Topology {
            default_latency: latency,
            overrides: HashMap::new(),
            symmetric: true,
        }
    }

    /// The default data-centre topology used by the SRLB experiments:
    /// a 50 µs one-way latency between any two nodes (bridged L2 segment).
    pub fn datacenter() -> Self {
        Self::uniform(SimDuration::from_micros(50))
    }

    /// Sets the latency of the directed link `a → b` (and `b → a` if the
    /// topology is symmetric, the default).
    pub fn set_link(&mut self, a: NodeId, b: NodeId, latency: SimDuration) -> &mut Self {
        self.overrides.insert((a, b), latency);
        if self.symmetric {
            self.overrides.insert((b, a), latency);
        }
        self
    }

    /// Makes subsequent [`Topology::set_link`] calls directional.
    pub fn asymmetric(&mut self) -> &mut Self {
        self.symmetric = false;
        self
    }

    /// One-way latency from `a` to `b`.  Sending a message to oneself is
    /// instantaneous unless explicitly overridden.
    pub fn latency(&self, a: NodeId, b: NodeId) -> SimDuration {
        if let Some(latency) = self.overrides.get(&(a, b)) {
            return *latency;
        }
        if a == b {
            SimDuration::ZERO
        } else {
            self.default_latency
        }
    }

    /// The default latency applied to links without an override.
    pub fn default_latency(&self) -> SimDuration {
        self.default_latency
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::datacenter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_latency_applies_to_every_pair() {
        let topo = Topology::uniform(SimDuration::from_micros(10));
        assert_eq!(
            topo.latency(NodeId(0), NodeId(5)),
            SimDuration::from_micros(10)
        );
        assert_eq!(
            topo.latency(NodeId(5), NodeId(0)),
            SimDuration::from_micros(10)
        );
        assert_eq!(topo.default_latency(), SimDuration::from_micros(10));
    }

    #[test]
    fn self_links_are_instantaneous() {
        let topo = Topology::datacenter();
        assert_eq!(topo.latency(NodeId(3), NodeId(3)), SimDuration::ZERO);
    }

    #[test]
    fn overrides_are_symmetric_by_default() {
        let mut topo = Topology::datacenter();
        topo.set_link(NodeId(0), NodeId(1), SimDuration::from_millis(5));
        assert_eq!(
            topo.latency(NodeId(0), NodeId(1)),
            SimDuration::from_millis(5)
        );
        assert_eq!(
            topo.latency(NodeId(1), NodeId(0)),
            SimDuration::from_millis(5)
        );
        assert_eq!(
            topo.latency(NodeId(0), NodeId(2)),
            SimDuration::from_micros(50)
        );
    }

    #[test]
    fn asymmetric_overrides_are_directional() {
        let mut topo = Topology::uniform(SimDuration::from_micros(1));
        topo.asymmetric()
            .set_link(NodeId(0), NodeId(1), SimDuration::from_millis(2));
        assert_eq!(
            topo.latency(NodeId(0), NodeId(1)),
            SimDuration::from_millis(2)
        );
        assert_eq!(
            topo.latency(NodeId(1), NodeId(0)),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn default_topology_is_datacenter() {
        let topo = Topology::default();
        assert_eq!(topo.default_latency(), SimDuration::from_micros(50));
    }
}
