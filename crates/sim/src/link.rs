//! Link latencies between nodes.
//!
//! The paper's testbed bridges the load balancer and all servers on the same
//! link, so the default topology is a uniform one-way latency; specific pairs
//! can be overridden (e.g. a slower client↔load-balancer WAN hop).
//!
//! [`Topology`] is the low-level, per-`NodeId` latency table the event loop
//! consults.  [`TopologyModel`] is its declarative, serde-round-trippable
//! counterpart: a *named* latency model (uniform, or rack/zone asymmetric)
//! that experiment specs carry and that is instantiated into a `Topology`
//! once the node layout (client, load balancer, servers) is known.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::node::NodeId;
use crate::time::SimDuration;

/// One-way link latencies between pairs of nodes.
#[derive(Debug, Clone)]
pub struct Topology {
    default_latency: SimDuration,
    overrides: HashMap<(NodeId, NodeId), SimDuration>,
    symmetric: bool,
}

impl Topology {
    /// A topology in which every pair of nodes is connected with the same
    /// one-way latency.
    pub fn uniform(latency: SimDuration) -> Self {
        Topology {
            default_latency: latency,
            overrides: HashMap::new(),
            symmetric: true,
        }
    }

    /// The default data-centre topology used by the SRLB experiments:
    /// a 50 µs one-way latency between any two nodes (bridged L2 segment).
    pub fn datacenter() -> Self {
        Self::uniform(SimDuration::from_micros(50))
    }

    /// Sets the latency of the directed link `a → b` (and `b → a` if the
    /// topology is symmetric, the default).
    pub fn set_link(&mut self, a: NodeId, b: NodeId, latency: SimDuration) -> &mut Self {
        self.overrides.insert((a, b), latency);
        if self.symmetric {
            self.overrides.insert((b, a), latency);
        }
        self
    }

    /// Makes subsequent [`Topology::set_link`] calls directional.
    pub fn asymmetric(&mut self) -> &mut Self {
        self.symmetric = false;
        self
    }

    /// One-way latency from `a` to `b`.  Sending a message to oneself is
    /// instantaneous unless explicitly overridden.
    pub fn latency(&self, a: NodeId, b: NodeId) -> SimDuration {
        if let Some(latency) = self.overrides.get(&(a, b)) {
            return *latency;
        }
        if a == b {
            SimDuration::ZERO
        } else {
            self.default_latency
        }
    }

    /// The default latency applied to links without an override.
    pub fn default_latency(&self) -> SimDuration {
        self.default_latency
    }

    /// Multiplies the latency of every directed link touching `node` by
    /// `multiplier` — the "slow node" fault model: a degraded NIC or an
    /// oversubscribed hypervisor slows everything in and out of one box.
    ///
    /// `node_count` bounds the peer ids considered (the topology itself is
    /// a default plus overrides and has no node list).  Both directions of
    /// each pair are written as explicit overrides, each scaled from its
    /// own current latency, so asymmetric topologies stay asymmetric.
    /// Self-links are untouched.  Must be applied before the topology is
    /// handed to a sharded network, so the conservative lookahead is
    /// computed from the slowed links.
    pub fn scale_links_of(&mut self, node: NodeId, multiplier: f64, node_count: usize) {
        let scale = |d: SimDuration| {
            SimDuration::from_nanos((d.as_nanos() as f64 * multiplier).round() as u64)
        };
        for other in (0..node_count).map(NodeId) {
            if other == node {
                continue;
            }
            let out = scale(self.latency(node, other));
            let back = scale(self.latency(other, node));
            self.overrides.insert((node, other), out);
            self.overrides.insert((other, node), back);
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::datacenter()
    }
}

/// A declarative link-latency model, instantiated into a [`Topology`] once
/// the node layout is known.
///
/// The SRLB experiments wire one client, one load balancer and `N` backend
/// servers; the model decides the one-way latency of every pair.  Being
/// plain serde data, it travels inside experiment specs so that
/// latency-asymmetric topologies are a first-class experiment axis rather
/// than hand-wired `set_link` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyModel {
    /// Every pair of nodes shares the same one-way latency (the paper's
    /// bridged L2 segment).
    Uniform {
        /// One-way latency in microseconds.
        latency_us: u64,
    },
    /// Servers are spread round-robin across `racks` racks (server `i`
    /// lives in rack `i % racks`); load balancer `j` is attached to the
    /// top-of-rack switch of rack `j % racks` (a single LB lands in rack
    /// 0, as before the LB-tier refactor), and the client reaches the
    /// data centre over a longer edge link.
    ///
    /// The asymmetry matters for Service Hunting specifically: a SYN that
    /// is passed on travels server→server, so candidates in the same rack
    /// are cheaper to hunt through than candidates across the fabric.
    RackZone {
        /// Number of racks (must be at least 1).
        racks: usize,
        /// One-way latency between two nodes in the same rack, in
        /// microseconds.
        intra_rack_us: u64,
        /// One-way latency between two nodes in different racks, in
        /// microseconds.
        cross_rack_us: u64,
        /// One-way latency of any link touching the client, in
        /// microseconds.
        client_link_us: u64,
    },
}

impl TopologyModel {
    /// The paper's testbed: a uniform 50 µs one-way latency.
    pub fn paper() -> Self {
        TopologyModel::Uniform { latency_us: 50 }
    }

    /// A representative latency-asymmetric data centre: 4 racks, 15 µs
    /// within a rack, 80 µs across racks, 300 µs to the client.
    pub fn rack_zone_default() -> Self {
        TopologyModel::RackZone {
            racks: 4,
            intra_rack_us: 15,
            cross_rack_us: 80,
            client_link_us: 300,
        }
    }

    /// Checks the model's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first invalid parameter (currently only
    /// a zero rack count).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            TopologyModel::Uniform { .. } => Ok(()),
            TopologyModel::RackZone { racks, .. } if *racks == 0 => {
                Err("rack/zone topology needs at least one rack".into())
            }
            TopologyModel::RackZone { .. } => Ok(()),
        }
    }

    /// The rack that server index `i` lives in under this model (`0` for
    /// the uniform model).
    pub fn rack_of(&self, server_index: usize) -> usize {
        match *self {
            TopologyModel::Uniform { .. } => 0,
            TopologyModel::RackZone { racks, .. } => server_index % racks.max(1),
        }
    }

    /// Instantiates the model over a concrete layout: `client`, the load
    /// balancer tier `lbs` (one or more instances behind the same ECMP
    /// steering, see [`crate::Steering`]), and `servers[i]` as the node of
    /// backend index `i`.
    ///
    /// For the uniform model this is exactly
    /// [`Topology::uniform`]`(latency)`; the rack/zone model sets the
    /// cross-rack latency as the default and overrides intra-rack and
    /// client links pairwise, with load balancer `j` attached to rack
    /// `j % racks`.
    pub fn build(&self, client: NodeId, lbs: &[NodeId], servers: &[NodeId]) -> Topology {
        match *self {
            TopologyModel::Uniform { latency_us } => {
                Topology::uniform(SimDuration::from_micros(latency_us))
            }
            TopologyModel::RackZone {
                racks,
                intra_rack_us,
                cross_rack_us,
                client_link_us,
            } => {
                let racks = racks.max(1);
                let intra = SimDuration::from_micros(intra_rack_us);
                let edge = SimDuration::from_micros(client_link_us);
                let mut topo = Topology::uniform(SimDuration::from_micros(cross_rack_us));
                // The client is remote to everything.
                for &lb in lbs {
                    topo.set_link(client, lb, edge);
                }
                for &server in servers {
                    topo.set_link(client, server, edge);
                }
                // Load balancer `j` shares rack `j % racks`'s top-of-rack
                // switch: with its servers, and with its co-racked peers.
                for (j, &lb) in lbs.iter().enumerate() {
                    for (i, &server) in servers.iter().enumerate() {
                        if i % racks == j % racks {
                            topo.set_link(lb, server, intra);
                        }
                    }
                    for (j2, &peer) in lbs.iter().enumerate().skip(j + 1) {
                        if j % racks == j2 % racks {
                            topo.set_link(lb, peer, intra);
                        }
                    }
                }
                // Server pairs in the same rack.
                for (i, &a) in servers.iter().enumerate() {
                    for (j, &b) in servers.iter().enumerate().skip(i + 1) {
                        if i % racks == j % racks {
                            topo.set_link(a, b, intra);
                        }
                    }
                }
                topo
            }
        }
    }
}

impl Default for TopologyModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_latency_applies_to_every_pair() {
        let topo = Topology::uniform(SimDuration::from_micros(10));
        assert_eq!(
            topo.latency(NodeId(0), NodeId(5)),
            SimDuration::from_micros(10)
        );
        assert_eq!(
            topo.latency(NodeId(5), NodeId(0)),
            SimDuration::from_micros(10)
        );
        assert_eq!(topo.default_latency(), SimDuration::from_micros(10));
    }

    #[test]
    fn self_links_are_instantaneous() {
        let topo = Topology::datacenter();
        assert_eq!(topo.latency(NodeId(3), NodeId(3)), SimDuration::ZERO);
    }

    #[test]
    fn overrides_are_symmetric_by_default() {
        let mut topo = Topology::datacenter();
        topo.set_link(NodeId(0), NodeId(1), SimDuration::from_millis(5));
        assert_eq!(
            topo.latency(NodeId(0), NodeId(1)),
            SimDuration::from_millis(5)
        );
        assert_eq!(
            topo.latency(NodeId(1), NodeId(0)),
            SimDuration::from_millis(5)
        );
        assert_eq!(
            topo.latency(NodeId(0), NodeId(2)),
            SimDuration::from_micros(50)
        );
    }

    #[test]
    fn asymmetric_overrides_are_directional() {
        let mut topo = Topology::uniform(SimDuration::from_micros(1));
        topo.asymmetric()
            .set_link(NodeId(0), NodeId(1), SimDuration::from_millis(2));
        assert_eq!(
            topo.latency(NodeId(0), NodeId(1)),
            SimDuration::from_millis(2)
        );
        assert_eq!(
            topo.latency(NodeId(1), NodeId(0)),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn scale_links_of_slows_both_directions_preserving_asymmetry() {
        let mut topo = Topology::uniform(SimDuration::from_micros(10));
        topo.asymmetric()
            .set_link(NodeId(2), NodeId(1), SimDuration::from_micros(40));
        topo.scale_links_of(NodeId(1), 3.0, 4);
        // Outbound and inbound default links are tripled.
        assert_eq!(
            topo.latency(NodeId(1), NodeId(0)),
            SimDuration::from_micros(30)
        );
        assert_eq!(
            topo.latency(NodeId(0), NodeId(1)),
            SimDuration::from_micros(30)
        );
        // The asymmetric override scales from its own value.
        assert_eq!(
            topo.latency(NodeId(2), NodeId(1)),
            SimDuration::from_micros(120)
        );
        assert_eq!(
            topo.latency(NodeId(1), NodeId(2)),
            SimDuration::from_micros(30)
        );
        // Links not touching the node are untouched, as is the self-link.
        assert_eq!(
            topo.latency(NodeId(0), NodeId(2)),
            SimDuration::from_micros(10)
        );
        assert_eq!(topo.latency(NodeId(1), NodeId(1)), SimDuration::ZERO);
    }

    #[test]
    fn default_topology_is_datacenter() {
        let topo = Topology::default();
        assert_eq!(topo.default_latency(), SimDuration::from_micros(50));
    }

    #[test]
    fn uniform_model_builds_the_paper_topology() {
        let model = TopologyModel::paper();
        model.validate().unwrap();
        let servers: Vec<NodeId> = (2..6).map(NodeId).collect();
        let topo = model.build(NodeId(0), &[NodeId(1)], &servers);
        assert_eq!(
            topo.latency(NodeId(0), NodeId(4)),
            SimDuration::from_micros(50)
        );
        assert_eq!(topo.default_latency(), SimDuration::from_micros(50));
        assert_eq!(model.rack_of(7), 0);
    }

    #[test]
    fn rack_zone_model_is_latency_asymmetric() {
        let model = TopologyModel::RackZone {
            racks: 2,
            intra_rack_us: 10,
            cross_rack_us: 100,
            client_link_us: 500,
        };
        model.validate().unwrap();
        let client = NodeId(0);
        let lb = NodeId(1);
        let servers: Vec<NodeId> = (2..6).map(NodeId).collect(); // indices 0..4
        let topo = model.build(client, &[lb], &servers);

        // Servers 0 and 2 share rack 0; servers 1 and 3 share rack 1.
        assert_eq!(model.rack_of(0), 0);
        assert_eq!(model.rack_of(3), 1);
        assert_eq!(
            topo.latency(servers[0], servers[2]),
            SimDuration::from_micros(10)
        );
        assert_eq!(
            topo.latency(servers[1], servers[3]),
            SimDuration::from_micros(10)
        );
        assert_eq!(
            topo.latency(servers[0], servers[1]),
            SimDuration::from_micros(100)
        );
        // The LB sits in rack 0.
        assert_eq!(topo.latency(lb, servers[0]), SimDuration::from_micros(10));
        assert_eq!(topo.latency(lb, servers[1]), SimDuration::from_micros(100));
        // The client is remote to everything, symmetrically.
        assert_eq!(topo.latency(client, lb), SimDuration::from_micros(500));
        assert_eq!(
            topo.latency(servers[3], client),
            SimDuration::from_micros(500)
        );
    }

    #[test]
    fn rack_zone_spreads_an_lb_tier_across_racks() {
        let model = TopologyModel::RackZone {
            racks: 2,
            intra_rack_us: 10,
            cross_rack_us: 100,
            client_link_us: 500,
        };
        let client = NodeId(0);
        let lbs: Vec<NodeId> = (1..4).map(NodeId).collect(); // LB j in rack j % 2
        let servers: Vec<NodeId> = (4..8).map(NodeId).collect(); // server i in rack i % 2
        let topo = model.build(client, &lbs, &servers);

        // LB 0 (rack 0) is local to servers 0 and 2, remote to server 1.
        assert_eq!(
            topo.latency(lbs[0], servers[0]),
            SimDuration::from_micros(10)
        );
        assert_eq!(
            topo.latency(lbs[0], servers[2]),
            SimDuration::from_micros(10)
        );
        assert_eq!(
            topo.latency(lbs[0], servers[1]),
            SimDuration::from_micros(100)
        );
        // LB 1 (rack 1) is local to servers 1 and 3.
        assert_eq!(
            topo.latency(lbs[1], servers[1]),
            SimDuration::from_micros(10)
        );
        // LBs 0 and 2 share rack 0; LBs 0 and 1 do not.
        assert_eq!(topo.latency(lbs[0], lbs[2]), SimDuration::from_micros(10));
        assert_eq!(topo.latency(lbs[0], lbs[1]), SimDuration::from_micros(100));
        // Every LB is remote to the client.
        for &lb in &lbs {
            assert_eq!(topo.latency(client, lb), SimDuration::from_micros(500));
        }
    }

    #[test]
    fn rack_zone_validation_rejects_zero_racks() {
        let model = TopologyModel::RackZone {
            racks: 0,
            intra_rack_us: 1,
            cross_rack_us: 2,
            client_link_us: 3,
        };
        assert!(model.validate().is_err());
    }

    #[test]
    fn topology_model_serde_roundtrip() {
        for model in [TopologyModel::paper(), TopologyModel::rack_zone_default()] {
            let json = serde_json::to_string(&model).unwrap();
            let back: TopologyModel = serde_json::from_str(&json).unwrap();
            assert_eq!(back, model);
        }
    }
}
