//! The global event queue.
//!
//! Events are ordered by delivery time; ties are broken by insertion order
//! (FIFO), which keeps runs deterministic regardless of how many events share
//! a timestamp.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::node::{NodeId, TimerToken};
use crate::time::SimTime;

/// What an event delivers to its target node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventPayload<M> {
    /// A message from another node.
    Message {
        /// The sending node.
        from: NodeId,
        /// The message itself.
        msg: M,
    },
    /// A timer scheduled by the target node itself.
    Timer {
        /// The token the node attached when scheduling the timer.
        token: TimerToken,
    },
}

/// An event scheduled for delivery.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<M> {
    /// Delivery time.
    pub time: SimTime,
    /// Monotonic sequence number used for FIFO tie-breaking.
    pub seq: u64,
    /// Node the event is delivered to.
    pub target: NodeId,
    /// The payload.
    pub payload: EventPayload<M>,
}

impl<M> PartialEq for ScheduledEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for ScheduledEvent<M> {}

impl<M> PartialOrd for ScheduledEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for ScheduledEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of [`ScheduledEvent`]s with FIFO tie-breaking.
///
/// Events are stored **inline** in the backing binary heap — there is no
/// per-event `Box` or other indirection — so pushing and popping events on a
/// warm queue (one whose heap has already grown to its high-water mark)
/// performs no heap allocation at all.  This property is pinned by the
/// counting-allocator test in `tests/alloc_free_sim.rs`.
pub struct EventQueue<M> {
    heap: BinaryHeap<ScheduledEvent<M>>,
    next_seq: u64,
}

impl<M> fmt::Debug for EventQueue<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events, so
    /// the first `capacity` pushes never touch the allocator.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `payload` for delivery to `target` at `time`.
    pub fn push(&mut self, time: SimTime, target: NodeId, payload: EventPayload<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time,
            seq,
            target,
            payload,
        });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        self.heap.pop()
    }

    /// Delivery time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(queue: &mut EventQueue<u32>, t: u64, target: usize, m: u32) {
        queue.push(
            SimTime::from_nanos(t),
            NodeId(target),
            EventPayload::Message {
                from: NodeId(0),
                msg: m,
            },
        );
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        msg(&mut q, 30, 1, 3);
        msg(&mut q, 10, 1, 1);
        msg(&mut q, 20, 1, 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.payload {
                EventPayload::Message { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            msg(&mut q, 5, 0, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.payload {
                EventPayload::Message { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_peek() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        msg(&mut q, 42, 0, 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.scheduled_total(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn timers_and_messages_share_the_queue() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(
            SimTime::from_nanos(1),
            NodeId(0),
            EventPayload::Timer {
                token: TimerToken(9),
            },
        );
        msg(&mut q, 2, 0, 7);
        assert!(matches!(
            q.pop().unwrap().payload,
            EventPayload::Timer {
                token: TimerToken(9)
            }
        ));
        assert!(matches!(
            q.pop().unwrap().payload,
            EventPayload::Message { msg: 7, .. }
        ));
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u32> = EventQueue::default();
        assert!(q.is_empty());
        assert!(!format!("{q:?}").is_empty());
    }
}
