//! The event queue.
//!
//! Events are ordered by an [`EventKey`]: delivery time first, then the
//! *scheduling* node's id, then a per-source sequence number.  Unlike a
//! global push counter, this key is a pure function of the scheduling node's
//! own history — two runs that deliver the same callbacks to each node in the
//! same order produce bit-identical keys no matter how the engine interleaves
//! work across batches or worker shards.  That property is what lets the
//! batched and sharded execution modes reproduce the serial loop exactly.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::node::{NodeId, TimerToken};
use crate::time::SimTime;

/// What an event delivers to its target node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventPayload<M> {
    /// A message from another node.
    Message {
        /// The sending node.
        from: NodeId,
        /// The message itself.
        msg: M,
    },
    /// A timer scheduled by the target node itself.
    Timer {
        /// The token the node attached when scheduling the timer.
        token: TimerToken,
    },
}

/// Globally unique, interleaving-independent ordering key of a scheduled
/// event.
///
/// Ordering is lexicographic: `(time, src, seq)`.  `src` is the node that
/// *scheduled* the event and `seq` is that node's private scheduling counter,
/// so the key depends only on the scheduling node's own callback history —
/// never on how the engine happened to interleave other nodes' work.  Keys
/// are globally unique because each node's counter never repeats a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Delivery time.
    pub time: SimTime,
    /// The node that scheduled the event (tie-break #1).
    pub src: NodeId,
    /// The scheduling node's private sequence counter (tie-break #2; FIFO
    /// per source).
    pub seq: u64,
}

/// An event scheduled for delivery.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<M> {
    /// Ordering key (delivery time + scheduling source + per-source seq).
    pub key: EventKey,
    /// Node the event is delivered to.
    pub target: NodeId,
    /// The payload.
    pub payload: EventPayload<M>,
}

impl<M> PartialEq for ScheduledEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<M> Eq for ScheduledEvent<M> {}

impl<M> PartialOrd for ScheduledEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for ScheduledEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed key order, matching the queue's pop order (smallest key
        // first).
        other.key.cmp(&self.key)
    }
}

/// A heap entry: the ordering key plus the slab slot holding the event's
/// body.  Entries are small (32 bytes) and `Copy`, so heap sift operations
/// move fixed-size keys instead of full message payloads — for a packet-level
/// simulation the payload is an order of magnitude larger, and the heap is
/// the engine's hottest data structure.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    key: EventKey,
    slot: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.key, self.slot) == (other.key, other.slot)
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the smallest key pops first.
        // Keys are globally unique; the slot tie-break only keeps the order
        // total for hypothetical duplicates.
        (other.key, other.slot).cmp(&(self.key, self.slot))
    }
}

/// The slab-stored part of a scheduled event (everything but the key).
struct EventBody<M> {
    target: NodeId,
    payload: EventPayload<M>,
}

/// A key-ordered queue of [`ScheduledEvent`]s.
///
/// Event bodies live in a free-listed slab; the binary heap orders small
/// `(key, slot)` entries, so sift operations never move message payloads.
/// No per-event `Box` is involved and freed slots are reused, so pushing and
/// popping events on a warm queue (one whose heap and slab have already
/// grown to their high-water mark) performs no heap allocation at all.  This
/// property is pinned by the counting-allocator test in
/// `tests/alloc_free_sim.rs`.
///
/// Because [`EventKey`]s are globally unique, the pop order is a pure
/// function of the *set* of pending events — independent of insertion order —
/// which is what makes cross-shard event exchange deterministic.
pub struct EventQueue<M> {
    heap: BinaryHeap<HeapEntry>,
    bodies: Vec<Option<EventBody<M>>>,
    free: Vec<u32>,
    admitted: u64,
}

impl<M> fmt::Debug for EventQueue<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("admitted", &self.admitted)
            .finish()
    }
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            bodies: Vec::new(),
            free: Vec::new(),
            admitted: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events, so
    /// the first `capacity` pushes never touch the allocator.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            bodies: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            admitted: 0,
        }
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity().min(self.bodies.capacity())
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
        self.bodies.reserve(additional);
        self.free.reserve(additional);
    }

    /// Stores an event body, reusing a freed slab slot when one exists.
    fn store(&mut self, target: NodeId, payload: EventPayload<M>) -> u32 {
        let body = EventBody { target, payload };
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.bodies[slot as usize].is_none());
                self.bodies[slot as usize] = Some(body);
                slot
            }
            None => {
                let slot = u32::try_from(self.bodies.len()).expect("fewer than 2^32 pending"); // srlb-lint: allow(panic-hygiene) -- 2^32 pending events exceeds any feasible memory budget; overflow is unreachable in practice
                self.bodies.push(Some(body));
                slot
            }
        }
    }

    /// Schedules `payload` for delivery to `target`, ordered by `key`.
    pub fn push(&mut self, key: EventKey, target: NodeId, payload: EventPayload<M>) {
        self.admitted += 1;
        let slot = self.store(target, payload);
        self.heap.push(HeapEntry { key, slot });
    }

    /// Admits an already-built event (first entry into this queue — counted
    /// in [`EventQueue::scheduled_total`]).  Used when a worker shard ingests
    /// an event that a *different* shard scheduled.
    pub fn admit(&mut self, event: ScheduledEvent<M>) {
        self.push(event.key, event.target, event.payload);
    }

    /// Re-inserts an event that was previously popped from **this** queue,
    /// preserving its key.  Unlike [`EventQueue::admit`] this does not count
    /// towards [`EventQueue::scheduled_total`].
    pub fn restore(&mut self, event: ScheduledEvent<M>) {
        let slot = self.store(event.target, event.payload);
        self.heap.push(HeapEntry {
            key: event.key,
            slot,
        });
    }

    /// Pops the earliest event if its delivery time is at or before `bound`
    /// (no bound = always): a single fused peek-and-pop, the batched engine
    /// loop's per-event queue operation.
    pub fn pop_within(&mut self, bound: Option<SimTime>) -> Option<ScheduledEvent<M>> {
        let entry = self.heap.peek()?;
        if bound.is_some_and(|u| entry.key.time > u) {
            return None;
        }
        self.pop()
    }

    /// Removes and returns the event with the smallest key.
    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        let entry = self.heap.pop()?;
        let body = self.bodies[entry.slot as usize]
            .take()
            // srlb-lint: allow(panic-hygiene) -- slab invariant: a slot is freed only when its heap entry is popped, so a live entry always has a body
            .expect("heap entry points at a live slab slot");
        self.free.push(entry.slot);
        Some(ScheduledEvent {
            key: entry.key,
            target: body.target,
            payload: body.payload,
        })
    }

    /// Pops every pending event whose delivery time equals `time` into
    /// `out` (cleared first), in ascending key order.
    pub fn pop_ties_into(&mut self, time: SimTime, out: &mut Vec<ScheduledEvent<M>>) {
        out.clear();
        while self.peek_time() == Some(time) {
            out.push(self.pop().expect("peeked event exists")); // srlb-lint: allow(panic-hygiene) -- peek_time returned Some on this very iteration, so pop cannot be empty
        }
    }

    /// Delivery time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.time)
    }

    /// Ordering key of the earliest event, if any.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|e| e.key)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on (or ingested into) this
    /// queue.  Re-insertions via [`EventQueue::restore`] are not counted.
    pub fn scheduled_total(&self) -> u64 {
        self.admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, src: usize, seq: u64) -> EventKey {
        EventKey {
            time: SimTime::from_nanos(t),
            src: NodeId(src),
            seq,
        }
    }

    fn msg(queue: &mut EventQueue<u32>, k: EventKey, target: usize, m: u32) {
        queue.push(
            k,
            NodeId(target),
            EventPayload::Message {
                from: k.src,
                msg: m,
            },
        );
    }

    fn drain(q: &mut EventQueue<u32>) -> Vec<u32> {
        std::iter::from_fn(|| q.pop())
            .map(|e| match e.payload {
                EventPayload::Message { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        msg(&mut q, key(30, 0, 0), 1, 3);
        msg(&mut q, key(10, 0, 1), 1, 1);
        msg(&mut q, key(20, 0, 2), 1, 2);
        assert_eq!(drain(&mut q), vec![1, 2, 3]);
    }

    #[test]
    fn same_source_ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            msg(&mut q, key(5, 0, i as u64), 0, i);
        }
        assert_eq!(drain(&mut q), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cross_source_ties_order_by_source_then_seq() {
        let mut q = EventQueue::new();
        msg(&mut q, key(5, 2, 0), 0, 20);
        msg(&mut q, key(5, 1, 1), 0, 11);
        msg(&mut q, key(5, 1, 0), 0, 10);
        assert_eq!(drain(&mut q), vec![10, 11, 20]);
    }

    #[test]
    fn pop_order_is_independent_of_insertion_order() {
        // The same *set* of events pops identically no matter the push order
        // — the property cross-shard ingestion relies on.
        let keys = [key(5, 3, 0), key(5, 1, 7), key(4, 9, 2), key(5, 1, 6)];
        let mut forward = EventQueue::new();
        let mut backward = EventQueue::new();
        for (i, &k) in keys.iter().enumerate() {
            msg(&mut forward, k, 0, i as u32);
        }
        for (i, &k) in keys.iter().enumerate().rev() {
            msg(&mut backward, k, 0, i as u32);
        }
        assert_eq!(drain(&mut forward), drain(&mut backward));
    }

    #[test]
    fn pop_ties_into_drains_exactly_one_timestamp() {
        let mut q = EventQueue::new();
        msg(&mut q, key(5, 0, 0), 0, 1);
        msg(&mut q, key(5, 1, 0), 0, 2);
        msg(&mut q, key(6, 0, 1), 0, 3);
        let mut out = Vec::new();
        q.pop_ties_into(SimTime::from_nanos(5), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].key, key(5, 0, 0));
        assert_eq!(out[1].key, key(5, 1, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(6)));
    }

    #[test]
    fn restore_preserves_key_and_is_not_recounted() {
        let mut q = EventQueue::new();
        msg(&mut q, key(5, 0, 0), 0, 1);
        msg(&mut q, key(6, 0, 1), 0, 2);
        let first = q.pop().unwrap();
        q.restore(first);
        assert_eq!(q.scheduled_total(), 2, "restore does not re-count");
        assert_eq!(drain(&mut q), vec![1, 2]);
    }

    #[test]
    fn len_and_peek() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.peek_key(), None);
        msg(&mut q, key(42, 7, 3), 0, 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.peek_key(), Some(key(42, 7, 3)));
        assert_eq!(q.scheduled_total(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn timers_and_messages_share_the_queue() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(
            key(1, 0, 0),
            NodeId(0),
            EventPayload::Timer {
                token: TimerToken(9),
            },
        );
        msg(&mut q, key(2, 0, 1), 0, 7);
        assert!(matches!(
            q.pop().unwrap().payload,
            EventPayload::Timer {
                token: TimerToken(9)
            }
        ));
        assert!(matches!(
            q.pop().unwrap().payload,
            EventPayload::Message { msg: 7, .. }
        ));
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u32> = EventQueue::default();
        assert!(q.is_empty());
        assert!(!format!("{q:?}").is_empty());
    }
}
