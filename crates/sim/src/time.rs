//! Simulated time.
//!
//! Time is represented as an integer number of nanoseconds since the start of
//! the simulation, so that the event queue ordering is exact (no floating
//! point drift) and results are bit-for-bit reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from raw nanoseconds.
    pub fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds a time from seconds (fractional seconds allowed).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "time must be non-negative");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`; saturates at zero if `earlier` is
    /// in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw nanoseconds.
    pub fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Builds a duration from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be non-negative"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Builds a duration from fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns true if the duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(100).as_millis_f64(), 100.0);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimTime::from_secs_f64(2.0).as_nanos(), 2_000_000_000);
        assert!((SimTime::from_nanos(1_500_000).as_millis_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_nanos(), 10_000_000);
        let mut t2 = t;
        t2 += SimDuration::from_millis(5);
        assert_eq!((t2 - t).as_millis_f64(), 5.0);
        assert_eq!(t2.duration_since(t), SimDuration::from_millis(5));
        // saturating in the other direction
        assert_eq!(t.duration_since(t2), SimDuration::ZERO);
        assert_eq!(
            t2.checked_sub(SimDuration::from_millis(15)),
            Some(SimTime::ZERO)
        );
        assert_eq!(t.checked_sub(SimDuration::from_millis(15)), None);
        assert_eq!(
            SimDuration::from_millis(4) * 3,
            SimDuration::from_millis(12)
        );
        assert_eq!(
            SimDuration::from_millis(12) / 4,
            SimDuration::from_millis(3)
        );
        let mut d = SimDuration::from_millis(1);
        d += SimDuration::from_millis(2);
        assert_eq!(d, SimDuration::from_millis(3));
        assert_eq!(d - SimDuration::from_millis(1), SimDuration::from_millis(2));
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert!(SimDuration::from_nanos(1) < SimDuration::from_nanos(2));
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_nanos(1).is_zero());
    }

    #[test]
    fn display_picks_readable_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7.000us");
        assert_eq!(SimDuration::from_nanos(9).to_string(), "9ns");
        assert!(SimTime::from_secs_f64(1.25).to_string().contains("1.25"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
