//! Fault injection at the delivery path: lossy links, deterministic
//! one-shot drops, link down/up windows and per-link bounded queues.
//!
//! A [`FaultConfig`] is plain serde data describing *what can go wrong* on
//! the wire; it is installed into a [`SimCore`](crate::SimCore) before the
//! run starts and consulted once per message delivery.  A message judged
//! faulty is silently consumed (the network lost it) and counted by cause
//! in [`SimStats`](crate::SimStats); timers and self-addressed messages are
//! never faulted.
//!
//! # Determinism across execution modes
//!
//! Every decision is independent of thread interleaving:
//!
//! * **Probabilistic loss** is a pure hash of the event's globally unique
//!   [`EventKey`] (plus the run seed) — the same coin lands the same way on
//!   any shard, in any order, and draws *nothing* from node RNG streams, so
//!   a zero-loss run is byte-identical to a run with no fault layer at all.
//! * **Stateful faults** (one-shot drops, bounded queues) keep their state
//!   per directed link.  All deliveries over a link happen on the core that
//!   owns the destination node and are processed in global key order, so
//!   the per-link state evolves identically under any shard count.  For
//!   this reason stateful rules require *concrete* endpoints, while the
//!   stateless rules accept wildcards.
//! * **Down windows** are pure functions of the delivery time.
//!
//! The zero-fault path costs a single branch per delivery and the warm
//! fault path performs no allocation (all rule tables are built at install
//! time), which `crates/sim/tests/alloc_free_sim.rs` pins.

use serde::{Deserialize, Serialize};

use crate::event::EventKey;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// Matches a directed link `from → to`; `None` endpoints are wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LinkMatch {
    /// Sending node (`None` matches any sender).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub from: Option<NodeId>,
    /// Receiving node (`None` matches any receiver).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub to: Option<NodeId>,
}

impl LinkMatch {
    /// Whether the directed link `from → to` is matched.
    pub fn matches(&self, from: NodeId, to: NodeId) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// Independent per-message loss on matching links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossRule {
    /// Which links the rule applies to.
    pub link: LinkMatch,
    /// Per-message drop probability in `[0, 1]`.
    pub probability: f64,
}

/// Deterministically drops the `packet`-th message (1-based) delivered over
/// one concrete link, once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneShotDrop {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// 1-based index of the doomed message among the link's deliveries.
    pub packet: u64,
}

/// Matching links drop every message inside the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DownWindow {
    /// Which links go down.
    pub link: LinkMatch,
    /// First instant of the outage (inclusive).
    pub down_from: SimTime,
    /// End of the outage (exclusive; messages delivered at this instant go
    /// through).
    pub down_until: SimTime,
}

/// A bounded FIFO on one concrete link: messages arriving while `capacity`
/// are already queued are tail-dropped.
///
/// The queue is a fluid model evaluated at each arrival — occupancy drains
/// at one message per `service` of elapsed simulated time — so it never
/// reschedules events or changes delivery latencies (event keys, and with
/// them the conservative-window protocol, stay untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueRule {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Maximum number of queued messages before tail drop.
    pub capacity: u64,
    /// Time to drain one queued message.
    pub service: SimDuration,
}

/// A complete fault description for one run.
///
/// The default (empty) config injects nothing; [`FaultConfig::is_empty`]
/// lets spec layers skip serialising it so committed files stay
/// byte-stable.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probabilistic per-link loss rules (first matching rule wins).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub loss: Vec<LossRule>,
    /// Deterministic one-shot drops.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub drops: Vec<OneShotDrop>,
    /// Link down/up windows.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub down: Vec<DownWindow>,
    /// Per-link bounded queues.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub queues: Vec<QueueRule>,
}

impl FaultConfig {
    /// Whether the config injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.loss.is_empty()
            && self.drops.is_empty()
            && self.down.is_empty()
            && self.queues.is_empty()
    }

    /// Checks the config's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first invalid parameter: a loss
    /// probability outside `[0, 1]`, a zero one-shot packet index, an
    /// inverted down window, or a queue without capacity or service time.
    pub fn validate(&self) -> Result<(), String> {
        for rule in &self.loss {
            if !rule.probability.is_finite() || !(0.0..=1.0).contains(&rule.probability) {
                return Err(format!(
                    "loss probability {} must be within [0, 1]",
                    rule.probability
                ));
            }
        }
        for drop in &self.drops {
            if drop.packet == 0 {
                return Err("one-shot drop indices are 1-based; 0 names no packet".into());
            }
        }
        for window in &self.down {
            if window.down_until <= window.down_from {
                return Err(format!(
                    "down window [{}, {}) is empty or inverted",
                    window.down_from, window.down_until
                ));
            }
        }
        for queue in &self.queues {
            if queue.capacity == 0 {
                return Err("a bounded queue needs capacity for at least one message".into());
            }
            if queue.service.is_zero() {
                return Err("a bounded queue needs a positive service time".into());
            }
        }
        Ok(())
    }
}

/// Why the fault layer consumed a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// An injected drop: a probabilistic loss rule fired or a one-shot drop
    /// named this delivery.
    Injected,
    /// The link's bounded queue was full (tail drop).
    Queue,
    /// The link was inside a down window.
    LinkDown,
}

/// Mutable per-link state for the stateful rules, keyed by concrete link.
#[derive(Debug)]
struct LinkState {
    from: NodeId,
    to: NodeId,
    /// Messages seen on this link so far (including dropped ones).
    seen: u64,
    /// Pending one-shot drop indices, sorted descending so the next one to
    /// fire is popped off the back.
    drops: Vec<u64>,
    queue: Option<QueueState>,
}

/// Fluid bounded-queue occupancy, advanced lazily at each arrival.
#[derive(Debug)]
struct QueueState {
    capacity: u64,
    service: SimDuration,
    level: u64,
    /// The instant the drain accounting has been advanced to.
    drained_until: SimTime,
}

impl QueueState {
    /// Advances the drain clock to `now` and admits or tail-drops one
    /// arriving message.
    fn admit(&mut self, now: SimTime) -> bool {
        let elapsed = now.duration_since(self.drained_until);
        let drained = elapsed.as_nanos() / self.service.as_nanos();
        if drained >= self.level {
            self.level = 0;
            // An idle queue's next service interval starts at the arrival.
            self.drained_until = now;
        } else {
            self.level -= drained;
            self.drained_until += self.service * drained;
        }
        if self.level >= self.capacity {
            return false;
        }
        self.level += 1;
        true
    }
}

/// The runtime form of a [`FaultConfig`], held by a
/// [`SimCore`](crate::SimCore) and consulted once per message delivery.
#[derive(Debug)]
pub(crate) struct FaultState {
    /// Run-seed-derived salt for the loss hash, so distinct seeds lose
    /// distinct packets.
    salt: u64,
    loss: Vec<LossRule>,
    down: Vec<DownWindow>,
    links: Vec<LinkState>,
}

/// One round of SplitMix64-style finalisation (the same mixing family the
/// RNG forking uses).
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultState {
    /// Compiles a config (assumed validated) against the run seed.
    pub(crate) fn new(config: &FaultConfig, seed: u64) -> Self {
        let mut links: Vec<LinkState> = Vec::new();
        let link_state = |from: NodeId, to: NodeId, links: &mut Vec<LinkState>| -> usize {
            if let Some(i) = links.iter().position(|l| l.from == from && l.to == to) {
                return i;
            }
            links.push(LinkState {
                from,
                to,
                seen: 0,
                drops: Vec::new(),
                queue: None,
            });
            links.len() - 1
        };
        for drop in &config.drops {
            let i = link_state(drop.from, drop.to, &mut links);
            links[i].drops.push(drop.packet);
        }
        for state in &mut links {
            state.drops.sort_unstable_by(|a, b| b.cmp(a));
            state.drops.dedup();
        }
        for queue in &config.queues {
            let i = link_state(queue.from, queue.to, &mut links);
            links[i].queue = Some(QueueState {
                capacity: queue.capacity,
                service: queue.service,
                level: 0,
                drained_until: SimTime::ZERO,
            });
        }
        FaultState {
            salt: mix(seed ^ 0x9e37_79b9_7f4a_7c15),
            loss: config.loss.clone(),
            down: config.down.clone(),
            links,
        }
    }

    /// The interleaving-independent loss coin for one delivery: a pure hash
    /// of the (globally unique) event key, the receiver and the run seed,
    /// mapped to `[0, 1)`.
    fn coin(&self, key: EventKey, to: NodeId) -> f64 {
        let mut h = self.salt;
        for v in [key.time.as_nanos(), key.src.0 as u64, key.seq, to.0 as u64] {
            h = mix(h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        // 53 mantissa bits → uniform in [0, 1).
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Judges one message delivery over the link `key.src → to` at time
    /// `now`; `Some(cause)` means the network lost the message.
    pub(crate) fn judge(&mut self, key: EventKey, to: NodeId, now: SimTime) -> Option<DropCause> {
        let from = key.src;
        if from == to {
            return None; // loopback never traverses a faulty link
        }
        for window in &self.down {
            if window.link.matches(from, to) && now >= window.down_from && now < window.down_until {
                return Some(DropCause::LinkDown);
            }
        }
        // Per-link mutable state: the delivery counter advances for every
        // message that reaches this point, so one-shot indices count the
        // link's traffic as the sender emitted it.
        if let Some(i) = self.links.iter().position(|l| l.from == from && l.to == to) {
            let state = &mut self.links[i];
            state.seen += 1;
            if state.drops.last() == Some(&state.seen) {
                state.drops.pop();
                return Some(DropCause::Injected);
            }
        }
        if !self.loss.is_empty() {
            if let Some(rule) = self.loss.iter().find(|r| r.link.matches(from, to)) {
                if self.coin(key, to) < rule.probability {
                    return Some(DropCause::Injected);
                }
            }
        }
        if let Some(i) = self.links.iter().position(|l| l.from == from && l.to == to) {
            if let Some(queue) = self.links[i].queue.as_mut() {
                if !queue.admit(now) {
                    return Some(DropCause::Queue);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(nanos: u64, src: usize, seq: u64) -> EventKey {
        EventKey {
            time: SimTime::from_nanos(nanos),
            src: NodeId(src),
            seq,
        }
    }

    #[test]
    fn empty_config_is_empty_and_valid() {
        let config = FaultConfig::default();
        assert!(config.is_empty());
        config.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut config = FaultConfig::default();
        config.loss.push(LossRule {
            link: LinkMatch::default(),
            probability: 1.5,
        });
        assert!(config.validate().is_err());

        let mut config = FaultConfig::default();
        config.drops.push(OneShotDrop {
            from: NodeId(0),
            to: NodeId(1),
            packet: 0,
        });
        assert!(config.validate().is_err());

        let mut config = FaultConfig::default();
        config.down.push(DownWindow {
            link: LinkMatch::default(),
            down_from: SimTime::from_nanos(5),
            down_until: SimTime::from_nanos(5),
        });
        assert!(config.validate().is_err());

        let mut config = FaultConfig::default();
        config.queues.push(QueueRule {
            from: NodeId(0),
            to: NodeId(1),
            capacity: 0,
            service: SimDuration::from_micros(1),
        });
        assert!(config.validate().is_err());
    }

    #[test]
    fn loss_coin_is_a_pure_function_of_the_key() {
        let config = FaultConfig {
            loss: vec![LossRule {
                link: LinkMatch::default(),
                probability: 0.5,
            }],
            ..FaultConfig::default()
        };
        let mut a = FaultState::new(&config, 7);
        let mut b = FaultState::new(&config, 7);
        let mut dropped = 0u32;
        for seq in 0..1_000u64 {
            let k = key(1_000 + seq * 50, 2, seq);
            let va = a.judge(k, NodeId(3), k.time);
            let vb = b.judge(k, NodeId(3), k.time);
            assert_eq!(va, vb, "the coin must not depend on call history");
            if va.is_some() {
                dropped += 1;
            }
        }
        // Binomial(1000, 0.5): anything outside [400, 600] is ~2e-10.
        assert!((400..=600).contains(&dropped), "{dropped} of 1000 dropped");

        // A different seed loses a different packet set.
        let mut c = FaultState::new(&config, 8);
        let diverges = (0..1_000u64).any(|seq| {
            let k = key(1_000 + seq * 50, 2, seq);
            c.judge(k, NodeId(3), k.time) != b.judge(k, NodeId(3), k.time)
        });
        assert!(diverges, "distinct seeds must lose distinct packets");
    }

    #[test]
    fn loss_extremes_always_or_never_drop() {
        for (p, expect_drop) in [(0.0, false), (1.0, true)] {
            let config = FaultConfig {
                loss: vec![LossRule {
                    link: LinkMatch::default(),
                    probability: p,
                }],
                ..FaultConfig::default()
            };
            let mut state = FaultState::new(&config, 1);
            for seq in 0..100u64 {
                let k = key(seq * 10, 0, seq);
                assert_eq!(
                    state.judge(k, NodeId(1), k.time).is_some(),
                    expect_drop,
                    "p = {p}"
                );
            }
        }
    }

    #[test]
    fn loss_rules_respect_link_matchers_and_loopback() {
        let config = FaultConfig {
            loss: vec![LossRule {
                link: LinkMatch {
                    from: Some(NodeId(0)),
                    to: Some(NodeId(1)),
                },
                probability: 1.0,
            }],
            ..FaultConfig::default()
        };
        let mut state = FaultState::new(&config, 1);
        let k = key(100, 0, 0);
        assert!(state.judge(k, NodeId(1), k.time).is_some());
        assert!(state.judge(k, NodeId(2), k.time).is_none(), "other link");
        let self_k = key(100, 1, 0);
        assert!(
            state.judge(self_k, NodeId(1), self_k.time).is_none(),
            "loopback is exempt even under p = 1"
        );
    }

    #[test]
    fn one_shot_drop_fires_exactly_once_at_its_index() {
        let config = FaultConfig {
            drops: vec![OneShotDrop {
                from: NodeId(0),
                to: NodeId(1),
                packet: 3,
            }],
            ..FaultConfig::default()
        };
        let mut state = FaultState::new(&config, 1);
        let verdicts: Vec<bool> = (0..6u64)
            .map(|seq| {
                let k = key(100 + seq * 10, 0, seq);
                state.judge(k, NodeId(1), k.time).is_some()
            })
            .collect();
        assert_eq!(verdicts, vec![false, false, true, false, false, false]);
    }

    #[test]
    fn down_window_is_half_open() {
        let config = FaultConfig {
            down: vec![DownWindow {
                link: LinkMatch::default(),
                down_from: SimTime::from_nanos(100),
                down_until: SimTime::from_nanos(200),
            }],
            ..FaultConfig::default()
        };
        let mut state = FaultState::new(&config, 1);
        for (nanos, down) in [(99, false), (100, true), (199, true), (200, false)] {
            let k = key(nanos, 0, nanos);
            assert_eq!(
                state.judge(k, NodeId(1), k.time),
                down.then_some(DropCause::LinkDown),
                "t = {nanos}"
            );
        }
    }

    #[test]
    fn bounded_queue_tail_drops_and_drains() {
        let config = FaultConfig {
            queues: vec![QueueRule {
                from: NodeId(0),
                to: NodeId(1),
                capacity: 2,
                service: SimDuration::from_nanos(100),
            }],
            ..FaultConfig::default()
        };
        let mut state = FaultState::new(&config, 1);
        let mut seq = 0u64;
        let mut judge = |state: &mut FaultState, nanos: u64| {
            let k = key(nanos, 0, seq);
            seq += 1;
            state.judge(k, NodeId(1), k.time)
        };
        // Three back-to-back arrivals: the third finds the queue full.
        assert_eq!(judge(&mut state, 10), None);
        assert_eq!(judge(&mut state, 10), None);
        assert_eq!(judge(&mut state, 10), Some(DropCause::Queue));
        // After one service interval a slot has drained.
        assert_eq!(judge(&mut state, 115), None);
        assert_eq!(judge(&mut state, 116), Some(DropCause::Queue));
        // A long idle period empties the queue entirely.
        assert_eq!(judge(&mut state, 10_000), None);
        assert_eq!(judge(&mut state, 10_000), None);
    }

    #[test]
    fn config_serde_roundtrip_skips_empty_sections() {
        let config = FaultConfig {
            loss: vec![LossRule {
                link: LinkMatch {
                    from: None,
                    to: Some(NodeId(4)),
                },
                probability: 0.01,
            }],
            ..FaultConfig::default()
        };
        let json = serde_json::to_string(&config).unwrap();
        assert!(
            !json.contains("drops"),
            "empty sections are skipped: {json}"
        );
        assert!(!json.contains("\"from\""), "wildcard endpoints are skipped");
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }
}
