//! # srlb-scenario — dynamic-cluster scenario engine
//!
//! The paper's evaluation (§VII) runs on a *static* 12-server cluster, but
//! SRLB's core mechanisms — per-connection consistency from in-band SYN-ACK
//! learning and hash-based candidate selection — only pay off when the
//! cluster *changes*.  This crate makes those dynamics first-class:
//!
//! * [`Scenario`] / [`ScenarioEvent`] — a declarative, serde-serialisable
//!   schedule of timed control events (server add/remove under load,
//!   load-balancer failover, capacity re-provisioning) over a cluster
//!   specification ([`ClusterSpec`]) that supports heterogeneous capacities
//!   and multiple VIPs sharing one backend pool,
//! * canned presets — [`Scenario::lb_failover`],
//!   [`Scenario::rolling_upgrade`], [`Scenario::scale_out_2x`],
//!   [`Scenario::correlated_failures`], and [`Scenario::ecmp_reshuffle`]
//!   (a multi-instance LB tier behind resilient ECMP steering with one
//!   instance withdrawn mid-run),
//! * [`run`] — the engine: it advances the simulation in segments between
//!   event timestamps and applies each control action through the
//!   simulator's control-delivery primitives, keeping runs bit-for-bit
//!   deterministic,
//! * [`ScenarioOutcome`] / [`ScenarioReport`] — disruption metrics: broken
//!   and re-routed connections, flow-table reconstruction latency, and
//!   per-phase fairness ([`srlb_metrics::DisruptionCollector`]).
//!
//! ## Example
//!
//! ```
//! use srlb_scenario::{run, Scenario};
//! use srlb_core::dispatch::DispatcherConfig;
//!
//! // A small LB-failover run with consistent-hash candidate selection.
//! let scenario = Scenario::lb_failover(
//!     DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 },
//!     200,
//! );
//! let outcome = run(&scenario).expect("scenario is valid");
//! assert_eq!(outcome.lb_stats.failovers, 1);
//! // In-band SYN-ACK reconstruction: no established connection is lost.
//! assert_eq!(outcome.broken_established(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod schedule;

pub use engine::{run, ScenarioError, ScenarioOutcome, ScenarioReport};
pub use schedule::{
    CapacityOverride, ClusterSpec, Scenario, ScenarioEvent, TimedEvent, WorkloadSpec,
};
