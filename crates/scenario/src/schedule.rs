//! The declarative scenario schema: a cluster specification, a workload,
//! and a time-ordered schedule of control events.
//!
//! A [`Scenario`] is plain data (serde-serialisable), so dynamic-cluster
//! experiments can be described in JSON, checked into a repository, and
//! replayed bit-for-bit.  The [presets](Scenario::lb_failover) cover the
//! cases the paper's static testbed leaves out: load-balancer failover,
//! rolling upgrades, scale-out under load.

use serde::{Deserialize, Serialize};

use srlb_core::dispatch::DispatcherConfig;
use srlb_server::PolicyConfig;

/// A control action injected into a running experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScenarioEvent {
    /// Brings up the backend with the given index (fresh state), which must
    /// currently be down, and rebuilds the dispatcher over the grown set.
    AddServer {
        /// Index of the server (must be `< max_servers`).
        server: u32,
    },
    /// Removes the backend with the given index abruptly (its established
    /// connections are lost) and rebuilds the dispatcher over the shrunk
    /// set.
    RemoveServer {
        /// Index of the server to remove.
        server: u32,
    },
    /// Fails the load balancer over to a cold standby at the same address:
    /// the flow table is lost and must be reconstructed in-band.
    LbFailover,
    /// Re-provisions a live backend's capacity (workers and cores) without
    /// interrupting running requests.
    SetCapacity {
        /// Index of the server to re-provision.
        server: u32,
        /// New worker-thread count.
        workers: usize,
        /// New CPU core count.
        cores: usize,
    },
}

impl ScenarioEvent {
    /// A short label naming the event (used for phase labels in reports).
    pub fn label(&self) -> String {
        match self {
            ScenarioEvent::AddServer { server } => format!("add-server-{server}"),
            ScenarioEvent::RemoveServer { server } => format!("remove-server-{server}"),
            ScenarioEvent::LbFailover => "lb-failover".to_string(),
            ScenarioEvent::SetCapacity {
                server,
                workers,
                cores,
            } => format!("set-capacity-{server}-{workers}w{cores}c"),
        }
    }
}

/// A [`ScenarioEvent`] scheduled at an absolute simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// When the event fires, in seconds since the start of the run.  All
    /// packet events at or before this instant are delivered first.
    pub at_seconds: f64,
    /// The control action.
    pub event: ScenarioEvent,
}

/// Initial capacity override for one backend (heterogeneous clusters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityOverride {
    /// Index of the server.
    pub server: u32,
    /// Worker threads (instead of the cluster-wide default).
    pub workers: usize,
    /// CPU cores (instead of the cluster-wide default).
    pub cores: usize,
}

/// Static description of the cluster a scenario runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Backends alive when the run starts.
    pub initial_servers: usize,
    /// Upper bound on the backend count (fixes the address/node-id layout;
    /// `AddServer` events may only name indices below this).
    pub max_servers: usize,
    /// Default worker threads per backend.
    pub workers: usize,
    /// Default CPU cores per backend.
    pub cores: usize,
    /// TCP backlog per backend.
    pub backlog: usize,
    /// Per-backend initial capacity overrides (heterogeneous clusters).
    pub capacity_overrides: Vec<CapacityOverride>,
    /// Connection-acceptance policy run on every backend.
    pub policy: PolicyConfig,
    /// Candidate-selection policy at the load balancer.
    pub dispatcher: DispatcherConfig,
    /// Number of VIPs sharing the cluster (requests are assigned round-robin
    /// by request id).
    pub vips: u32,
    /// One-way link latency between any two nodes, in microseconds.
    pub link_latency_us: u64,
    /// Whether the load balancer reconstructs lost flow-table entries
    /// in-band (re-hunt on miss + server ownership adverts).
    pub recover_flows: bool,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            initial_servers: 8,
            max_servers: 8,
            workers: 16,
            cores: 2,
            backlog: 64,
            capacity_overrides: Vec::new(),
            policy: PolicyConfig::Static { threshold: 4 },
            dispatcher: DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 },
            vips: 1,
            link_latency_us: 50,
            recover_flows: true,
        }
    }
}

impl ClusterSpec {
    /// The initial `(workers, cores)` of server `index`, honouring
    /// overrides.
    pub fn capacity_of(&self, index: u32) -> (usize, usize) {
        self.capacity_overrides
            .iter()
            .find(|o| o.server == index)
            .map_or((self.workers, self.cores), |o| (o.workers, o.cores))
    }
}

/// The open-loop Poisson workload a scenario drives through the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Total number of queries.
    pub queries: usize,
    /// Arrival rate in queries per second.
    pub rate_qps: f64,
    /// Mean (exponential) service time in milliseconds.
    pub mean_service_ms: f64,
    /// Client think time between the handshake completing and the HTTP
    /// request, in milliseconds.  A non-zero value keeps connections
    /// *established but quiescent* for a realistic window — the state that
    /// a load-balancer failover actually disrupts (their next packet hits
    /// the rebuilt flow table).
    pub request_delay_ms: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            queries: 800,
            rate_qps: 96.0,
            mean_service_ms: 100.0,
            request_delay_ms: 200.0,
        }
    }
}

impl WorkloadSpec {
    /// Approximate time at which the last request is sent (seconds).
    pub fn send_window_seconds(&self) -> f64 {
        self.queries as f64 / self.rate_qps
    }
}

/// A complete, declarative scenario: cluster + workload + event schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Name used in reports and file names.
    pub name: String,
    /// Random seed (workload generation and candidate selection).
    pub seed: u64,
    /// The cluster description.
    pub cluster: ClusterSpec,
    /// The workload.
    pub workload: WorkloadSpec,
    /// Control events, sorted by time.
    pub events: Vec<TimedEvent>,
}

impl Scenario {
    /// Creates a scenario with the default cluster and workload and an empty
    /// schedule.
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            seed: 1,
            cluster: ClusterSpec::default(),
            workload: WorkloadSpec::default(),
            events: Vec::new(),
        }
    }

    /// Overrides the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the cluster spec (builder style).
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Overrides the dispatcher (builder style).
    pub fn with_dispatcher(mut self, dispatcher: DispatcherConfig) -> Self {
        self.cluster.dispatcher = dispatcher;
        self
    }

    /// Overrides the workload (builder style).
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Overrides the query count, keeping the configured rate (builder
    /// style).
    pub fn with_queries(mut self, queries: usize) -> Self {
        self.workload.queries = queries;
        self
    }

    /// Appends a control event at `at_seconds` (builder style).  Events must
    /// be appended in chronological order.
    pub fn at(mut self, at_seconds: f64, event: ScenarioEvent) -> Self {
        self.events.push(TimedEvent { at_seconds, event });
        self
    }

    /// Checks the scenario for consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first problem found: empty or
    /// oversized cluster, unsorted or out-of-range events, an `AddServer`
    /// for a live index, a `RemoveServer` for a dead one, or a schedule that
    /// leaves the cluster empty.
    pub fn validate(&self) -> Result<(), String> {
        let c = &self.cluster;
        if c.initial_servers == 0 {
            return Err("at least one initial server is required".into());
        }
        if c.max_servers < c.initial_servers {
            return Err(format!(
                "max_servers {} is below initial_servers {}",
                c.max_servers, c.initial_servers
            ));
        }
        if c.workers == 0 || c.cores == 0 || c.backlog == 0 {
            return Err("workers, cores and backlog must all be at least 1".into());
        }
        if c.vips == 0 {
            return Err("at least one VIP is required".into());
        }
        if c.dispatcher.fanout() == 0 {
            return Err("dispatcher fan-out must be at least 1".into());
        }
        if c.dispatcher.fanout() > c.initial_servers {
            return Err(format!(
                "dispatcher fan-out {} exceeds the initial server count {}",
                c.dispatcher.fanout(),
                c.initial_servers
            ));
        }
        if c.recover_flows && c.dispatcher.fanout() > srlb_core::lb_node::MAX_RECOVERY_CANDIDATES {
            return Err(format!(
                "flow recovery supports at most {} candidates per flow (re-hunt routes also \
                 carry the load-balancer marker and the VIP)",
                srlb_core::lb_node::MAX_RECOVERY_CANDIDATES
            ));
        }
        if self.workload.queries == 0 || self.workload.rate_qps <= 0.0 {
            return Err("the workload needs at least one query at a positive rate".into());
        }
        let mut alive: Vec<bool> = (0..c.max_servers).map(|i| i < c.initial_servers).collect();
        let mut last_at = 0.0f64;
        for timed in &self.events {
            if !timed.at_seconds.is_finite() || timed.at_seconds < 0.0 {
                return Err(format!("event time {} is invalid", timed.at_seconds));
            }
            if timed.at_seconds < last_at {
                return Err("events must be sorted by time".into());
            }
            last_at = timed.at_seconds;
            match timed.event {
                ScenarioEvent::AddServer { server } => {
                    let i = server as usize;
                    if i >= c.max_servers {
                        return Err(format!("add-server index {server} is out of range"));
                    }
                    if alive[i] {
                        return Err(format!("server {server} is already up"));
                    }
                    alive[i] = true;
                }
                ScenarioEvent::RemoveServer { server } => {
                    let i = server as usize;
                    if i >= c.max_servers || !alive[i] {
                        return Err(format!("server {server} is not up"));
                    }
                    alive[i] = false;
                    if !alive.iter().any(|&a| a) {
                        return Err("the schedule leaves the cluster empty".into());
                    }
                }
                ScenarioEvent::LbFailover => {}
                ScenarioEvent::SetCapacity {
                    server,
                    workers,
                    cores,
                } => {
                    let i = server as usize;
                    if i >= c.max_servers || !alive[i] {
                        return Err(format!("server {server} is not up"));
                    }
                    if workers == 0 || cores == 0 {
                        return Err("capacity must stay at least 1 worker / 1 core".into());
                    }
                }
            }
        }
        Ok(())
    }

    // ---- Canned presets ---------------------------------------------------

    /// Load-balancer failover at the midpoint of the send window, with
    /// in-band flow-table reconstruction enabled: established connections
    /// must survive with a deterministic (consistent-hash / Maglev)
    /// dispatcher.
    pub fn lb_failover(dispatcher: DispatcherConfig, queries: usize) -> Self {
        let scenario = Scenario::new("lb_failover")
            .with_dispatcher(dispatcher)
            .with_queries(queries);
        let mid = scenario.workload.send_window_seconds() * 0.5;
        scenario.at(mid, ScenarioEvent::LbFailover)
    }

    /// A rolling upgrade of one backend: server 0 is removed under load and
    /// a fresh instance re-joins later.  Connections established on it while
    /// it was up are disrupted; the dispatcher's remapping bounds limit the
    /// impact on everything else.
    pub fn rolling_upgrade(dispatcher: DispatcherConfig, queries: usize) -> Self {
        let scenario = Scenario::new("rolling_upgrade")
            .with_dispatcher(dispatcher)
            .with_queries(queries);
        let window = scenario.workload.send_window_seconds();
        scenario
            .at(window * 0.35, ScenarioEvent::RemoveServer { server: 0 })
            .at(window * 0.70, ScenarioEvent::AddServer { server: 0 })
    }

    /// Doubles the cluster under load: 4 initial backends, 4 more joining at
    /// the midpoint of the send window.
    pub fn scale_out_2x(dispatcher: DispatcherConfig, queries: usize) -> Self {
        let mut scenario = Scenario::new("scale_out_2x")
            .with_dispatcher(dispatcher)
            .with_queries(queries);
        scenario.cluster.initial_servers = 4;
        scenario.cluster.max_servers = 8;
        let mid = scenario.workload.send_window_seconds() * 0.5;
        for server in 4..8 {
            scenario = scenario.at(mid, ScenarioEvent::AddServer { server });
        }
        scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        let d = DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 };
        for scenario in [
            Scenario::lb_failover(d, 500),
            Scenario::rolling_upgrade(d, 500),
            Scenario::scale_out_2x(d, 500),
        ] {
            scenario.validate().expect("preset is valid");
            assert!(!scenario.events.is_empty());
        }
    }

    #[test]
    fn serde_roundtrip_preserves_the_schedule() {
        let scenario = Scenario::rolling_upgrade(
            DispatcherConfig::Maglev {
                table_size: 251,
                k: 2,
            },
            300,
        )
        .with_seed(9);
        let json = serde_json::to_string(&scenario).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenario);
        assert_eq!(back.events.len(), 2);
    }

    #[test]
    fn capacity_overrides_apply_per_server() {
        let mut cluster = ClusterSpec::default();
        cluster.capacity_overrides.push(CapacityOverride {
            server: 2,
            workers: 4,
            cores: 1,
        });
        assert_eq!(cluster.capacity_of(2), (4, 1));
        assert_eq!(cluster.capacity_of(0), (16, 2));
    }

    #[test]
    fn event_labels_are_descriptive() {
        assert_eq!(
            ScenarioEvent::AddServer { server: 3 }.label(),
            "add-server-3"
        );
        assert_eq!(ScenarioEvent::LbFailover.label(), "lb-failover");
        assert!(ScenarioEvent::SetCapacity {
            server: 1,
            workers: 8,
            cores: 4
        }
        .label()
        .contains("8w4c"));
    }

    #[test]
    fn validation_rejects_inconsistent_schedules() {
        let d = DispatcherConfig::paper_default();
        // Removing a server that is not up.
        let bad = Scenario::new("x")
            .with_dispatcher(d)
            .at(1.0, ScenarioEvent::RemoveServer { server: 99 });
        assert!(bad.validate().is_err());
        // Adding a server that is already up.
        let bad = Scenario::new("x").at(1.0, ScenarioEvent::AddServer { server: 0 });
        assert!(bad.validate().is_err());
        // Unsorted events.
        let bad = Scenario::new("x")
            .at(5.0, ScenarioEvent::LbFailover)
            .at(1.0, ScenarioEvent::LbFailover);
        assert!(bad.validate().is_err());
        // Emptying the cluster.
        let mut bad = Scenario::new("x");
        bad.cluster.initial_servers = 1;
        bad.cluster.max_servers = 1;
        bad.cluster.dispatcher = DispatcherConfig::Random { k: 1 };
        let bad = bad.at(1.0, ScenarioEvent::RemoveServer { server: 0 });
        assert!(bad.validate().is_err());
        // Fan-out larger than the initial cluster.
        let mut bad = Scenario::new("x");
        bad.cluster.initial_servers = 1;
        assert!(bad.validate().is_err());
    }
}
