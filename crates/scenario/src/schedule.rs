//! The declarative scenario schema: a cluster specification, a workload,
//! and a time-ordered schedule of control events.
//!
//! A [`Scenario`] is plain data (serde-serialisable), so dynamic-cluster
//! experiments can be described in JSON, checked into a repository, and
//! replayed bit-for-bit.  The [presets](Scenario::lb_failover) cover the
//! cases the paper's static testbed leaves out: load-balancer failover,
//! rolling upgrades, scale-out under load, correlated failures.
//!
//! Since the unified-spec refactor the schedule's event types
//! ([`ScenarioEvent`], [`TimedEvent`], [`CapacityOverride`]) live in
//! `srlb_core::spec` and are re-exported here; a `Scenario` is a
//! scenario-flavoured view that converts losslessly into an
//! [`ExperimentSpec`] via [`Scenario::to_spec`] — which is also how the
//! engine runs it.

use serde::{Deserialize, Serialize};

use srlb_core::dispatch::DispatcherConfig;
use srlb_core::spec::{ExperimentSpec, PolicyKind};
use srlb_server::PolicyConfig;
use srlb_sim::TopologyModel;

use srlb_core::spec::{default_lb_count, fault_plan_is_empty, lb_count_is_one};

pub use srlb_core::spec::{
    CapacityOverride, DownWindowSpec, FaultLink, FaultNode, FaultPlan, LossSpec, OneShotDropSpec,
    QueueSpec, ScenarioEvent, SlowNodeSpec, TimedEvent,
};

/// Static description of the cluster a scenario runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Backends alive when the run starts.
    pub initial_servers: usize,
    /// Upper bound on the backend count (fixes the address/node-id layout;
    /// `AddServer` events may only name indices below this).
    pub max_servers: usize,
    /// Default worker threads per backend.
    pub workers: usize,
    /// Default CPU cores per backend.
    pub cores: usize,
    /// TCP backlog per backend.
    pub backlog: usize,
    /// Per-backend initial capacity overrides (heterogeneous clusters).
    pub capacity_overrides: Vec<CapacityOverride>,
    /// Connection-acceptance policy run on every backend.
    pub policy: PolicyConfig,
    /// Candidate-selection policy at the load balancer.
    pub dispatcher: DispatcherConfig,
    /// Number of VIPs sharing the cluster (requests are assigned round-robin
    /// by request id).
    pub vips: u32,
    /// Number of load-balancer instances in the ECMP-steered tier fronting
    /// the cluster (all advertise the same anycast address; flows are
    /// spread by deterministic resilient ECMP hashing).  Defaults to the
    /// classic single LB and is omitted from serialised scenarios then.
    #[serde(default = "default_lb_count", skip_serializing_if = "lb_count_is_one")]
    pub lb_count: usize,
    /// One-way link latency between any two nodes, in microseconds.
    pub link_latency_us: u64,
    /// Whether the load balancer reconstructs lost flow-table entries
    /// in-band (re-hunt on miss + server ownership adverts).
    pub recover_flows: bool,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            initial_servers: 8,
            max_servers: 8,
            workers: 16,
            cores: 2,
            backlog: 64,
            capacity_overrides: Vec::new(),
            policy: PolicyConfig::Static { threshold: 4 },
            dispatcher: DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 },
            vips: 1,
            lb_count: 1,
            link_latency_us: 50,
            recover_flows: true,
        }
    }
}

impl ClusterSpec {
    /// The initial `(workers, cores)` of server `index`, honouring
    /// overrides.
    pub fn capacity_of(&self, index: u32) -> (usize, usize) {
        self.capacity_overrides
            .iter()
            .find(|o| o.server == index)
            .map_or((self.workers, self.cores), |o| (o.workers, o.cores))
    }
}

/// The open-loop Poisson workload a scenario drives through the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Total number of queries.
    pub queries: usize,
    /// Arrival rate in queries per second.
    pub rate_qps: f64,
    /// Mean (exponential) service time in milliseconds.
    pub mean_service_ms: f64,
    /// Client think time between the handshake completing and the HTTP
    /// request, in milliseconds.  A non-zero value keeps connections
    /// *established but quiescent* for a realistic window — the state that
    /// a load-balancer failover actually disrupts (their next packet hits
    /// the rebuilt flow table).
    pub request_delay_ms: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            queries: 800,
            rate_qps: 96.0,
            mean_service_ms: 100.0,
            request_delay_ms: 200.0,
        }
    }
}

impl WorkloadSpec {
    /// Approximate time at which the last request is sent (seconds).
    pub fn send_window_seconds(&self) -> f64 {
        self.queries as f64 / self.rate_qps
    }
}

/// A complete, declarative scenario: cluster + workload + event schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Name used in reports and file names.
    pub name: String,
    /// Random seed (workload generation and candidate selection).
    pub seed: u64,
    /// The cluster description.
    pub cluster: ClusterSpec,
    /// The workload.
    pub workload: WorkloadSpec,
    /// Control events, sorted by time.
    pub events: Vec<TimedEvent>,
    /// The fault-injection plan (lossy links, bounded queues, down
    /// windows, slow nodes) and the client's recovery policy.  The empty
    /// default is omitted from serialised scenarios, so pre-fault-layer
    /// scenario JSONs round-trip byte-identically.
    #[serde(default, skip_serializing_if = "fault_plan_is_empty")]
    pub faults: FaultPlan,
}

impl Scenario {
    /// Creates a scenario with the default cluster and workload and an empty
    /// schedule.
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            seed: 1,
            cluster: ClusterSpec::default(),
            workload: WorkloadSpec::default(),
            events: Vec::new(),
            faults: FaultPlan::default(),
        }
    }

    /// Overrides the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the cluster spec (builder style).
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Overrides the dispatcher (builder style).
    pub fn with_dispatcher(mut self, dispatcher: DispatcherConfig) -> Self {
        self.cluster.dispatcher = dispatcher;
        self
    }

    /// Overrides the workload (builder style).
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Overrides the query count, keeping the configured rate (builder
    /// style).
    pub fn with_queries(mut self, queries: usize) -> Self {
        self.workload.queries = queries;
        self
    }

    /// Appends a control event at `at_seconds` (builder style).  Events must
    /// be appended in chronological order.
    pub fn at(mut self, at_seconds: f64, event: ScenarioEvent) -> Self {
        self.events.push(TimedEvent { at_seconds, event });
        self
    }

    /// Sets the fault-injection plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The unified [`ExperimentSpec`] this scenario denotes: the same
    /// cluster and schedule, the Poisson workload at its explicit rate, and
    /// an `Explicit` dispatcher/acceptance policy pairing.
    pub fn to_spec(&self) -> ExperimentSpec {
        let c = &self.cluster;
        ExperimentSpec {
            name: self.name.clone(),
            seed: self.seed,
            workload: srlb_core::spec::WorkloadSpec::PoissonRate {
                rate_qps: self.workload.rate_qps,
                queries: self.workload.queries,
                mean_service_ms: self.workload.mean_service_ms,
            },
            cluster: srlb_core::spec::ClusterSpec {
                initial_servers: c.initial_servers,
                max_servers: c.max_servers,
                workers: c.workers,
                cores: c.cores,
                backlog: c.backlog,
                capacity_overrides: c.capacity_overrides.clone(),
                vips: c.vips,
                lb_count: c.lb_count,
                flow_table: srlb_core::spec::FlowTableSpec::default(),
                recover_flows: c.recover_flows,
                record_load: false,
            },
            topology: TopologyModel::Uniform {
                latency_us: c.link_latency_us,
            },
            scenario: self.events.clone(),
            policy: PolicyKind::Explicit {
                dispatcher: c.dispatcher,
                acceptance: c.policy,
            },
            request_delay_ms: self.workload.request_delay_ms,
            faults: self.faults.clone(),
        }
    }

    /// Checks the scenario for consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first problem found: empty or
    /// oversized cluster, unsorted or out-of-range events, an `AddServer`
    /// for a live index, a `RemoveServer` for a dead one, or a schedule that
    /// leaves the cluster empty.
    pub fn validate(&self) -> Result<(), String> {
        self.to_spec().validate().map_err(|e| e.to_string())
    }

    // ---- Canned presets ---------------------------------------------------

    /// Load-balancer failover at the midpoint of the send window, with
    /// in-band flow-table reconstruction enabled: established connections
    /// must survive with a deterministic (consistent-hash / Maglev)
    /// dispatcher.
    pub fn lb_failover(dispatcher: DispatcherConfig, queries: usize) -> Self {
        let scenario = Scenario::new("lb_failover")
            .with_dispatcher(dispatcher)
            .with_queries(queries);
        let mid = scenario.workload.send_window_seconds() * 0.5;
        scenario.at(mid, ScenarioEvent::LbFailover)
    }

    /// A rolling upgrade of one backend: server 0 is removed under load and
    /// a fresh instance re-joins later.  Connections established on it while
    /// it was up are disrupted; the dispatcher's remapping bounds limit the
    /// impact on everything else.
    pub fn rolling_upgrade(dispatcher: DispatcherConfig, queries: usize) -> Self {
        let scenario = Scenario::new("rolling_upgrade")
            .with_dispatcher(dispatcher)
            .with_queries(queries);
        let window = scenario.workload.send_window_seconds();
        scenario
            .at(window * 0.35, ScenarioEvent::RemoveServer { server: 0 })
            .at(window * 0.70, ScenarioEvent::AddServer { server: 0 })
    }

    /// Doubles the cluster under load: 4 initial backends, 4 more joining at
    /// the midpoint of the send window.
    pub fn scale_out_2x(dispatcher: DispatcherConfig, queries: usize) -> Self {
        let mut scenario = Scenario::new("scale_out_2x")
            .with_dispatcher(dispatcher)
            .with_queries(queries);
        scenario.cluster.initial_servers = 4;
        scenario.cluster.max_servers = 8;
        let mid = scenario.workload.send_window_seconds() * 0.5;
        for server in 4..8 {
            scenario = scenario.at(mid, ScenarioEvent::AddServer { server });
        }
        scenario
    }

    /// ECMP reshuffle across a multi-LB tier: `lb_count` load-balancer
    /// instances share the anycast VIP behind deterministic resilient ECMP
    /// steering, and at the midpoint of the send window the last instance
    /// is *withdrawn* from the tier (crash or drain — route withdrawal
    /// either way).  Every live flow it carried is re-steered onto peers
    /// that have never seen it, so its next packet hits a flow table with
    /// no entry: with in-band recovery (on by default here) a
    /// deterministic dispatcher re-hunts the owner back and no established
    /// connection is lost, while random candidates orphan the re-steered
    /// flows.
    ///
    /// With `lb_count = 1` there is no peer to withdraw to, so the
    /// schedule is empty: the degenerate control run showing the tier
    /// refactor preserves single-LB behaviour.
    pub fn ecmp_reshuffle(dispatcher: DispatcherConfig, lb_count: usize, queries: usize) -> Self {
        let mut scenario = Scenario::new("ecmp_reshuffle")
            .with_dispatcher(dispatcher)
            .with_queries(queries);
        scenario.cluster.lb_count = lb_count;
        if lb_count > 1 {
            let mid = scenario.workload.send_window_seconds() * 0.5;
            scenario = scenario.at(
                mid,
                ScenarioEvent::RemoveLb {
                    lb: lb_count as u32 - 1,
                },
            );
        }
        scenario
    }

    /// Correlated failures: two backends (servers 2 and 5) die at the *same
    /// instant* at the midpoint of the send window — the multi-failure case
    /// a single rolling upgrade never exercises.  Consistent-hash and
    /// Maglev dispatchers must keep their remapping bounds: only flows
    /// owned by the failed pair move (see
    /// `crates/core/tests/proptest_churn.rs` and the two-removal probes in
    /// `srlb-bench`).
    pub fn correlated_failures(dispatcher: DispatcherConfig, queries: usize) -> Self {
        let scenario = Scenario::new("correlated_failures")
            .with_dispatcher(dispatcher)
            .with_queries(queries);
        let mid = scenario.workload.send_window_seconds() * 0.5;
        scenario
            .at(mid, ScenarioEvent::RemoveServer { server: 2 })
            .at(mid, ScenarioEvent::RemoveServer { server: 5 })
    }

    /// The [`lb_failover`](Scenario::lb_failover) schedule under a lossy
    /// fabric: 1% independent loss on *every* link, with the default
    /// retransmission policy recovering end to end.  A deterministic
    /// dispatcher must still complete every request — retransmitted SYNs
    /// re-hunt at the rebuilt flow table, retransmitted requests steer
    /// through learned entries — with zero established-connection remaps.
    pub fn lossy_lb_failover(dispatcher: DispatcherConfig, queries: usize) -> Self {
        let mut scenario = Scenario::lb_failover(dispatcher, queries);
        scenario.name = "lossy_lb_failover".to_string();
        scenario.with_faults(FaultPlan {
            loss: vec![LossSpec {
                link: FaultLink::default(),
                probability: 0.01,
            }],
            ..FaultPlan::default()
        })
    }

    /// Incast into one hot server: server 0 runs 4× slower than its peers
    /// and the load balancer's link to it is a shallow bounded queue, so
    /// synchronized arrivals tail-drop.  The client's retransmissions
    /// absorb the drops; what survives to the application is the queue's
    /// admission rate, not a hang.
    pub fn incast(dispatcher: DispatcherConfig, queries: usize) -> Self {
        Scenario::new("incast")
            .with_dispatcher(dispatcher)
            .with_queries(queries)
            .with_faults(FaultPlan {
                queues: vec![QueueSpec {
                    from: FaultNode::Lb { index: 0 },
                    to: FaultNode::Server { index: 0 },
                    capacity: 4,
                    drain_pps: 20.0,
                }],
                slow_nodes: vec![SlowNodeSpec {
                    node: FaultNode::Server { index: 0 },
                    multiplier: 4.0,
                }],
                ..FaultPlan::default()
            })
    }

    /// A saturated load-balancer uplink: the client → LB link is a bounded
    /// FIFO draining just below the offered SYN/request rate, so bursts
    /// overflow and tail-drop on ingress.  Every request must still
    /// complete through retransmission.
    pub fn saturated_uplink(dispatcher: DispatcherConfig, queries: usize) -> Self {
        Scenario::new("saturated_uplink")
            .with_dispatcher(dispatcher)
            .with_queries(queries)
            .with_faults(FaultPlan {
                queues: vec![QueueSpec {
                    from: FaultNode::Client,
                    to: FaultNode::Lb { index: 0 },
                    capacity: 8,
                    drain_pps: 180.0,
                }],
                ..FaultPlan::default()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        let d = DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 };
        for scenario in [
            Scenario::lb_failover(d, 500),
            Scenario::rolling_upgrade(d, 500),
            Scenario::scale_out_2x(d, 500),
            Scenario::correlated_failures(d, 500),
            Scenario::ecmp_reshuffle(d, 2, 500),
            Scenario::ecmp_reshuffle(d, 4, 500),
        ] {
            scenario.validate().expect("preset is valid");
            assert!(!scenario.events.is_empty());
        }
        // The degenerate single-LB reshuffle is a valid, event-free control.
        let control = Scenario::ecmp_reshuffle(d, 1, 500);
        control.validate().expect("control preset is valid");
        assert!(control.events.is_empty());
    }

    #[test]
    fn ecmp_reshuffle_withdraws_the_last_instance_at_midpoint() {
        let scenario = Scenario::ecmp_reshuffle(DispatcherConfig::paper_default(), 4, 800);
        assert_eq!(scenario.cluster.lb_count, 4);
        assert_eq!(scenario.events.len(), 1);
        assert_eq!(scenario.events[0].event, ScenarioEvent::RemoveLb { lb: 3 });
        let spec = scenario.to_spec();
        assert_eq!(spec.cluster.lb_count, 4);
        spec.validate().unwrap();
        // lb_count defaults to 1 when absent from serialised scenarios.
        let json = serde_json::to_string(&Scenario::lb_failover(
            DispatcherConfig::paper_default(),
            100,
        ))
        .unwrap();
        assert!(!json.contains("lb_count"));
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cluster.lb_count, 1);
        let json = serde_json::to_string(&scenario).unwrap();
        assert!(json.contains("\"lb_count\":4"));
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenario);
    }

    #[test]
    fn serde_roundtrip_preserves_the_schedule() {
        let scenario = Scenario::rolling_upgrade(
            DispatcherConfig::Maglev {
                table_size: 251,
                k: 2,
            },
            300,
        )
        .with_seed(9);
        let json = serde_json::to_string(&scenario).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scenario);
        assert_eq!(back.events.len(), 2);
    }

    #[test]
    fn capacity_overrides_apply_per_server() {
        let mut cluster = ClusterSpec::default();
        cluster.capacity_overrides.push(CapacityOverride {
            server: 2,
            workers: 4,
            cores: 1,
        });
        assert_eq!(cluster.capacity_of(2), (4, 1));
        assert_eq!(cluster.capacity_of(0), (16, 2));
    }

    #[test]
    fn event_labels_are_descriptive() {
        assert_eq!(
            ScenarioEvent::AddServer { server: 3 }.label(),
            "add-server-3"
        );
        assert_eq!(ScenarioEvent::LbFailover.label(), "lb-failover");
        assert!(ScenarioEvent::SetCapacity {
            server: 1,
            workers: 8,
            cores: 4
        }
        .label()
        .contains("8w4c"));
    }

    #[test]
    fn to_spec_is_lossless() {
        let scenario = Scenario::correlated_failures(
            DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 },
            400,
        )
        .with_seed(7);
        let spec = scenario.to_spec();
        assert_eq!(spec.name, "correlated_failures");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.scenario, scenario.events);
        assert_eq!(spec.cluster.initial_servers, 8);
        assert!(spec.cluster.recover_flows);
        assert_eq!(spec.topology, TopologyModel::Uniform { latency_us: 50 });
        assert_eq!(spec.request_delay_ms, 200.0);
        spec.validate().unwrap();
    }

    #[test]
    fn correlated_failures_events_are_simultaneous() {
        let scenario = Scenario::correlated_failures(
            DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 },
            600,
        );
        assert_eq!(scenario.events.len(), 2);
        assert_eq!(scenario.events[0].at_seconds, scenario.events[1].at_seconds);
    }

    #[test]
    fn validation_rejects_inconsistent_schedules() {
        let d = DispatcherConfig::paper_default();
        // Removing a server that is not up.
        let bad = Scenario::new("x")
            .with_dispatcher(d)
            .at(1.0, ScenarioEvent::RemoveServer { server: 99 });
        assert!(bad.validate().is_err());
        // Adding a server that is already up.
        let bad = Scenario::new("x").at(1.0, ScenarioEvent::AddServer { server: 0 });
        assert!(bad.validate().is_err());
        // Unsorted events.
        let bad = Scenario::new("x")
            .at(5.0, ScenarioEvent::LbFailover)
            .at(1.0, ScenarioEvent::LbFailover);
        assert!(bad.validate().is_err());
        // Emptying the cluster.
        let mut bad = Scenario::new("x");
        bad.cluster.initial_servers = 1;
        bad.cluster.max_servers = 1;
        bad.cluster.dispatcher = DispatcherConfig::Random { k: 1 };
        let bad = bad.at(1.0, ScenarioEvent::RemoveServer { server: 0 });
        assert!(bad.validate().is_err());
        // Fan-out larger than the initial cluster.
        let mut bad = Scenario::new("x");
        bad.cluster.initial_servers = 1;
        assert!(bad.validate().is_err());
    }
}
