//! The scenario engine: wires the cluster, replays the workload, and
//! injects the scheduled control events into the running simulation.
//!
//! The engine runs the network in **segments**: it advances the simulation
//! up to the next control event's timestamp (delivering every packet event
//! at or before it), applies the control action through the simulator's
//! control-delivery primitives ([`srlb_sim::Network::control`],
//! `take_node`/`insert_node`), and continues.  Node ids and addresses for
//! the *whole* potential cluster (`max_servers`) are laid out up front, so
//! adding a backend later never perturbs the id ↔ address mapping and runs
//! stay deterministic.

use std::fmt;
use std::net::Ipv6Addr;

use srlb_core::client::{client_addr_count, ClientNode};
use srlb_core::lb_node::{LbStats, LoadBalancerNode};
use srlb_metrics::{DisruptionCollector, PhaseStats, RequestOutcome, ResponseTimeCollector};
use srlb_net::{AddressPlan, Packet, ServerId};
use srlb_server::{Directory, ServerConfig, ServerNode, ServerStats};
use srlb_sim::{Network, NodeId, RunLimit, SimDuration, SimTime, Topology};
use srlb_workload::{PoissonWorkload, ServiceTime};

use crate::schedule::{Scenario, ScenarioEvent};

/// Error returned for an inconsistent [`Scenario`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

/// Everything measured during one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Name of the scenario that produced this outcome.
    pub scenario_name: String,
    /// The dispatcher's report name (over the initial backend set).
    pub dispatcher_name: String,
    /// Per-request records collected by the client.
    pub collector: ResponseTimeCollector,
    /// Load-balancer counters.
    pub lb_stats: LbStats,
    /// Per-server counters indexed by server, merged across remove/re-add
    /// incarnations.
    pub server_stats: Vec<ServerStats>,
    /// Per-phase disruption statistics (phases delimited by the events).
    pub phases: Vec<PhaseStats>,
    /// Seconds between the fail-over and the last re-hunt, if any.
    pub reconstruction_latency_s: Option<f64>,
    /// Simulated duration of the run in seconds.
    pub duration_seconds: f64,
    /// Total simulation events processed.
    pub events_processed: u64,
}

impl ScenarioOutcome {
    /// Connections reset by a failed in-band reconstruction (no candidate
    /// owned the flow).
    pub fn orphaned(&self) -> u64 {
        self.server_stats.iter().map(|s| s.orphaned).sum()
    }

    /// Ownership adverts sent by servers during reconstruction.
    pub fn ownership_adverts(&self) -> u64 {
        self.server_stats.iter().map(|s| s.ownership_adverts).sum()
    }

    /// Requests that never finished (e.g. their connection was established
    /// on a backend that was removed, or a packet was black-holed).
    pub fn unfinished(&self) -> u64 {
        self.collector
            .records()
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Unfinished)
            .count() as u64
    }

    /// Established connections broken by the scenario's control events:
    /// reconstruction orphans plus never-finished requests.  Load-induced
    /// backlog resets are *not* counted here (they also occur in a static
    /// cluster).
    pub fn broken_established(&self) -> u64 {
        self.orphaned() + self.unfinished()
    }

    /// Condenses the outcome into the serialisable report.
    pub fn report(&self) -> ScenarioReport {
        ScenarioReport {
            name: self.scenario_name.clone(),
            dispatcher: self.dispatcher_name.clone(),
            sent: self.collector.len() as u64,
            completed: self.collector.completed_count() as u64,
            resets: self.collector.reset_count() as u64,
            unfinished: self.unfinished(),
            orphaned: self.orphaned(),
            broken_established: self.broken_established(),
            rehunts: self.lb_stats.rehunts,
            ownership_adverts: self.ownership_adverts(),
            failovers: self.lb_stats.failovers,
            flows_learned: self.lb_stats.flows_learned,
            reconstruction_ms: self.reconstruction_latency_s.map(|s| s * 1e3),
            duration_seconds: self.duration_seconds,
            phases: self.phases.clone(),
        }
    }
}

/// Machine-readable summary of a scenario run (one entry of
/// `BENCH_scenarios.json`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Dispatcher report name.
    pub dispatcher: String,
    /// Requests sent.
    pub sent: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests whose connection was reset.
    pub resets: u64,
    /// Requests that never finished.
    pub unfinished: u64,
    /// Connections reset because no candidate owned the flow after a
    /// fail-over.
    pub orphaned: u64,
    /// Established connections broken by control events
    /// (`orphaned + unfinished`).
    pub broken_established: u64,
    /// Flow-table misses recovered by re-hunting.
    pub rehunts: u64,
    /// Ownership adverts sent by servers.
    pub ownership_adverts: u64,
    /// Load-balancer fail-overs applied.
    pub failovers: u64,
    /// Flow-table entries learned in-band (SYN-ACKs + adverts).
    pub flows_learned: u64,
    /// Milliseconds from fail-over to the last re-hunt, if any.
    pub reconstruction_ms: Option<f64>,
    /// Simulated duration in seconds.
    pub duration_seconds: f64,
    /// Per-phase disruption statistics.
    pub phases: Vec<PhaseStats>,
}

/// Runs `scenario` to completion and collects the outcome.
///
/// # Errors
///
/// Returns [`ScenarioError`] if [`Scenario::validate`] rejects the
/// scenario.
pub fn run(scenario: &Scenario) -> Result<ScenarioOutcome, ScenarioError> {
    scenario.validate().map_err(ScenarioError)?;
    let cluster = &scenario.cluster;
    let plan = AddressPlan::default();

    let requests = PoissonWorkload::new(
        scenario.workload.rate_qps,
        scenario.workload.queries,
        ServiceTime::Exponential {
            mean_ms: scenario.workload.mean_service_ms,
        },
    )
    .generate(scenario.seed);

    // Fixed id ↔ address layout over the whole potential cluster.
    let client_id = NodeId(0);
    let lb_id = NodeId(1);
    let server_node_id = |i: usize| NodeId(2 + i);
    let mut directory = Directory::new();
    for a in 0..client_addr_count(requests.len()) {
        directory.register(plan.client_addr(a), client_id);
    }
    directory.register(plan.lb_addr(), lb_id);
    let vips: Vec<Ipv6Addr> = (0..cluster.vips).map(|v| plan.vip(v)).collect();
    for &vip in &vips {
        directory.register(vip, lb_id);
    }
    for i in 0..cluster.max_servers {
        directory.register(plan.server_addr(ServerId(i as u32)), server_node_id(i));
    }

    let mut network: Network<Packet> = Network::new(
        scenario.seed,
        Topology::uniform(SimDuration::from_micros(cluster.link_latency_us)),
    );

    let client = ClientNode::new(plan.clone(), vips[0], directory.clone(), requests.clone())
        .with_vips(vips.clone())
        .with_request_delay(SimDuration::from_millis_f64(
            scenario.workload.request_delay_ms,
        ));
    let added_client = network.add_node(client);
    debug_assert_eq!(added_client, client_id);

    let mut alive: Vec<bool> = (0..cluster.max_servers)
        .map(|i| i < cluster.initial_servers)
        .collect();
    let alive_addrs = |alive: &[bool]| -> Vec<Ipv6Addr> {
        alive
            .iter()
            .enumerate()
            .filter(|(_, &up)| up)
            .map(|(i, _)| plan.server_addr(ServerId(i as u32)))
            .collect()
    };

    let mut lb = LoadBalancerNode::new(
        plan.lb_addr(),
        vips[0],
        directory.clone(),
        cluster.dispatcher.build(alive_addrs(&alive)),
    )
    .with_vips(vips.clone());
    if cluster.recover_flows {
        lb = lb.with_flow_recovery();
    }
    let dispatcher_name = lb.dispatcher_name();
    let added_lb = network.add_node(lb);
    debug_assert_eq!(added_lb, lb_id);

    let server_config = |i: usize| -> ServerConfig {
        let (workers, cores) = cluster.capacity_of(i as u32);
        ServerConfig {
            server_index: i as u32,
            addr: plan.server_addr(ServerId(i as u32)),
            lb_addr: plan.lb_addr(),
            workers,
            cores,
            backlog: cluster.backlog,
            policy: cluster.policy,
            record_load: false,
        }
    };
    for (i, up) in alive.iter().enumerate() {
        if *up {
            let added = network.add_node(ServerNode::new(server_config(i), directory.clone()));
            debug_assert_eq!(added, server_node_id(i));
        } else {
            let reserved = network.reserve_node();
            debug_assert_eq!(reserved, server_node_id(i));
        }
    }

    // Segment the run at each control event's timestamp.
    let mut merged_stats = vec![ServerStats::default(); cluster.max_servers];
    let mut boundaries: Vec<(String, f64)> = Vec::with_capacity(scenario.events.len());
    for timed in &scenario.events {
        network.run_with_limit(RunLimit::until(SimTime::from_secs_f64(timed.at_seconds)));
        boundaries.push((timed.event.label(), timed.at_seconds));
        match timed.event {
            ScenarioEvent::AddServer { server } => {
                let i = server as usize;
                network.insert_node(
                    server_node_id(i),
                    ServerNode::new(server_config(i), directory.clone()),
                );
                alive[i] = true;
                let addrs = alive_addrs(&alive);
                network
                    .node_as_mut::<LoadBalancerNode>(lb_id)
                    .expect("load balancer present")
                    .rebuild_backends(addrs);
            }
            ScenarioEvent::RemoveServer { server } => {
                let i = server as usize;
                let node: ServerNode = network
                    .take_node(server_node_id(i))
                    .expect("validated schedule removes only live servers");
                merged_stats[i].absorb(node.stats());
                alive[i] = false;
                let addrs = alive_addrs(&alive);
                network
                    .node_as_mut::<LoadBalancerNode>(lb_id)
                    .expect("load balancer present")
                    .rebuild_backends(addrs);
            }
            ScenarioEvent::LbFailover => {
                network
                    .control::<LoadBalancerNode, _>(lb_id, |lb, ctx| lb.fail_over(ctx.now()))
                    .expect("load balancer present");
            }
            ScenarioEvent::SetCapacity {
                server,
                workers,
                cores,
            } => {
                network
                    .control::<ServerNode, _>(server_node_id(server as usize), |s, ctx| {
                        s.set_capacity(workers, cores, ctx)
                    })
                    .expect("validated schedule resizes only live servers");
            }
        }
    }

    // Drain the remaining events (same generous safety margin as the static
    // testbed, plus headroom for re-hunts and adverts).
    let limit = RunLimit::max_events((requests.len() as u64).saturating_mul(96) + 10_000);
    let stats = network.run_with_limit(limit);

    // Harvest.
    for (i, up) in alive.iter().enumerate() {
        if *up {
            let node: ServerNode = network
                .take_node(server_node_id(i))
                .expect("live server present after run");
            merged_stats[i].absorb(node.stats());
        }
    }
    let lb_node: LoadBalancerNode = network
        .take_node(lb_id)
        .expect("load balancer present after run");
    let client_node: ClientNode = network
        .take_node(client_id)
        .expect("client present after run");
    let collector = client_node.into_collector();

    let phases =
        DisruptionCollector::new(boundaries, cluster.max_servers).stats(collector.records());

    Ok(ScenarioOutcome {
        scenario_name: scenario.name.clone(),
        dispatcher_name,
        reconstruction_latency_s: lb_node.reconstruction_latency_seconds(),
        lb_stats: lb_node.stats(),
        server_stats: merged_stats,
        phases,
        collector,
        duration_seconds: stats.last_event_time.as_secs_f64(),
        events_processed: stats.events_processed,
    })
}
