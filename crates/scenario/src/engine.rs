//! The scenario engine: a thin client of the unified
//! [`srlb_core::runner::Runner`].
//!
//! The runner advances the network in **segments**: it delivers every
//! packet event at or before the next control event's timestamp, applies
//! the control action through the simulator's control-delivery primitives
//! ([`srlb_sim::Network::control`], `take_node`/`insert_node`), and
//! continues.  Node ids and addresses for the *whole* potential cluster
//! (`max_servers`) are laid out up front, so adding a backend later never
//! perturbs the id ↔ address mapping and runs stay deterministic.  This
//! module converts a [`Scenario`] to an `ExperimentSpec`, runs it, and
//! projects the [`RunOutcome`](srlb_core::runner::RunOutcome) into the
//! scenario-flavoured [`ScenarioOutcome`] / [`ScenarioReport`].

use std::fmt;

use srlb_core::lb_node::LbStats;
use srlb_core::runner::Runner;
use srlb_metrics::{PhaseStats, RequestOutcome, ResponseTimeCollector};
use srlb_server::ServerStats;

use crate::schedule::Scenario;

/// Error returned for an inconsistent [`Scenario`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

/// Everything measured during one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Name of the scenario that produced this outcome.
    pub scenario_name: String,
    /// The dispatcher's report name (over the initial backend set).
    pub dispatcher_name: String,
    /// Per-request records collected by the client.
    pub collector: ResponseTimeCollector,
    /// Tier-wide load-balancer counters (the [`LbStats::merge`] of every
    /// instance).
    pub lb_stats: LbStats,
    /// Per-instance load-balancer counters, indexed by LB instance.
    pub per_lb_stats: Vec<LbStats>,
    /// Per-server counters indexed by server, merged across remove/re-add
    /// incarnations.
    pub server_stats: Vec<ServerStats>,
    /// Per-phase disruption statistics (phases delimited by the events).
    pub phases: Vec<PhaseStats>,
    /// Seconds between the fail-over and the last re-hunt, if any.
    pub reconstruction_latency_s: Option<f64>,
    /// Simulated duration of the run in seconds.
    pub duration_seconds: f64,
    /// Total simulation events processed.
    pub events_processed: u64,
    /// Messages dropped by injected faults (probabilistic loss, one-shot
    /// drops); zero on fault-free runs.
    pub dropped_injected: u64,
    /// Messages tail-dropped by bounded per-link queues.
    pub dropped_queue: u64,
    /// Messages dropped inside link down windows.
    pub dropped_link_down: u64,
    /// Total client retransmissions.
    pub retransmits: u64,
    /// Requests aborted after exhausting the retransmission budget.
    pub aborted: u64,
}

impl ScenarioOutcome {
    /// Connections reset by a failed in-band reconstruction (no candidate
    /// owned the flow).
    pub fn orphaned(&self) -> u64 {
        self.server_stats.iter().map(|s| s.orphaned).sum()
    }

    /// Ownership adverts sent by servers during reconstruction.
    pub fn ownership_adverts(&self) -> u64 {
        self.server_stats.iter().map(|s| s.ownership_adverts).sum()
    }

    /// Requests that never finished (e.g. their connection was established
    /// on a backend that was removed, or a packet was black-holed).
    pub fn unfinished(&self) -> u64 {
        self.collector
            .records()
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Unfinished)
            .count() as u64
    }

    /// Established connections broken by the scenario's control events:
    /// reconstruction orphans plus never-finished requests.  Load-induced
    /// backlog resets are *not* counted here (they also occur in a static
    /// cluster).
    pub fn broken_established(&self) -> u64 {
        self.orphaned() + self.unfinished()
    }

    /// Condenses the outcome into the serialisable report.
    pub fn report(&self) -> ScenarioReport {
        ScenarioReport {
            name: self.scenario_name.clone(),
            dispatcher: self.dispatcher_name.clone(),
            sent: self.collector.len() as u64,
            completed: self.collector.completed_count() as u64,
            resets: self.collector.reset_count() as u64,
            unfinished: self.unfinished(),
            orphaned: self.orphaned(),
            broken_established: self.broken_established(),
            rehunts: self.lb_stats.rehunts,
            ownership_adverts: self.ownership_adverts(),
            failovers: self.lb_stats.failovers,
            flows_learned: self.lb_stats.flows_learned,
            reconstruction_ms: self.reconstruction_latency_s.map(|s| s * 1e3),
            duration_seconds: self.duration_seconds,
            aborted: self.aborted,
            retransmits: self.retransmits,
            dropped_injected: self.dropped_injected,
            dropped_queue: self.dropped_queue,
            dropped_link_down: self.dropped_link_down,
            phases: self.phases.clone(),
            // Populated only for multi-instance tiers (a single instance
            // adds nothing over the aggregate counters), so the report's
            // "empty" and the JSON's "omitted" coincide and value -> JSON
            // -> value round trips are exact -- and pre-tier report bytes
            // stay stable.
            per_lb: if self.per_lb_stats.len() > 1 {
                self.per_lb_stats.clone()
            } else {
                Vec::new()
            },
        }
    }
}

/// Serde skip predicate for [`ScenarioReport::per_lb`].
fn per_lb_is_trivial(per_lb: &[LbStats]) -> bool {
    per_lb.is_empty()
}

/// Serde skip predicate for the fault counters: fault-free reports carry
/// none of them, so pre-fault-layer report bytes stay stable.
fn is_zero_u64(n: &u64) -> bool {
    *n == 0
}

/// Machine-readable summary of a scenario run (one entry of
/// `BENCH_scenarios.json`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Dispatcher report name.
    pub dispatcher: String,
    /// Requests sent.
    pub sent: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests whose connection was reset.
    pub resets: u64,
    /// Requests that never finished.
    pub unfinished: u64,
    /// Connections reset because no candidate owned the flow after a
    /// fail-over.
    pub orphaned: u64,
    /// Established connections broken by control events
    /// (`orphaned + unfinished`).
    pub broken_established: u64,
    /// Flow-table misses recovered by re-hunting.
    pub rehunts: u64,
    /// Ownership adverts sent by servers.
    pub ownership_adverts: u64,
    /// Load-balancer fail-overs applied.
    pub failovers: u64,
    /// Flow-table entries learned in-band (SYN-ACKs + adverts).
    pub flows_learned: u64,
    /// Milliseconds from fail-over to the last re-hunt, if any.
    pub reconstruction_ms: Option<f64>,
    /// Simulated duration in seconds.
    pub duration_seconds: f64,
    /// Requests aborted after exhausting the retransmission budget
    /// (fault-injection runs only; omitted when zero).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub aborted: u64,
    /// Total client retransmissions (omitted when zero).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub retransmits: u64,
    /// Messages dropped by injected faults (omitted when zero).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub dropped_injected: u64,
    /// Messages tail-dropped by bounded queues (omitted when zero).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub dropped_queue: u64,
    /// Messages dropped inside link down windows (omitted when zero).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub dropped_link_down: u64,
    /// Per-phase disruption statistics.
    pub phases: Vec<PhaseStats>,
    /// Per-instance load-balancer counters (omitted for single-LB tiers).
    #[serde(default, skip_serializing_if = "per_lb_is_trivial")]
    pub per_lb: Vec<LbStats>,
}

/// Runs `scenario` to completion and collects the outcome.
///
/// # Errors
///
/// Returns [`ScenarioError`] if [`Scenario::validate`] rejects the
/// scenario.
pub fn run(scenario: &Scenario) -> Result<ScenarioOutcome, ScenarioError> {
    let runner = Runner::new(scenario.to_spec()).map_err(|e| ScenarioError(e.to_string()))?;
    let outcome = runner.run();
    Ok(ScenarioOutcome {
        scenario_name: outcome.name,
        dispatcher_name: outcome.dispatcher_name,
        reconstruction_latency_s: outcome.reconstruction_latency_s,
        lb_stats: outcome.lb_stats,
        per_lb_stats: outcome.per_lb_stats,
        server_stats: outcome.server_stats,
        phases: outcome.phases,
        collector: outcome.collector,
        duration_seconds: outcome.duration_seconds,
        events_processed: outcome.events_processed,
        dropped_injected: outcome.dropped_injected,
        dropped_queue: outcome.dropped_queue,
        dropped_link_down: outcome.dropped_link_down,
        retransmits: outcome.retransmits,
        aborted: outcome.aborted,
    })
}
