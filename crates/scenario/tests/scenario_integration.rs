//! End-to-end scenario-engine tests: LB failover with in-band flow-table
//! reconstruction, server churn, scale-out, heterogeneous capacities and
//! multi-VIP clusters, plus determinism of the whole pipeline.

use srlb_core::dispatch::DispatcherConfig;
use srlb_scenario::{run, CapacityOverride, Scenario, ScenarioEvent};

const CH: DispatcherConfig = DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 };
const MAGLEV: DispatcherConfig = DispatcherConfig::Maglev {
    table_size: 251,
    k: 2,
};

#[test]
fn lb_failover_with_consistent_hash_loses_no_established_connection() {
    let outcome = run(&Scenario::lb_failover(CH, 400).with_seed(7)).unwrap();
    assert_eq!(outcome.lb_stats.failovers, 1);
    assert!(outcome.lb_stats.rehunts > 0, "flows were re-hunted");
    assert!(outcome.ownership_adverts() > 0, "owners re-announced");
    assert_eq!(
        outcome.broken_established(),
        0,
        "in-band SYN-ACK reconstruction must lose zero established connections"
    );
    assert_eq!(outcome.unfinished(), 0);
    assert_eq!(
        outcome.collector.completed_count() + outcome.collector.reset_count(),
        400
    );
    let latency = outcome
        .reconstruction_latency_s
        .expect("reconstruction happened");
    assert!(latency >= 0.0 && latency < outcome.duration_seconds);
    // Re-hunts and adverts agree: every re-hunted flow found its owner.
    assert_eq!(outcome.lb_stats.rehunts, outcome.ownership_adverts());
}

#[test]
fn lb_failover_with_maglev_loses_no_established_connection() {
    let outcome = run(&Scenario::lb_failover(MAGLEV, 400).with_seed(7)).unwrap();
    assert_eq!(outcome.broken_established(), 0);
    assert!(outcome.lb_stats.rehunts > 0);
}

#[test]
fn lb_failover_with_random_candidates_breaks_connections() {
    // The contrast case: random candidate lists are not reproducible, so
    // after the flow table is wiped the owner is usually *not* in the
    // re-hunt list and the connection must be reset.
    let outcome =
        run(&Scenario::lb_failover(DispatcherConfig::Random { k: 2 }, 400).with_seed(7)).unwrap();
    assert!(outcome.lb_stats.rehunts > 0);
    assert!(
        outcome.orphaned() > 0,
        "random dispatch cannot reconstruct ownership deterministically"
    );
}

#[test]
fn single_candidate_rehunts_are_still_recognised() {
    // With k = 1 a re-hunt route would be shape-identical to steered
    // traffic were it not for the load-balancer marker segment; this pins
    // that the marker keeps ownership routing working at the degenerate
    // fan-out.
    let ch1 = DispatcherConfig::ConsistentHash { vnodes: 64, k: 1 };
    let outcome = run(&Scenario::lb_failover(ch1, 400).with_seed(7)).unwrap();
    assert!(outcome.lb_stats.rehunts > 0);
    assert_eq!(
        outcome.broken_established(),
        0,
        "k = 1 consistent hashing still finds the owner deterministically"
    );
    assert_eq!(outcome.lb_stats.rehunts, outcome.ownership_adverts());

    // Random k = 1: the single re-hunt candidate is almost never the owner,
    // so those connections are reset rather than silently served elsewhere.
    let outcome =
        run(&Scenario::lb_failover(DispatcherConfig::Random { k: 1 }, 400).with_seed(7)).unwrap();
    assert!(outcome.lb_stats.rehunts > 0);
    assert!(outcome.orphaned() > 0);
}

#[test]
fn recovery_rejects_oversized_fanout() {
    let mut scenario = Scenario::new("too_wide").with_queries(10);
    scenario.cluster.initial_servers = 8;
    scenario.cluster.dispatcher = DispatcherConfig::ConsistentHash { vnodes: 16, k: 7 };
    assert!(scenario.cluster.recover_flows);
    let err = run(&scenario).unwrap_err();
    assert!(err.to_string().contains("at most"));
}

#[test]
fn rolling_upgrade_disrupts_only_the_removed_server() {
    let outcome = run(&Scenario::rolling_upgrade(CH, 600).with_seed(3)).unwrap();
    assert_eq!(outcome.lb_stats.failovers, 0);
    // Connections established on server 0 when it was removed are broken.
    assert!(
        outcome.broken_established() > 0,
        "an abrupt removal must disrupt the connections it hosted"
    );
    // The cluster as a whole kept serving: the vast majority completed.
    let sent = outcome.collector.len() as u64;
    assert_eq!(sent, 600);
    assert!(outcome.collector.completed_count() as u64 >= sent * 9 / 10);
    // Server 0 served in both incarnations (before removal and after
    // re-add).
    assert!(outcome.server_stats[0].completed > 0);
    // Three phases: start, remove, re-add.
    assert_eq!(outcome.phases.len(), 3);
    assert_eq!(outcome.phases[1].label, "remove-server-0");
}

#[test]
fn scale_out_2x_shifts_load_onto_the_new_servers() {
    let outcome = run(&Scenario::scale_out_2x(CH, 600).with_seed(5)).unwrap();
    // The four late-joining servers all end up serving traffic.
    for i in 4..8 {
        assert!(
            outcome.server_stats[i].completed > 0,
            "server {i} joined mid-run and must serve requests"
        );
    }
    // Scale-out itself breaks nothing: only remappings of *new* flows.
    assert_eq!(outcome.unfinished(), 0);
    assert_eq!(outcome.phases.len(), 5, "start + four add events");
}

#[test]
fn heterogeneous_capacity_and_multi_vip_cluster() {
    let mut scenario = Scenario::new("hetero_multi_vip")
        .with_dispatcher(CH)
        .with_queries(400)
        .with_seed(11);
    scenario.cluster.vips = 2;
    // Server 1 starts tiny and is re-provisioned upwards mid-run.
    scenario.cluster.capacity_overrides.push(CapacityOverride {
        server: 1,
        workers: 2,
        cores: 1,
    });
    let mid = scenario.workload.send_window_seconds() * 0.5;
    let scenario = scenario.at(
        mid,
        ScenarioEvent::SetCapacity {
            server: 1,
            workers: 16,
            cores: 2,
        },
    );
    let outcome = run(&scenario).unwrap();
    assert_eq!(outcome.collector.len(), 400);
    // Both VIPs are served through the same cluster and flow table.
    assert_eq!(outcome.lb_stats.new_flows, 400);
    assert!(outcome.collector.completed_count() > 350);
    assert_eq!(outcome.broken_established(), 0);
    assert_eq!(outcome.phases.len(), 2);
    assert!(outcome.phases[1].label.starts_with("set-capacity-1"));
}

#[test]
fn correlated_failures_disrupt_only_the_failed_pair() {
    let outcome = run(&Scenario::correlated_failures(CH, 600).with_seed(3)).unwrap();
    // Both removals fire at the same instant: the two phases collapse onto
    // one boundary (start + two zero-width-separated phases).
    assert_eq!(outcome.phases.len(), 3);
    assert_eq!(outcome.phases[1].label, "remove-server-2");
    assert_eq!(outcome.phases[2].label, "remove-server-5");
    assert_eq!(
        outcome.phases[1].start_seconds,
        outcome.phases[2].start_seconds
    );
    // The failed pair hosted connections, which are broken…
    assert!(outcome.broken_established() > 0);
    // …but the cluster as a whole keeps serving.
    assert_eq!(outcome.collector.len(), 600);
    assert!(outcome.collector.completed_count() as u64 >= 600 * 85 / 100);
    // The dead servers serve nothing after the removal: every completion
    // they report happened in their single (pre-removal) incarnation.
    assert!(outcome.server_stats[2].completed > 0);
    assert!(outcome.server_stats[5].completed > 0);
    for i in [0, 1, 3, 4, 6, 7] {
        assert!(outcome.server_stats[i].completed > 0, "survivor {i} serves");
    }
}

#[test]
fn correlated_failures_with_maglev_complete_most_requests() {
    let outcome = run(&Scenario::correlated_failures(MAGLEV, 600).with_seed(3)).unwrap();
    assert_eq!(outcome.collector.len(), 600);
    assert!(outcome.collector.completed_count() as u64 >= 600 * 85 / 100);
}

#[test]
fn scenario_runs_are_deterministic() {
    let scenario = Scenario::rolling_upgrade(MAGLEV, 300).with_seed(13);
    let a = run(&scenario).unwrap().report();
    let b = run(&scenario).unwrap().report();
    assert_eq!(a, b);
    let json_a = serde_json::to_string(&a).unwrap();
    let json_b = serde_json::to_string(&b).unwrap();
    assert_eq!(json_a, json_b);
    assert!(json_a.contains("\"rolling_upgrade\""));
}

#[test]
fn lossy_lb_failover_completes_everything_through_retransmission() {
    let outcome = run(&Scenario::lossy_lb_failover(CH, 400).with_seed(7)).unwrap();
    assert!(outcome.dropped_injected > 0, "1% loss must drop something");
    assert!(outcome.retransmits > 0, "drops must be retransmitted");
    assert_eq!(outcome.aborted, 0, "1% loss never exhausts the budget");
    assert_eq!(outcome.broken_established(), 0);
    assert_eq!(
        outcome.collector.completed_count() + outcome.collector.reset_count(),
        400,
        "every request resolves despite the lossy fabric"
    );
    // The report carries the per-cause taxonomy, and only non-zero causes.
    let report = outcome.report();
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("\"dropped_injected\""));
    assert!(!json.contains("\"dropped_queue\""));
    assert!(!json.contains("\"dropped_link_down\""));
    let back: srlb_scenario::ScenarioReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}

#[test]
fn incast_tail_drops_at_the_hot_server_queue() {
    let outcome = run(&Scenario::incast(CH, 400).with_seed(7)).unwrap();
    assert!(
        outcome.dropped_queue > 0,
        "the shallow queue must tail-drop"
    );
    assert_eq!(outcome.dropped_injected, 0);
    assert!(outcome.retransmits > 0);
    assert!(
        outcome.collector.completed_count() > 300,
        "most requests survive the incast, got {}",
        outcome.collector.completed_count()
    );
}

#[test]
fn saturated_uplink_drops_on_ingress_but_recovers() {
    let outcome = run(&Scenario::saturated_uplink(CH, 400).with_seed(7)).unwrap();
    assert!(outcome.dropped_queue > 0, "uplink queue must overflow");
    assert!(outcome.retransmits > 0);
    assert!(outcome.collector.completed_count() > 300);
}

#[test]
fn fault_free_reports_serialize_without_fault_counters() {
    let outcome = run(&Scenario::lb_failover(CH, 200).with_seed(7)).unwrap();
    assert_eq!(outcome.dropped_injected, 0);
    assert_eq!(outcome.retransmits, 0);
    let json = serde_json::to_string(&outcome.report()).unwrap();
    for key in [
        "aborted",
        "retransmits",
        "dropped_injected",
        "dropped_queue",
        "dropped_link_down",
    ] {
        assert!(
            !json.contains(key),
            "fault-free report leaked {key}: {json}"
        );
    }
}
