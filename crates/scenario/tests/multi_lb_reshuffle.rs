//! End-to-end tests of the `ecmp_reshuffle` preset: an `lb_count`-instance
//! LB tier behind deterministic resilient ECMP steering, with one instance
//! withdrawn mid-run.  The SRLB resilience claim across LB instances:
//! application-level consistent hashing plus in-band flow-table
//! reconstruction keeps every established connection alive when its flows
//! are re-steered onto peers that have never seen them — while random
//! candidate selection orphans them.

use srlb_core::dispatch::DispatcherConfig;
use srlb_scenario::{run, Scenario};

const CH: DispatcherConfig = DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 };
const MAGLEV: DispatcherConfig = DispatcherConfig::Maglev {
    table_size: 251,
    k: 2,
};

#[test]
fn reshuffle_with_consistent_hash_loses_no_established_connection() {
    for lb_count in [2usize, 4] {
        let outcome = run(&Scenario::ecmp_reshuffle(CH, lb_count, 400).with_seed(7)).unwrap();
        assert_eq!(outcome.per_lb_stats.len(), lb_count);
        assert!(
            outcome.lb_stats.rehunts > 0,
            "re-steered flows must be re-hunted (lb_count {lb_count})"
        );
        assert_eq!(
            outcome.broken_established(),
            0,
            "consistent hashing must survive an ECMP reshuffle (lb_count {lb_count})"
        );
        assert_eq!(outcome.lb_stats.missing_flow, 0);
        // The withdrawn instance (the last) carried flows before the
        // reshuffle; the survivors did the re-hunting.
        assert!(outcome.per_lb_stats[lb_count - 1].new_flows > 0);
        assert_eq!(outcome.per_lb_stats[lb_count - 1].rehunts, 0);
        let survivor_rehunts: u64 = outcome.per_lb_stats[..lb_count - 1]
            .iter()
            .map(|s| s.rehunts)
            .sum();
        assert_eq!(survivor_rehunts, outcome.lb_stats.rehunts);
    }
}

#[test]
fn reshuffle_with_maglev_loses_no_established_connection() {
    let outcome = run(&Scenario::ecmp_reshuffle(MAGLEV, 2, 400).with_seed(7)).unwrap();
    assert!(outcome.lb_stats.rehunts > 0);
    assert_eq!(outcome.broken_established(), 0);
}

#[test]
fn reshuffle_with_random_candidates_orphans_flows() {
    let outcome =
        run(&Scenario::ecmp_reshuffle(DispatcherConfig::Random { k: 2 }, 4, 400).with_seed(7))
            .unwrap();
    assert!(outcome.lb_stats.rehunts > 0);
    assert!(
        outcome.broken_established() > 0,
        "random candidates cannot reconstruct ownership across instances"
    );
}

#[test]
fn reshuffle_degenerates_to_a_static_run_for_one_lb() {
    let scenario = Scenario::ecmp_reshuffle(CH, 1, 300).with_seed(7);
    assert!(scenario.events.is_empty(), "no peer to withdraw to");
    let outcome = run(&scenario).unwrap();
    assert_eq!(outcome.broken_established(), 0);
    assert_eq!(outcome.lb_stats.rehunts, 0);
    assert_eq!(outcome.per_lb_stats.len(), 1);
    assert_eq!(outcome.per_lb_stats[0], outcome.lb_stats);
}

#[test]
fn reshuffle_report_carries_per_instance_counters() {
    let outcome = run(&Scenario::ecmp_reshuffle(CH, 2, 300).with_seed(7)).unwrap();
    let report = outcome.report();
    assert_eq!(report.per_lb.len(), 2);
    // The serialised report includes per-instance counters for multi-LB
    // tiers and omits them for the degenerate single-LB case (keeping the
    // pre-tier BENCH_scenarios.json entries byte-stable).
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("\"per_lb\""));
    let single = run(&Scenario::ecmp_reshuffle(CH, 1, 300).with_seed(7)).unwrap();
    let json = serde_json::to_string(&single.report()).unwrap();
    assert!(!json.contains("\"per_lb\""));
}

#[test]
fn reshuffle_is_deterministic() {
    let a = run(&Scenario::ecmp_reshuffle(MAGLEV, 4, 300).with_seed(9)).unwrap();
    let b = run(&Scenario::ecmp_reshuffle(MAGLEV, 4, 300).with_seed(9)).unwrap();
    assert_eq!(a.report(), b.report());
    assert_eq!(a.collector.records(), b.collector.records());
}
