//! Figure 5 bench: CDF of page load time at ρ = 0.61 for every policy.

use criterion::{criterion_group, criterion_main, Criterion};
use srlb_bench::{fig5_cdf_low_load, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_cdf_low_load");
    group.sample_size(10);
    group.bench_function("cdf_rho_0_61_tiny", |b| {
        b.iter(|| {
            let series = fig5_cdf_low_load(Scale::Tiny, 42, 1);
            assert_eq!(series.len(), 5);
            criterion::black_box(series)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
