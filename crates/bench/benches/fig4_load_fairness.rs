//! Figure 4 bench: instantaneous server load (mean and Jain fairness) over
//! time at ρ = 0.88, RR vs SR4.

use criterion::{criterion_group, criterion_main, Criterion};
use srlb_bench::{fig4_load_fairness, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_load_fairness");
    group.sample_size(10);
    group.bench_function("load_fairness_tiny", |b| {
        b.iter(|| {
            let series = fig4_load_fairness(Scale::Tiny, 42, 1);
            assert_eq!(series.len(), 2);
            assert!(series.iter().all(|s| !s.points.is_empty()));
            criterion::black_box(series)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
