//! Micro-benchmarks of the load balancer's per-flow operations: candidate
//! selection (random two-choice, consistent hash, Maglev), ECMP steering
//! across the LB tier, and flow-table learn/lookup.

use criterion::{criterion_group, criterion_main, Criterion};
use srlb_core::dispatch::{
    CandidateList, ConsistentHashDispatcher, Dispatcher, MaglevDispatcher, RandomDispatcher,
};
use srlb_core::flow_table::FlowTable;
use srlb_net::{AddressPlan, FlowKey, Protocol};
use srlb_sim::{ecmp_steer, NodeId, SimRng, SimTime};

fn flows(n: u16) -> Vec<FlowKey> {
    let plan = AddressPlan::default();
    (0..n)
        .map(|p| {
            FlowKey::new(
                plan.client_addr(0),
                plan.vip(0),
                1024 + p,
                80,
                Protocol::Tcp,
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let plan = AddressPlan::default();
    let servers: Vec<_> = plan.server_addrs(12).collect();
    let keys = flows(1024);
    let mut rng = SimRng::new(1);

    // The dispatch benches measure the production fast path: candidates
    // written into a reusable buffer, no per-flow allocation.
    let mut out = CandidateList::new();

    let mut random = RandomDispatcher::power_of_two(servers.clone());
    c.bench_function("dispatch_random_two_choice", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            random.candidates_into(&keys[i], &mut rng, &mut out);
            criterion::black_box(out.as_slice().len())
        })
    });

    let mut ring = ConsistentHashDispatcher::new(servers.clone(), 128, 2);
    c.bench_function("dispatch_consistent_hash", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            ring.candidates_into(&keys[i], &mut rng, &mut out);
            criterion::black_box(out.as_slice().len())
        })
    });

    let mut maglev = MaglevDispatcher::new(servers.clone(), 65_537, 2);
    c.bench_function("dispatch_maglev", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            maglev.candidates_into(&keys[i], &mut rng, &mut out);
            criterion::black_box(out.as_slice().len())
        })
    });

    let tier: Vec<NodeId> = (1..=4).map(NodeId).collect();
    c.bench_function("steer_ecmp_tier4", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            criterion::black_box(ecmp_steer(keys[i].stable_hash(), &tier))
        })
    });

    c.bench_function("flow_table_learn_and_lookup", |b| {
        let mut table = FlowTable::with_default_timeout();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            table.learn(keys[i], servers[i % servers.len()], SimTime::ZERO);
            criterion::black_box(table.lookup(&keys[i], SimTime::ZERO))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
