//! Figure 8 bench: CDF of wiki-page load time over the whole Wikipedia
//! replay, RR vs SR4.

use criterion::{criterion_group, criterion_main, Criterion};
use srlb_bench::{fig8_wiki_cdf, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_wiki_cdf");
    group.sample_size(10);
    group.bench_function("wiki_cdf_tiny", |b| {
        b.iter(|| {
            let result = fig8_wiki_cdf(Scale::Tiny, 42, 1);
            assert_eq!(result.series.len(), 2);
            criterion::black_box(result)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
