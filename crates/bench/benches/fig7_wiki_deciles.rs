//! Figure 7 bench: Wikipedia replay — deciles 1–9 of the wiki-page load time
//! per time bin, RR vs SR4.

use criterion::{criterion_group, criterion_main, Criterion};
use srlb_bench::{fig7_wiki_deciles, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_wiki_deciles");
    group.sample_size(10);
    group.bench_function("wiki_deciles_tiny", |b| {
        b.iter(|| {
            let series = fig7_wiki_deciles(Scale::Tiny, 42, 1);
            assert_eq!(series.len(), 2);
            assert!(series.iter().all(|s| !s.deciles.is_empty()));
            criterion::black_box(series)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
