//! Ablation A3: SRdyn adaptation-window size.
//!
//! The paper fixes the SRdyn window at 50 decisions with an acceptance band
//! of [0.4, 0.6]; this bench varies the window size to show how the choice
//! affects the policy (and its runtime cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srlb_core::experiment::{ExperimentConfig, PolicyKind};
use srlb_server::PolicyConfig;

fn run_with_window(window: u32) -> f64 {
    let policy = PolicyKind::Custom {
        candidates: 2,
        policy: PolicyConfig::Dynamic {
            initial_threshold: 1,
            window_size: window,
            low_ratio: 0.4,
            high_ratio: 0.6,
        },
    };
    ExperimentConfig::poisson_paper(0.88, policy)
        .with_queries(500)
        .with_seed(42)
        .run()
        .expect("valid configuration")
        .mean_response_seconds()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dyn_window");
    group.sample_size(10);
    for window in [10u32, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| criterion::black_box(run_with_window(w)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
