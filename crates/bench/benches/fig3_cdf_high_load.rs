//! Figure 3 bench: CDF of page load time at ρ = 0.88 for every policy.

use criterion::{criterion_group, criterion_main, Criterion};
use srlb_bench::{fig3_cdf_high_load, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_cdf_high_load");
    group.sample_size(10);
    group.bench_function("cdf_rho_0_88_tiny", |b| {
        b.iter(|| {
            let series = fig3_cdf_high_load(Scale::Tiny, 42, 1);
            assert_eq!(series.len(), 5);
            assert!(series.iter().all(|s| !s.points.is_empty()));
            criterion::black_box(series)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
