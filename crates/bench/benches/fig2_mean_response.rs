//! Figure 2 bench: mean response time vs load factor ρ (RR, SR4, SR8, SR16,
//! SRdyn).  Runs the same harness as the `figures` binary at a reduced scale
//! so regressions in experiment runtime are visible in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use srlb_bench::{fig2_mean_response, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_mean_response");
    group.sample_size(10);
    group.bench_function("rho_sweep_tiny", |b| {
        b.iter(|| {
            let series = fig2_mean_response(Scale::Tiny, 42, 1);
            assert_eq!(series.len(), 5);
            criterion::black_box(series)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
