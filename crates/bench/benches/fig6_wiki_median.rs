//! Figure 6 bench: Wikipedia replay — wiki-page rate and median load time
//! per time bin, RR vs SR4.

use criterion::{criterion_group, criterion_main, Criterion};
use srlb_bench::{fig6_wiki_median, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_wiki_median");
    group.sample_size(10);
    group.bench_function("wiki_median_tiny", |b| {
        b.iter(|| {
            let series = fig6_wiki_median(Scale::Tiny, 42, 1);
            assert_eq!(series.len(), 2);
            assert!(series.iter().all(|s| !s.bins.is_empty()));
            criterion::black_box(series)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
