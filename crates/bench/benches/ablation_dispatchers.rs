//! Ablation A2: candidate-selection policy at the load balancer.
//!
//! Compares the paper's uniform-random two-choice selection against
//! consistent hashing and a Maglev table (the related-work baselines), with
//! the same SR4 acceptance policy, at ρ = 0.88.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srlb_core::dispatch::DispatcherConfig;
use srlb_core::testbed::{Testbed, TestbedConfig};
use srlb_server::PolicyConfig;
use srlb_workload::{PoissonWorkload, ServiceTime};

fn run_with_dispatcher(dispatcher: DispatcherConfig) -> f64 {
    let config = TestbedConfig {
        dispatcher,
        record_load: false,
        seed: 42,
        ..TestbedConfig::paper(
            PolicyConfig::Static { threshold: 4 },
            DispatcherConfig::Random { k: 2 },
        )
    };
    // rho = 0.88 against the 12 x 2-core cluster (lambda0 = 240/s).
    let requests =
        PoissonWorkload::new(0.88 * 240.0, 500, ServiceTime::paper_poisson()).generate(42);
    let result = Testbed::new(config)
        .expect("valid configuration")
        .run(requests);
    result.collector.summary(None).mean() / 1e3
}

fn bench(c: &mut Criterion) {
    let cases = [
        ("random_k2", DispatcherConfig::Random { k: 2 }),
        (
            "consistent_hash",
            DispatcherConfig::ConsistentHash { vnodes: 128, k: 2 },
        ),
        (
            "maglev",
            DispatcherConfig::Maglev {
                table_size: 2039,
                k: 2,
            },
        ),
    ];
    let mut group = c.benchmark_group("ablation_dispatchers");
    group.sample_size(10);
    for (name, dispatcher) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &dispatcher, |b, d| {
            b.iter(|| criterion::black_box(run_with_dispatcher(*d)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
