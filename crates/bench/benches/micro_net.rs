//! Micro-benchmarks of the packet layer: SRH and packet encode/decode, flow
//! key hashing.  These are the per-packet operations a real SRLB dataplane
//! performs on every SYN.

use criterion::{criterion_group, criterion_main, Criterion};
use srlb_net::{AddressPlan, PacketBuilder, SegmentRoutingHeader, ServerId, TcpFlags};

fn bench(c: &mut Criterion) {
    let plan = AddressPlan::default();
    let route = vec![
        plan.server_addr(ServerId(3)),
        plan.server_addr(ServerId(7)),
        plan.vip(0),
    ];
    let srh = SegmentRoutingHeader::from_route(&route).unwrap();
    let packet = PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
        .ports(49_152, 80)
        .flags(TcpFlags::SYN)
        .segment_routing(srh.clone())
        .build();
    let wire = packet.encode();

    c.bench_function("srh_encode", |b| {
        b.iter(|| criterion::black_box(srh.encode()))
    });
    c.bench_function("srh_decode", |b| {
        let bytes = srh.encode();
        b.iter(|| criterion::black_box(SegmentRoutingHeader::decode(&bytes).unwrap()))
    });
    c.bench_function("packet_encode", |b| {
        b.iter(|| criterion::black_box(packet.encode()))
    });
    c.bench_function("packet_decode", |b| {
        b.iter(|| criterion::black_box(srlb_net::Packet::decode(&wire).unwrap()))
    });
    c.bench_function("flow_key_stable_hash", |b| {
        let key = packet.flow_key_forward();
        b.iter(|| criterion::black_box(key.stable_hash()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
