//! Ablation A1: effect of the number of candidates k in the SR list.
//!
//! The paper (citing Mitzenmacher) argues that two candidates capture most of
//! the benefit; this bench runs k = 1..4 with the SR4 acceptance policy at
//! ρ = 0.88 so both the runtime and the resulting mean response times can be
//! compared.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srlb_core::experiment::{ExperimentConfig, PolicyKind};
use srlb_server::PolicyConfig;

fn run_with_candidates(k: usize) -> f64 {
    let policy = if k == 1 {
        PolicyKind::RoundRobin
    } else {
        PolicyKind::Custom {
            candidates: k,
            policy: PolicyConfig::Static { threshold: 4 },
        }
    };
    ExperimentConfig::poisson_paper(0.88, policy)
        .with_queries(500)
        .with_seed(42)
        .run()
        .expect("valid configuration")
        .mean_response_seconds()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_candidates");
    group.sample_size(10);
    for k in 1..=4usize {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| criterion::black_box(run_with_candidates(k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
