//! Ablation A1: effect of the number of candidates k in the SR list.
//!
//! The paper (citing Mitzenmacher) argues that two candidates capture most of
//! the benefit; this bench sweeps k = 1..=7 — up to the route limit of
//! `MAX_SEGMENTS - 1` candidates plus the VIP in one Service Hunting SRH —
//! with the SR4 acceptance policy at ρ = 0.88 so both the runtime and the
//! resulting mean response times can be compared across the whole feasible
//! range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srlb_core::experiment::{ExperimentConfig, PolicyKind};
use srlb_server::PolicyConfig;

fn run_with_candidates(k: usize) -> f64 {
    let policy = if k == 1 {
        PolicyKind::RoundRobin
    } else {
        PolicyKind::Custom {
            candidates: k,
            policy: PolicyConfig::Static { threshold: 4 },
        }
    };
    ExperimentConfig::poisson_paper(0.88, policy)
        .with_queries(500)
        .with_seed(42)
        .run()
        .expect("valid configuration")
        .mean_response_seconds()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_candidates");
    group.sample_size(10);
    // The upper bound is MAX_CANDIDATES = MAX_SEGMENTS - 1: the widest
    // candidate list that still fits a Service Hunting route.
    assert_eq!(srlb_core::dispatch::MAX_CANDIDATES, 7);
    for k in 1..=7usize {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| criterion::black_box(run_with_candidates(k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
