//! Round-trips every committed spec under `examples/specs/`:
//! parse → serialize → byte-compare against the file.
//!
//! This pins two properties CI relies on:
//!
//! 1. the committed files stay parseable by the current
//!    `ExperimentSpec` schema (schema drift fails loudly here first), and
//! 2. the files stay in canonical form (`figures -- write-specs` output),
//!    so `figures -- run <spec>` reproduces exactly what is reviewed.

use std::path::PathBuf;

use srlb_bench::{example_specs, load_spec};
use srlb_core::spec::ExperimentSpec;

fn specs_dir() -> PathBuf {
    srlb_bench::micro::workspace_root().join("examples/specs")
}

#[test]
fn every_committed_spec_round_trips_byte_identically() {
    let dir = specs_dir();
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("examples/specs missing at {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let spec: ExperimentSpec = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        spec.validate()
            .unwrap_or_else(|e| panic!("{} is invalid: {e}", path.display()));
        let reserialized = format!("{}\n", serde_json::to_string(&spec).unwrap());
        assert_eq!(
            reserialized,
            text,
            "{} is not in canonical form; regenerate with `figures -- write-specs`",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 3, "expected at least 3 committed specs");
}

#[test]
fn committed_specs_match_the_generator() {
    // The files on disk are exactly what `write_example_specs` would write
    // today — name by name, byte by byte.
    let dir = specs_dir();
    for (stem, spec) in example_specs() {
        let path = dir.join(format!("{stem}.json"));
        let committed =
            load_spec(&path).unwrap_or_else(|e| panic!("{} unreadable: {e}", path.display()));
        assert_eq!(committed, spec, "{stem} drifted from the generator");
    }
}
