//! The dynamic-cluster scenario sweep (`figures -- scenarios`).
//!
//! Runs the canned scenario presets (load-balancer failover, rolling
//! upgrade, 2× scale-out) under each candidate-selection policy and writes
//! a machine-readable comparison to `BENCH_scenarios.json` at the workspace
//! root: broken/re-routed connection counts, flow-table reconstruction
//! latency and per-phase disruption statistics, plus standalone dispatcher
//! remapping probes for single-server churn (the quantities the property
//! tests in `crates/core/tests/proptest_churn.rs` bound).
//!
//! The **ECMP-reshuffle sweep** is appended to the same report: every
//! dispatcher crossed with LB tier sizes {1, 2, 4}, withdrawing one tier
//! instance mid-run ([`srlb_scenario::Scenario::ecmp_reshuffle`]).  It
//! demonstrates end-to-end that consistent-hash and Maglev candidates keep
//! every established connection alive when flows are re-steered onto LB
//! instances that have never seen them, while random candidates orphan
//! them.
//!
//! Every `(preset, dispatcher)` cell is an independent seeded simulation
//! run through [`parallel_map`](crate::parallel::parallel_map), so the
//! output is byte-identical whatever the `--jobs` worker count.

use std::io::Write;
use std::net::Ipv6Addr;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use srlb_core::dispatch::DispatcherConfig;
use srlb_net::{AddressPlan, FlowKey, Protocol, ServerId};
use srlb_scenario::{run, Scenario, ScenarioReport};

use crate::figures::Scale;
use crate::parallel::parallel_map;

/// Default output file name, written to the workspace root (see
/// [`crate::micro::workspace_root`]).
pub const BENCH_SCENARIOS_FILE: &str = "BENCH_scenarios.json";

/// Queries per scenario run at each scale.
fn scenario_queries(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 10_000,
        Scale::Quick => 1_500,
        Scale::Tiny => 300,
    }
}

/// The candidate-selection policies compared by the sweep.
fn dispatchers() -> Vec<(&'static str, DispatcherConfig)> {
    vec![
        (
            "consistent-hash",
            DispatcherConfig::ConsistentHash { vnodes: 128, k: 2 },
        ),
        (
            "maglev",
            DispatcherConfig::Maglev {
                table_size: 2039,
                k: 2,
            },
        ),
        ("random", DispatcherConfig::Random { k: 2 }),
    ]
}

/// One dispatcher's owner-remapping behaviour under single-server churn,
/// measured over a deterministic probe-flow population (no simulation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemapReport {
    /// Dispatcher label.
    pub dispatcher: String,
    /// `"remove-one"` or `"add-one"`.
    pub op: String,
    /// Probe flows measured.
    pub probes: u64,
    /// Probes whose owner (first candidate) changed.
    pub moved: u64,
    /// `moved / probes`.
    pub moved_fraction: f64,
    /// Moves that were *not required* by the membership change: on removal,
    /// flows whose old owner still exists; on addition, flows that moved to
    /// a server other than the new one.  Zero for ideal consistent hashing.
    pub collateral: u64,
    /// `collateral / probes`.
    pub collateral_fraction: f64,
}

/// Deterministic probe-flow population.
fn probe_flows(n: u32) -> Vec<FlowKey> {
    let plan = AddressPlan::default();
    (0..n)
        .map(|i| {
            FlowKey::new(
                plan.client_addr(i / 50_000),
                plan.vip(0),
                (1024 + (i % 50_000)) as u16,
                80,
                Protocol::Tcp,
            )
        })
        .collect()
}

/// First-candidate owners of every probe flow under `config` over
/// `servers`.
fn owners(config: DispatcherConfig, servers: Vec<Ipv6Addr>, flows: &[FlowKey]) -> Vec<Ipv6Addr> {
    let mut dispatcher = config.build(servers);
    let mut rng = srlb_sim::SimRng::new(1);
    let mut out = srlb_core::dispatch::CandidateList::new();
    flows
        .iter()
        .map(|flow| {
            dispatcher.candidates_into(flow, &mut rng, &mut out);
            out.as_slice()[0]
        })
        .collect()
}

/// Measures owner remapping for one dispatcher config when one server is
/// removed from / added to a 12-server cluster.
fn remap_probe(label: &str, config: DispatcherConfig) -> Vec<RemapReport> {
    let plan = AddressPlan::default();
    let flows = probe_flows(8_192);
    let base: Vec<Ipv6Addr> = plan.server_addrs(12).collect();
    let before = owners(config, base.clone(), &flows);

    let mut reports = Vec::with_capacity(2);

    // Remove a mid-cluster server.
    let removed = plan.server_addr(ServerId(5));
    let shrunk: Vec<Ipv6Addr> = base.iter().copied().filter(|a| *a != removed).collect();
    let after = owners(config, shrunk, &flows);
    let moved = before
        .iter()
        .zip(&after)
        .filter(|(old, new)| old != new)
        .count() as u64;
    let collateral = before
        .iter()
        .zip(&after)
        .filter(|(old, new)| old != new && **old != removed)
        .count() as u64;
    reports.push(RemapReport {
        dispatcher: label.to_string(),
        op: "remove-one".to_string(),
        probes: flows.len() as u64,
        moved,
        moved_fraction: moved as f64 / flows.len() as f64,
        collateral,
        collateral_fraction: collateral as f64 / flows.len() as f64,
    });

    // Add a thirteenth server.
    let added = plan.server_addr(ServerId(12));
    let mut grown = base.clone();
    grown.push(added);
    let after = owners(config, grown, &flows);
    let moved = before
        .iter()
        .zip(&after)
        .filter(|(old, new)| old != new)
        .count() as u64;
    let collateral = before
        .iter()
        .zip(&after)
        .filter(|(old, new)| old != new && **new != added)
        .count() as u64;
    reports.push(RemapReport {
        dispatcher: label.to_string(),
        op: "add-one".to_string(),
        probes: flows.len() as u64,
        moved,
        moved_fraction: moved as f64 / flows.len() as f64,
        collateral,
        collateral_fraction: collateral as f64 / flows.len() as f64,
    });
    reports
}

/// One cell of the ECMP-reshuffle sweep: an `lb_count`-instance LB tier
/// with the last instance withdrawn mid-run (`lb_count = 1` is the
/// event-free degenerate control).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcmpReshuffleReport {
    /// Dispatcher label.
    pub dispatcher: String,
    /// Tier size at the start of the run.
    pub lb_count: usize,
    /// The scenario report (per-instance LB counters included for
    /// multi-instance tiers).
    pub report: ScenarioReport,
}

/// The JSON document written to [`BENCH_SCENARIOS_FILE`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenariosDoc {
    /// Schema version of this report.
    pub schema: u32,
    /// Scale label the sweep ran at.
    pub scale: String,
    /// Seed used for every run.
    pub seed: u64,
    /// One report per `(preset, dispatcher)` cell, in grid order.
    pub scenarios: Vec<ScenarioReport>,
    /// Dispatcher remapping probes under single-server churn.
    pub remap: Vec<RemapReport>,
    /// The ECMP-reshuffle sweep: dispatcher × lb_count ∈ {1, 2, 4}
    /// (absent from reports written before the multi-LB refactor).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub ecmp_reshuffle: Vec<EcmpReshuffleReport>,
    /// The fault-injection sweep: the lossy-failover, incast and
    /// saturated-uplink presets crossed with every dispatcher (absent from
    /// reports written before the fault layer existed).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub faults: Vec<ScenarioReport>,
}

/// The LB tier sizes the ECMP-reshuffle sweep crosses each dispatcher
/// with.
pub const ECMP_RESHUFFLE_LB_COUNTS: [usize; 3] = [1, 2, 4];

/// Runs the scenario sweep across `jobs` workers.
pub fn run_scenarios(scale: Scale, seed: u64, jobs: usize) -> ScenariosDoc {
    let queries = scenario_queries(scale);
    let mut grid: Vec<Scenario> = Vec::new();
    for (_, dispatcher) in dispatchers() {
        grid.push(Scenario::lb_failover(dispatcher, queries).with_seed(seed));
        grid.push(Scenario::rolling_upgrade(dispatcher, queries).with_seed(seed));
        grid.push(Scenario::scale_out_2x(dispatcher, queries).with_seed(seed));
    }
    let scenarios = parallel_map(&grid, jobs, |scenario| {
        run(scenario).expect("preset scenarios are valid").report()
    });
    let remap = dispatchers()
        .into_iter()
        .filter(|(label, _)| *label != "random")
        .flat_map(|(label, config)| remap_probe(label, config))
        .collect();

    // The ECMP-reshuffle sweep: dispatcher × tier size.
    let mut reshuffle_grid: Vec<(String, usize, Scenario)> = Vec::new();
    for (label, dispatcher) in dispatchers() {
        for lb_count in ECMP_RESHUFFLE_LB_COUNTS {
            reshuffle_grid.push((
                label.to_string(),
                lb_count,
                Scenario::ecmp_reshuffle(dispatcher, lb_count, queries).with_seed(seed),
            ));
        }
    }
    let ecmp_reshuffle = parallel_map(&reshuffle_grid, jobs, |(label, lb_count, scenario)| {
        EcmpReshuffleReport {
            dispatcher: label.clone(),
            lb_count: *lb_count,
            report: run(scenario).expect("reshuffle preset is valid").report(),
        }
    });

    // The fault-injection sweep: lossy failover, incast into a hot server,
    // and a saturated client uplink, per dispatcher.
    let mut fault_grid: Vec<Scenario> = Vec::new();
    for (_, dispatcher) in dispatchers() {
        fault_grid.push(Scenario::lossy_lb_failover(dispatcher, queries).with_seed(seed));
        fault_grid.push(Scenario::incast(dispatcher, queries).with_seed(seed));
        fault_grid.push(Scenario::saturated_uplink(dispatcher, queries).with_seed(seed));
    }
    let faults = parallel_map(&fault_grid, jobs, |scenario| {
        run(scenario).expect("fault presets are valid").report()
    });

    ScenariosDoc {
        schema: 1,
        scale: format!("{scale:?}"),
        seed,
        scenarios,
        remap,
        ecmp_reshuffle,
        faults,
    }
}

/// Writes an already-computed sweep report as JSON to `dir`, returning the
/// path written.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_bench_scenarios(dir: &Path, doc: &ScenariosDoc) -> std::io::Result<PathBuf> {
    let json = serde_json::to_string(doc)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let path = dir.join(BENCH_SCENARIOS_FILE);
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{json}")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_hash_remap_probe_has_no_collateral_damage() {
        let reports = remap_probe(
            "consistent-hash",
            DispatcherConfig::ConsistentHash { vnodes: 128, k: 1 },
        );
        for report in &reports {
            assert_eq!(
                report.collateral, 0,
                "consistent hashing moves only the flows it must ({})",
                report.op
            );
            assert!(report.moved > 0, "some flows must remap ({})", report.op);
            // Removing / adding 1 of 12-13 servers should move roughly
            // 1/12th of the flows.
            assert!(report.moved_fraction < 0.25, "{}", report.moved_fraction);
        }
    }

    #[test]
    fn maglev_remap_probe_is_bounded() {
        let reports = remap_probe(
            "maglev",
            DispatcherConfig::Maglev {
                table_size: 2039,
                k: 1,
            },
        );
        for report in &reports {
            assert!(report.moved > 0);
            assert!(
                report.moved_fraction < 0.30,
                "maglev disruption should stay near-minimal, got {}",
                report.moved_fraction
            );
        }
    }

    /// Correlated failures: removing *two* servers at once must keep the
    /// dispatchers' remapping bounds — consistent hashing moves exactly the
    /// flows the dead pair owned (zero collateral), Maglev stays near
    /// minimal (moved ≈ 2/12 plus a small table-reshuffle term).
    #[test]
    fn correlated_two_server_removal_keeps_remap_bounds() {
        let plan = AddressPlan::default();
        let flows = probe_flows(8_192);
        let base: Vec<Ipv6Addr> = plan.server_addrs(12).collect();
        let dead = [plan.server_addr(ServerId(2)), plan.server_addr(ServerId(5))];
        let shrunk: Vec<Ipv6Addr> = base.iter().copied().filter(|a| !dead.contains(a)).collect();

        for (label, config, max_moved, max_collateral) in [
            (
                "consistent-hash",
                DispatcherConfig::ConsistentHash { vnodes: 128, k: 1 },
                0.40,
                0.0,
            ),
            (
                "maglev",
                DispatcherConfig::Maglev {
                    table_size: 2039,
                    k: 1,
                },
                0.40,
                0.05,
            ),
        ] {
            let before = owners(config, base.clone(), &flows);
            let after = owners(config, shrunk.clone(), &flows);
            let moved = before
                .iter()
                .zip(&after)
                .filter(|(old, new)| old != new)
                .count() as f64
                / flows.len() as f64;
            let collateral = before
                .iter()
                .zip(&after)
                .filter(|(old, new)| old != new && !dead.contains(old))
                .count() as f64
                / flows.len() as f64;
            assert!(moved > 0.0, "{label}: some flows must remap");
            assert!(
                moved <= max_moved,
                "{label}: moved fraction {moved} above bound {max_moved}"
            );
            assert!(
                collateral <= max_collateral,
                "{label}: collateral fraction {collateral} above bound {max_collateral}"
            );
        }
    }

    #[test]
    fn tiny_sweep_is_deterministic_across_jobs() {
        let serial = run_scenarios(Scale::Tiny, 42, 1);
        let parallel = run_scenarios(Scale::Tiny, 42, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.scenarios.len(), 9);
        // The acceptance property: deterministic dispatchers lose zero
        // established connections on LB failover.
        for report in &serial.scenarios {
            if report.name == "lb_failover" && !report.dispatcher.starts_with("random") {
                assert_eq!(
                    report.broken_established, 0,
                    "{} must not lose established connections",
                    report.dispatcher
                );
            }
        }
        // The ECMP-reshuffle acceptance property: consistent-hash and
        // Maglev candidates survive re-steering onto LB instances that
        // never saw the flows; random candidates orphan them.
        assert_eq!(serial.ecmp_reshuffle.len(), 9);
        for cell in &serial.ecmp_reshuffle {
            assert_eq!(cell.report.name, "ecmp_reshuffle");
            if cell.lb_count > 1 {
                assert!(
                    cell.report.rehunts > 0,
                    "{} x{} must re-hunt re-steered flows",
                    cell.dispatcher,
                    cell.lb_count
                );
                assert_eq!(cell.report.per_lb.len(), cell.lb_count);
            }
            if cell.dispatcher == "random" {
                if cell.lb_count > 1 {
                    assert!(
                        cell.report.broken_established > 0,
                        "random x{} should orphan re-steered flows",
                        cell.lb_count
                    );
                }
            } else {
                assert_eq!(
                    cell.report.broken_established, 0,
                    "{} x{} must not lose established connections",
                    cell.dispatcher, cell.lb_count
                );
            }
        }
        // The fault-injection acceptance property: under ≥1% injected loss
        // the deterministic dispatchers complete every request through
        // retransmission with zero established-connection remaps, and the
        // per-cause counters actually fire.
        assert_eq!(serial.faults.len(), 9);
        for report in &serial.faults {
            assert!(report.retransmits > 0, "{}: no retransmits", report.name);
            match report.name.as_str() {
                "lossy_lb_failover" => {
                    assert!(report.dropped_injected > 0);
                    assert_eq!(report.dropped_queue, 0);
                    if !report.dispatcher.starts_with("random") {
                        // The tentpole acceptance property: with
                        // deterministic dispatch, retransmission (with
                        // server-side duplicate suppression and response
                        // replay from lingering connection state) recovers
                        // every injected drop — all requests complete, no
                        // aborts, no hangs, no established connection is
                        // broken even by a retransmit crossing the
                        // failover.
                        assert_eq!(report.aborted, 0);
                        assert_eq!(report.unfinished, 0, "nothing may hang");
                        assert_eq!(
                            report.completed, report.sent,
                            "{} must complete every request under loss",
                            report.dispatcher
                        );
                        assert_eq!(
                            report.broken_established, 0,
                            "{} must not break established connections",
                            report.dispatcher
                        );
                    }
                }
                "incast" | "saturated_uplink" => {
                    assert!(report.dropped_queue > 0, "{}: no tail drops", report.name);
                    assert_eq!(report.dropped_injected, 0);
                }
                other => panic!("unexpected fault preset {other}"),
            }
        }
    }
}
