//! Deterministic parallel sweep driver.
//!
//! Every `(policy, ρ)` point of the paper's evaluation is an independent
//! seeded simulation, so the sweep parallelises trivially: a pool of
//! `std::thread::scope` workers claims input indices from an atomic counter
//! and writes each result into its input's slot.  Results are returned in
//! input order regardless of worker scheduling, so figure output is
//! byte-identical to a serial run — `parallel_map` with `jobs = 1` *is* the
//! serial run (no threads are spawned).
//!
//! The worker count comes from the `--jobs` CLI flag or the `SRLB_JOBS`
//! environment variable (see [`default_jobs`]), falling back to the
//! machine's available parallelism; CI runners with few cores can pin
//! `SRLB_JOBS=1` for a fully deterministic single-threaded schedule.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count used when the caller does not specify one: the
/// `SRLB_JOBS` environment variable if set (minimum 1), otherwise the
/// machine's available parallelism, otherwise 1.
pub fn default_jobs() -> usize {
    if let Ok(value) = std::env::var("SRLB_JOBS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every input across `jobs` scoped worker threads,
/// returning the outputs **in input order**.
///
/// With `jobs <= 1` (or fewer than two inputs) the map runs inline on the
/// calling thread — the deterministic single-thread fallback.  Work is
/// distributed dynamically (an atomic next-index counter), so long-running
/// points do not serialise behind short ones.
///
/// # Panics
///
/// Propagates a panic from `f` once all workers have finished.
pub fn parallel_map<I, O, F>(inputs: &[I], jobs: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let jobs = jobs.max(1).min(inputs.len());
    if jobs <= 1 {
        return inputs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(input) = inputs.get(i) else {
                    break;
                };
                let output = f(input);
                *slots[i].lock().expect("result slot poisoned") = Some(output);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed slot is filled before workers exit")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<usize> = (0..100).collect();
        let out = parallel_map(&inputs, 8, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_matches_parallel() {
        let inputs: Vec<u64> = (0..37).collect();
        let serial = parallel_map(&inputs, 1, |&i| i * i + 1);
        let parallel = parallel_map(&inputs, 4, |&i| i * i + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert!(parallel_map(&[] as &[u8], 4, |_| 0u8).is_empty());
        assert_eq!(parallel_map(&[7u8], 4, |&x| x + 1), vec![8]);
        assert_eq!(parallel_map(&[1u8, 2], 0, |&x| x), vec![1, 2]);
    }

    #[test]
    fn more_jobs_than_inputs_is_fine() {
        let out = parallel_map(&[1u32, 2, 3], 64, |&x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
