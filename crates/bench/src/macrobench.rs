//! The million-flow macro-benchmark (`figures -- bench-macro`).
//!
//! Two sections, written together as `BENCH_macro.json` at the workspace
//! root (the [`crate::micro`] precedent — commit the baseline, diff the
//! trajectory):
//!
//! * **flow scale** — drives ≥ 1 M distinct flows through four bounded
//!   [`FlowState`] instances (flows split across instances by the cached
//!   stable hash, the same split an ECMP-steered LB tier induces), with
//!   total capacity half the flow count so the eviction path runs at full
//!   pressure.  Reports learn/lookup throughput, per-cause eviction
//!   counts, incremental-expiry volume, and the analytic resident-byte
//!   footprint.
//! * **ablation** — the load-aware candidate policy versus the paper's
//!   power-of-two-choices (`SR4`) and random assignment (`RR`) at
//!   ρ ∈ {0.7, 0.89, 0.95}, mean/p95/p99 response times from full
//!   [`Runner`] simulations.
//!
//! At `--tiny` scale the flow count shrinks to 4096, the ablation runs the
//! tiny query count, and the wall-clock throughput fields are zeroed — so
//! two tiny runs (e.g. serial vs `--sim-threads 2`) must produce
//! byte-identical JSON, which CI diffs as the subsystem's determinism
//! smoke test.

use std::io::Write;
use std::net::Ipv6Addr;
use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use srlb_core::spec::{ExperimentSpec, PolicyKind};
use srlb_core::{FlowState, FlowStateConfig, Runner};
use srlb_net::{AddressPlan, FlowKey, Protocol};
use srlb_sim::{SimDuration, SimTime};

use crate::figures::Scale;

/// Default output file name, written to the workspace root at full scale
/// (see [`crate::micro::workspace_root`]).
pub const BENCH_MACRO_FILE: &str = "BENCH_macro.json";

/// Number of bounded [`FlowState`] instances the flow-scale section
/// spreads flows across (a four-instance LB tier).
const INSTANCES: usize = 4;

/// The ρ values of the ablation grid.
const ABLATION_RHOS: [f64; 3] = [0.7, 0.89, 0.95];

/// Flow-scale section of the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowScaleReport {
    /// Distinct flows learned (primary pass + the two churn passes).
    pub distinct_flows: u64,
    /// Bounded table instances the flows were split across.
    pub instances: u64,
    /// Hard capacity bound per instance.
    pub capacity_per_instance: u64,
    /// Shards per instance.
    pub shards_per_instance: u64,
    /// Idle timeout used, in nanoseconds of simulated time.
    pub idle_timeout_ns: u64,
    /// Learns per wall-clock second over the primary pass (0 at tiny
    /// scale, where timing is suppressed for byte-stable output).
    pub learns_per_sec: f64,
    /// Lookups per wall-clock second over the lookup pass (0 at tiny
    /// scale).
    pub lookups_per_sec: f64,
    /// Lookup hits (entries that survived eviction and expiry).
    pub lookup_hits: u64,
    /// Lookup misses (evicted or expired on access).
    pub lookup_misses: u64,
    /// Capacity evictions of already-expired entries.
    pub evicted_expired: u64,
    /// Capacity evictions of long-idle entries.
    pub evicted_idle: u64,
    /// Capacity evictions of recently-active entries.
    pub evicted_active: u64,
    /// Entries expired (lazily on access plus the final incremental
    /// sweep).
    pub expired: u64,
    /// Live entries across instances after the churn passes, before the
    /// final sweep.
    pub occupancy_before_sweep: u64,
    /// Peak live entries across instances.
    pub peak_occupancy: u64,
    /// Analytic resident footprint of the tables at peak, in bytes.
    pub resident_bytes: u64,
}

/// One cell of the policy ablation grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationCell {
    /// Policy label (`RR`, `SR4`, `SRla-p4c4`).
    pub policy: String,
    /// Normalised load ρ.
    pub rho: f64,
    /// Requests sent.
    pub sent: u64,
    /// Requests completed.
    pub completed: u64,
    /// Mean completed response time in milliseconds.
    pub mean_response_ms: f64,
    /// 95th-percentile completed response time in milliseconds.
    pub p95_response_ms: f64,
    /// 99th-percentile completed response time in milliseconds.
    pub p99_response_ms: f64,
}

/// JSON document written to [`BENCH_MACRO_FILE`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacroBenchReport {
    /// Schema version of this report.
    pub schema: u32,
    /// The million-flow table-scale section.
    pub flow_scale: FlowScaleReport,
    /// The load-aware vs power-of-choices ablation grid.
    pub ablation: Vec<AblationCell>,
}

/// The `i`-th distinct synthetic flow: a unique `(source address, source
/// port)` pair towards the VIP.
fn flow_key(i: u64, vip: Ipv6Addr) -> FlowKey {
    let src = Ipv6Addr::from(0xfd00_0000_0000_0000_0000_0000_0000_0000u128 | u128::from(i >> 16));
    FlowKey::new(src, vip, (i & 0xffff) as u16, 80, Protocol::Tcp)
}

/// Runs the flow-scale section: `flows` distinct flows through
/// [`INSTANCES`] bounded tables with total capacity `flows / 2`, plus two
/// churn passes that exercise the active- and idle-eviction causes.
/// `timed` gates the wall-clock throughput fields.
pub fn flow_scale(flows: usize, timed: bool) -> FlowScaleReport {
    let plan = AddressPlan::default();
    let vip = plan.vip(0);
    let servers: Vec<Ipv6Addr> = plan.server_addrs(12).collect();
    let capacity = flows / (2 * INSTANCES);
    // Learns advance simulated time by 1 µs each; the timeout is a quarter
    // of the primary pass's span, so entries out-live their timeout well
    // before the table wraps and the learn pass evicts *expired* entries.
    let step = SimDuration::from_micros(1);
    let timeout = SimDuration::from_nanos(flows as u64 * 1_000 / 4);
    let config = || {
        FlowStateConfig::new()
            .with_idle_timeout(timeout)
            .with_capacity(capacity)
    };
    let mut tables: Vec<FlowState> = (0..INSTANCES)
        .map(|_| FlowState::with_config(config()))
        .collect();
    let instance_of = |key: &FlowKey| (key.stable_hash() % INSTANCES as u64) as usize;

    let keys: Vec<FlowKey> = (0..flows as u64).map(|i| flow_key(i, vip)).collect();

    // Primary pass: every key once, time advancing one step per learn.
    let start = Instant::now(); // srlb-lint: allow(ambient-time) -- wall-clock throughput is this bench's measurand, not simulation state
    for (i, key) in keys.iter().enumerate() {
        let now = SimTime::ZERO + step * i as u64;
        tables[instance_of(key)].learn(*key, servers[i % servers.len()], now);
    }
    let learn_elapsed = start.elapsed().as_secs_f64();

    // Lookup pass at the end of the primary pass: survivors hit (and are
    // touched), evicted or expired entries miss.
    let now = SimTime::ZERO + step * flows as u64;
    let mut hits = 0u64;
    let start = Instant::now(); // srlb-lint: allow(ambient-time) -- wall-clock throughput is this bench's measurand, not simulation state
    for key in &keys {
        if tables[instance_of(key)].lookup(key, now).is_some() {
            hits += 1;
        }
    }
    let lookup_elapsed = start.elapsed().as_secs_f64();
    let misses = flows as u64 - hits;

    // Churn passes: fresh keys against a full table whose survivors were
    // all touched at `now`, so victims are recently-active first
    // (idle ≈ 0), then long-idle once time jumps by 3/4 of the timeout.
    let churn = (flows / 16).max(1);
    for i in 0..churn as u64 {
        let key = flow_key(flows as u64 + i, vip);
        tables[instance_of(&key)].learn(key, servers[0], now);
    }
    let later = now + SimDuration::from_nanos(timeout.as_nanos() * 3 / 4);
    for i in 0..churn as u64 {
        let key = flow_key((flows + churn) as u64 + i, vip);
        tables[instance_of(&key)].learn(key, servers[0], later);
    }

    let occupancy_before_sweep: u64 = tables.iter().map(|t| t.len() as u64).sum();

    // Final incremental sweep: everything is idle past the timeout.
    let drained = later + timeout + step;
    for table in &mut tables {
        table.expire_idle(drained);
    }

    let mut report = FlowScaleReport {
        distinct_flows: (flows + 2 * churn) as u64,
        instances: INSTANCES as u64,
        capacity_per_instance: capacity as u64,
        shards_per_instance: tables[0].config().shards() as u64,
        idle_timeout_ns: timeout.as_nanos(),
        learns_per_sec: 0.0,
        lookups_per_sec: 0.0,
        lookup_hits: hits,
        lookup_misses: misses,
        evicted_expired: 0,
        evicted_idle: 0,
        evicted_active: 0,
        expired: 0,
        occupancy_before_sweep,
        peak_occupancy: 0,
        resident_bytes: 0,
    };
    for table in &tables {
        let stats = table.stats();
        report.evicted_expired += stats.evictions.expired;
        report.evicted_idle += stats.evictions.idle;
        report.evicted_active += stats.evictions.active;
        report.expired += stats.expired;
        report.peak_occupancy += stats.peak_occupancy;
        report.resident_bytes += table.resident_bytes();
    }
    if timed {
        report.learns_per_sec = flows as f64 / learn_elapsed;
        report.lookups_per_sec = flows as f64 / lookup_elapsed;
    }
    report
}

/// The ablation policies, in report order.
fn ablation_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::RoundRobin,
        PolicyKind::Static { threshold: 4 },
        PolicyKind::LoadAware {
            pool: 4,
            threshold: 4,
        },
    ]
}

/// Runs the policy ablation grid at the given scale's query count.
pub fn ablation(scale: Scale, seed: u64) -> Vec<AblationCell> {
    let mut cells = Vec::new();
    for &rho in &ABLATION_RHOS {
        for policy in ablation_policies() {
            let spec = ExperimentSpec::poisson_paper(rho, policy)
                .with_queries(scale.poisson_queries())
                .with_seed(seed);
            let outcome = Runner::new(spec).expect("ablation spec is valid").run();
            let summary = outcome.collector.summary(None);
            cells.push(AblationCell {
                policy: outcome.label,
                rho,
                sent: outcome.collector.len() as u64,
                completed: outcome.collector.completed_count() as u64,
                mean_response_ms: if summary.is_empty() {
                    0.0
                } else {
                    summary.mean()
                },
                p95_response_ms: summary.percentile(95.0).unwrap_or(0.0),
                p99_response_ms: summary.percentile(99.0).unwrap_or(0.0),
            });
        }
    }
    cells
}

/// Number of distinct flows the flow-scale section drives at each scale.
pub fn macro_flows(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 1 << 20,
        Scale::Quick => 1 << 16,
        Scale::Tiny => 1 << 12,
    }
}

/// Runs both sections and assembles the report.  Timing fields are only
/// populated at paper scale, so reduced-scale reports are byte-stable
/// across runs and execution modes.
pub fn run_macro_bench(scale: Scale, seed: u64) -> MacroBenchReport {
    MacroBenchReport {
        schema: 1,
        flow_scale: flow_scale(macro_flows(scale), scale == Scale::Paper),
        ablation: ablation(scale, seed),
    }
}

/// Writes the macro-bench report as canonical JSON (one line plus a
/// trailing newline) to `dir`, returning the path written.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_bench_macro(dir: &Path, report: &MacroBenchReport) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let json = serde_json::to_string(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let path = dir.join(BENCH_MACRO_FILE);
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{json}")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_flow_scale_saturates_and_counts_every_cause() {
        let report = flow_scale(macro_flows(Scale::Tiny), false);
        assert_eq!(report.distinct_flows, 4096 + 2 * 256);
        assert_eq!(report.capacity_per_instance, 512);
        assert_eq!(report.peak_occupancy, 2048, "every instance saturates");
        // Every learned flow either survives, was evicted, or expired.
        assert_eq!(report.lookup_hits + report.lookup_misses, 4096);
        assert!(report.evicted_expired > 0, "learn pass evicts expired LRUs");
        assert!(report.evicted_active > 0, "first churn evicts active LRUs");
        assert!(report.evicted_idle > 0, "second churn evicts idle LRUs");
        assert!(report.expired > 0, "the final sweep expires the rest");
        assert!(report.resident_bytes > 0);
        // Timing suppressed at tiny scale.
        assert_eq!(report.learns_per_sec, 0.0);
        assert_eq!(report.lookups_per_sec, 0.0);
    }

    #[test]
    fn tiny_flow_scale_is_deterministic() {
        let a = flow_scale(macro_flows(Scale::Tiny), false);
        let b = flow_scale(macro_flows(Scale::Tiny), false);
        assert_eq!(a, b);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = run_macro_bench(Scale::Tiny, 42);
        assert_eq!(report.ablation.len(), 9, "3 policies x 3 rho values");
        let json = serde_json::to_string(&report).unwrap();
        let back: MacroBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        for cell in &report.ablation {
            assert!(cell.completed > 0, "{} completed nothing", cell.policy);
        }
    }
}
