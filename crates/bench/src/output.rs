//! CSV output for regenerated figure data.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Directory (relative to the workspace root / current directory) where the
/// `figures` binary writes its CSV series.
pub const FIGURES_DIR: &str = "target/figures";

/// Writes rows of `f64`/string columns as a CSV file under
/// [`FIGURES_DIR`], creating the directory if needed.  Returns the path
/// written.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = Path::new(FIGURES_DIR);
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut file = fs::File::create(&path)?;
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Formats a float with enough precision for plotting.
pub fn fmt(value: f64) -> String {
    format!("{value:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_csv_with_header_and_rows() {
        let rows = vec![vec![fmt(1.0), fmt(2.5)], vec![fmt(3.0), fmt(4.25)]];
        let path = write_csv("test_output_unit", &["a", "b"], &rows).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("1.000000,2.500000"));
        assert_eq!(content.lines().count(), 3);
        std::fs::remove_file(path).ok();
    }
}
