//! `figures -- run <spec.json>`: execute any committed [`ExperimentSpec`].
//!
//! This is the reproducibility entry point of the unified experiment API:
//! *any* experiment — a paper figure point, a dynamic-cluster scenario, or
//! a cross product such as an LB failover during a Wikipedia replay — is a
//! spec file that can be committed, reviewed, and replayed bit-for-bit.
//! Eight canonical specs live in `examples/specs/` at the workspace root
//! (regenerate them with `figures -- write-specs`, round-trip-checked by
//! `crates/bench/tests/spec_roundtrip.rs`).

use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use srlb_core::dispatch::DispatcherConfig;
use srlb_core::runner::{RunOutcome, Runner};
use srlb_core::spec::{ExperimentSpec, PolicyKind, ScenarioEvent, WorkloadSpec};
use srlb_metrics::PhaseStats;
use srlb_server::PolicyConfig;

use crate::figures::Scale;

/// The canonical example specs committed under `examples/specs/`, as
/// `(file_stem, spec)` pairs.
///
/// * `poisson_rho089` — the paper's Poisson testbed at ρ = 0.89 under
///   `SRdyn` (Section V's high-load regime),
/// * `poisson_rho089_48s` — the same experiment on a 48-server cluster
///   (4× the paper's testbed; the cluster axis makes growth a one-line
///   change, with λ₀ re-derived analytically from the larger capacity),
/// * `wikipedia_replay` — the 24-hour Wikipedia replay under `SR4`
///   (Section VI),
/// * `lb_failover_wikipedia` — the scenario × workload cross product the
///   two old orchestration stacks could not express: a load-balancer
///   failover (with in-band flow-table reconstruction over
///   consistent-hash candidates) in the middle of a Wikipedia replay
///   slice,
/// * `multi_lb_ecmp` — a four-instance LB tier behind deterministic
///   resilient ECMP steering, with one instance withdrawn mid-run: live
///   flows re-steer onto peers that have never seen them and survive via
///   re-hunt over consistent-hash candidates,
/// * `lossy_poisson` — the Poisson testbed at ρ = 0.89 over a fabric that
///   loses 1% of every link's packets, recovered end to end by the
///   client's retransmission policy (explicit in the spec),
/// * `incast` — incast into one hot server: a 4× slow server 0 behind a
///   shallow bounded LB → server queue, tail drops absorbed by
///   retransmission,
/// * `bounded_flow_table` — the Poisson testbed at ρ = 0.89 through a
///   memory-bounded flow table (256 entries over 8 shards, 30 s idle
///   timeout, 5 s incremental sweep) under the load-aware policy: flows
///   out-living their table entry are evicted under pressure, counted by
///   cause, and candidates are ranked by the load hints servers piggyback
///   on acceptance SYN-ACKs.
pub fn example_specs() -> Vec<(&'static str, ExperimentSpec)> {
    let poisson = ExperimentSpec::poisson_paper(0.89, PolicyKind::Dynamic).with_seed(42);
    let poisson_48 = ExperimentSpec::poisson_paper(0.89, PolicyKind::Dynamic)
        .with_servers(48)
        .with_seed(42)
        .with_name("poisson-rho0.89-SRdyn-48s");
    let wikipedia =
        ExperimentSpec::wikipedia_paper(PolicyKind::Static { threshold: 4 }).with_seed(42);
    let mut failover_wiki = ExperimentSpec::wikipedia_paper(PolicyKind::Explicit {
        dispatcher: DispatcherConfig::ConsistentHash { vnodes: 128, k: 2 },
        acceptance: PolicyConfig::Static { threshold: 4 },
    })
    .with_seed(42)
    .with_hours(0.25)
    .with_name("lb_failover_wikipedia")
    .with_request_delay_ms(200.0)
    // One minute in, the LB fails over to a cold standby: early enough to
    // stay inside even the `--tiny` scaled-down slice.
    .at(60.0, ScenarioEvent::LbFailover);
    failover_wiki.cluster.recover_flows = true;
    let multi_lb = srlb_scenario::Scenario::ecmp_reshuffle(
        DispatcherConfig::ConsistentHash { vnodes: 128, k: 2 },
        4,
        800,
    )
    .to_spec()
    .with_seed(42)
    .with_name("multi_lb_ecmp");
    let lossy_poisson = ExperimentSpec::poisson_paper(0.89, PolicyKind::Dynamic)
        .with_seed(42)
        .with_name("lossy_poisson")
        .with_faults(srlb_core::spec::FaultPlan {
            loss: vec![srlb_core::spec::LossSpec {
                link: srlb_core::spec::FaultLink::default(),
                probability: 0.01,
            }],
            recovery: Some(srlb_net::RetransmitPolicy::default()),
            ..srlb_core::spec::FaultPlan::default()
        });
    let incast = srlb_scenario::Scenario::incast(
        DispatcherConfig::ConsistentHash { vnodes: 128, k: 2 },
        800,
    )
    .to_spec()
    .with_seed(42);
    let bounded_flow_table = ExperimentSpec::poisson_paper(
        0.89,
        PolicyKind::LoadAware {
            pool: 4,
            threshold: 4,
        },
    )
    .with_seed(42)
    .with_name("bounded_flow_table")
    .with_flow_table(srlb_core::spec::FlowTableSpec {
        idle_timeout_s: 30.0,
        capacity: Some(256),
        shards: 8,
        sweep_interval_s: Some(5.0),
    });
    vec![
        ("poisson_rho089", poisson),
        ("poisson_rho089_48s", poisson_48),
        ("wikipedia_replay", wikipedia),
        ("lb_failover_wikipedia", failover_wiki),
        ("multi_lb_ecmp", multi_lb),
        ("lossy_poisson", lossy_poisson),
        ("incast", incast),
        ("bounded_flow_table", bounded_flow_table),
    ]
}

/// Writes the canonical example specs as JSON files under `dir`, returning
/// the paths written.  The bytes are exactly what
/// `serde_json::to_string(&spec)` produces plus a trailing newline, so
/// `parse → serialize → byte-compare` round-trips.
///
/// # Errors
///
/// Returns any I/O or serialisation error.
pub fn write_example_specs(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for (stem, spec) in example_specs() {
        let path = dir.join(format!("{stem}.json"));
        let json = serde_json::to_string(&spec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut file = std::fs::File::create(&path)?;
        writeln!(file, "{json}")?;
        paths.push(path);
    }
    Ok(paths)
}

/// Loads an [`ExperimentSpec`] from a JSON file.
///
/// # Errors
///
/// Returns an I/O error for unreadable files or a decoding error (mapped to
/// [`std::io::ErrorKind::InvalidData`]) for malformed specs.
pub fn load_spec(path: &Path) -> std::io::Result<ExperimentSpec> {
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Scales a spec's workload down for smoke runs: `--quick` / `--tiny`
/// shrink Poisson query counts and the Wikipedia slice the same way the
/// figure harness does, leaving every other axis (cluster, topology,
/// scenario, policy, seed) untouched.  [`Scale::Paper`] is the identity.
pub fn scale_spec(mut spec: ExperimentSpec, scale: Scale) -> ExperimentSpec {
    if scale == Scale::Paper {
        return spec;
    }
    match &mut spec.workload {
        WorkloadSpec::Poisson { queries, .. } | WorkloadSpec::PoissonRate { queries, .. } => {
            *queries = (*queries).min(scale.poisson_queries());
        }
        WorkloadSpec::Wikipedia { hours, .. } => {
            *hours = hours.min(scale.wiki_hours());
        }
        WorkloadSpec::Trace { .. } => {}
    }
    spec
}

/// Machine-readable summary of one `figures -- run` execution (written
/// next to the figure CSVs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecRunReport {
    /// Schema version of this report.
    pub schema: u32,
    /// The spec's name.
    pub name: String,
    /// Policy label.
    pub label: String,
    /// Dispatcher report name.
    pub dispatcher: String,
    /// Seed the run used.
    pub seed: u64,
    /// Requests sent.
    pub sent: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests whose connection was reset.
    pub resets: u64,
    /// Mean completed response time in milliseconds (`None` when nothing
    /// completed).
    pub mean_response_ms: Option<f64>,
    /// Median completed response time in milliseconds.
    pub median_response_ms: Option<f64>,
    /// 99th-percentile completed response time in milliseconds.
    pub p99_response_ms: Option<f64>,
    /// Load-balancer fail-overs applied.
    pub failovers: u64,
    /// Flow-table misses recovered by re-hunting.
    pub rehunts: u64,
    /// Flow-table entries learned in-band.
    pub flows_learned: u64,
    /// Flow-table entries expired by the incremental idle sweep (omitted
    /// when zero, so reports from unbounded default-table runs keep their
    /// pre-flow-state bytes).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub flow_expired: u64,
    /// Capacity evictions of already-expired entries (omitted when zero).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub flow_evicted_expired: u64,
    /// Capacity evictions of long-idle entries (omitted when zero).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub flow_evicted_idle: u64,
    /// Capacity evictions of recently-active entries (omitted when zero).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub flow_evicted_active: u64,
    /// Peak flow-table occupancy across LB instances (omitted when zero;
    /// only bounded tables report it).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub flow_peak_occupancy: u64,
    /// Milliseconds from fail-over to the last re-hunt, if any.
    pub reconstruction_ms: Option<f64>,
    /// Simulated duration in seconds.
    pub duration_seconds: f64,
    /// Total simulation events processed.
    pub events_processed: u64,
    /// Requests aborted after exhausting the retransmission budget
    /// (fault-injection runs only; omitted when zero so fault-free report
    /// bytes stay stable).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub aborted: u64,
    /// Total client retransmissions (omitted when zero).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub retransmits: u64,
    /// Messages dropped by injected faults (omitted when zero).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub dropped_injected: u64,
    /// Messages tail-dropped by bounded queues (omitted when zero).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub dropped_queue: u64,
    /// Messages dropped inside link down windows (omitted when zero).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub dropped_link_down: u64,
    /// Per-phase disruption statistics (one phase for static runs).
    pub phases: Vec<PhaseStats>,
    /// Shard plan the run executed on, for stdout diagnostics only.
    /// Never serialized: the report JSON is byte-diffed across execution
    /// modes in CI, and the plan legitimately differs between them.
    #[serde(default, skip_serializing_if = "always")]
    pub shard_plan: Option<String>,
}

/// Serde skip predicate for the fault counters.
fn is_zero_u64(n: &u64) -> bool {
    *n == 0
}

/// Serde skip predicate for stdout-only fields that must never reach the
/// byte-diffed report JSON.
fn always<T>(_: &T) -> bool {
    true
}

impl SpecRunReport {
    /// Condenses a [`RunOutcome`] into the report, stamping the seed it ran
    /// with.
    pub fn from_outcome(outcome: &RunOutcome, seed: u64) -> Self {
        let summary = outcome.collector.summary(None);
        SpecRunReport {
            schema: 1,
            name: outcome.name.clone(),
            label: outcome.label.clone(),
            dispatcher: outcome.dispatcher_name.clone(),
            seed,
            sent: outcome.collector.len() as u64,
            completed: outcome.collector.completed_count() as u64,
            resets: outcome.collector.reset_count() as u64,
            mean_response_ms: (!summary.is_empty()).then(|| summary.mean()),
            median_response_ms: summary.median(),
            p99_response_ms: summary.percentile(99.0),
            failovers: outcome.lb_stats.failovers,
            rehunts: outcome.lb_stats.rehunts,
            flows_learned: outcome.lb_stats.flows_learned,
            flow_expired: outcome.lb_stats.flow_expired,
            flow_evicted_expired: outcome.lb_stats.flow_evicted_expired,
            flow_evicted_idle: outcome.lb_stats.flow_evicted_idle,
            flow_evicted_active: outcome.lb_stats.flow_evicted_active,
            flow_peak_occupancy: outcome.lb_stats.flow_peak_occupancy,
            reconstruction_ms: outcome.reconstruction_latency_s.map(|s| s * 1e3),
            duration_seconds: outcome.duration_seconds,
            events_processed: outcome.events_processed,
            aborted: outcome.aborted,
            retransmits: outcome.retransmits,
            dropped_injected: outcome.dropped_injected,
            dropped_queue: outcome.dropped_queue,
            dropped_link_down: outcome.dropped_link_down,
            phases: outcome.phases.clone(),
            shard_plan: outcome.shard_plan.clone(),
        }
    }
}

/// Runs a spec file at the given scale and returns the report.
///
/// # Errors
///
/// Returns an I/O-flavoured error for unreadable/malformed files and an
/// [`std::io::ErrorKind::InvalidInput`] error for specs that fail
/// validation.
pub fn run_spec_file(path: &Path, scale: Scale) -> std::io::Result<SpecRunReport> {
    let spec = scale_spec(load_spec(path)?, scale);
    let seed = spec.seed;
    let runner = Runner::new(spec)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
    let outcome = runner.run();
    Ok(SpecRunReport::from_outcome(&outcome, seed))
}

/// Writes a spec-run report as JSON under `dir` (as
/// `run_<spec name>.json`), returning the path written.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_spec_report(dir: &Path, report: &SpecRunReport) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let json = serde_json::to_string(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let path = dir.join(format!("run_{}.json", report.name.replace(['/', ' '], "_")));
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{json}")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_specs_validate() {
        for (stem, spec) in example_specs() {
            spec.validate()
                .unwrap_or_else(|e| panic!("spec {stem} invalid: {e}"));
            assert!(!stem.is_empty());
        }
    }

    #[test]
    fn example_specs_serde_roundtrip() {
        for (_, spec) in example_specs() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
            // Canonical form: serialising the parse reproduces the bytes.
            assert_eq!(serde_json::to_string(&back).unwrap(), json);
        }
    }

    #[test]
    fn scale_spec_shrinks_only_the_workload() {
        let (_, wiki) = example_specs()
            .into_iter()
            .find(|(stem, _)| *stem == "lb_failover_wikipedia")
            .unwrap();
        let tiny = scale_spec(wiki.clone(), Scale::Tiny);
        assert_eq!(tiny.scenario, wiki.scenario);
        assert_eq!(tiny.cluster, wiki.cluster);
        assert_eq!(tiny.policy, wiki.policy);
        match tiny.workload {
            WorkloadSpec::Wikipedia { hours, .. } => assert_eq!(hours, Scale::Tiny.wiki_hours()),
            _ => panic!("expected wikipedia workload"),
        }
        assert_eq!(scale_spec(wiki.clone(), Scale::Paper), wiki);
    }

    #[test]
    fn write_load_run_roundtrip() {
        let dir = std::env::temp_dir().join("srlb-spec-run-test");
        let paths = write_example_specs(&dir).unwrap();
        assert_eq!(paths.len(), 8);
        // Byte-level round trip of every written file.
        for path in &paths {
            let text = std::fs::read_to_string(path).unwrap();
            let spec = load_spec(path).unwrap();
            let reserialized = format!("{}\n", serde_json::to_string(&spec).unwrap());
            assert_eq!(reserialized, text, "{} drifted", path.display());
        }
        // The scenario-driven Wikipedia replay runs end to end at tiny
        // scale, failover included.
        let report = run_spec_file(&dir.join("lb_failover_wikipedia.json"), Scale::Tiny).unwrap();
        assert_eq!(report.name, "lb_failover_wikipedia");
        assert_eq!(report.failovers, 1);
        assert!(report.completed > 0);
        assert_eq!(report.phases.len(), 2);
        // The multi-LB ECMP reshuffle spec runs end to end at tiny scale:
        // the withdrawal lands inside the scaled-down send window, so the
        // re-hunt path across instances is exercised even in CI smoke.
        let report = run_spec_file(&dir.join("multi_lb_ecmp.json"), Scale::Tiny).unwrap();
        assert_eq!(report.name, "multi_lb_ecmp");
        assert_eq!(report.sent, Scale::Tiny.poisson_queries() as u64);
        assert_eq!(report.completed, report.sent, "zero connections lost");
        assert!(report.rehunts > 0, "re-steered flows were re-hunted");
        assert_eq!(report.phases.len(), 2);
        // The lossy Poisson spec runs end to end at tiny scale: losses
        // occur, retransmission recovers them, the per-cause counters
        // surface in the report.
        let report = run_spec_file(&dir.join("lossy_poisson.json"), Scale::Tiny).unwrap();
        assert_eq!(report.name, "lossy_poisson");
        assert!(report.dropped_injected > 0, "1% loss must fire at tiny");
        assert!(report.retransmits > 0);
        assert_eq!(report.completed + report.resets, report.sent);
        // And the incast spec tail-drops at its bounded queue.
        let report = run_spec_file(&dir.join("incast.json"), Scale::Tiny).unwrap();
        assert_eq!(report.name, "incast");
        assert!(report.dropped_queue > 0, "incast queue must overflow");
        assert!(report.retransmits > 0);
        // The bounded flow table evicts under pressure at tiny scale and
        // surfaces the per-cause counters in the report.
        let report = run_spec_file(&dir.join("bounded_flow_table.json"), Scale::Tiny).unwrap();
        assert_eq!(report.name, "bounded_flow_table");
        assert_eq!(report.completed, report.sent);
        assert!(report.flow_peak_occupancy > 0);
        assert!(report.flow_peak_occupancy <= 256);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("flow_peak_occupancy"), "{json}");
        // Default-table runs keep their pre-flow-state report bytes.
        let report = run_spec_file(&dir.join("poisson_rho089.json"), Scale::Tiny).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("flow_"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_spec_files_are_rejected() {
        let dir = std::env::temp_dir().join("srlb-spec-run-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(load_spec(&path).is_err());
        assert!(load_spec(&dir.join("missing.json")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
