//! Machine-readable micro-benchmarks of the per-flow hot path.
//!
//! This module runs the same operations as the `micro_lb` / `micro_net`
//! Criterion benches but reports the medians as JSON (`BENCH_micro.json` at
//! the repository root), so successive PRs can diff the perf trajectory
//! mechanically instead of eyeballing bench logs.  Invoke with:
//!
//! ```text
//! cargo run -p srlb-bench --release --bin figures -- bench-micro
//! ```
//!
//! The committed `BENCH_micro.json` is the baseline recorded on the machine
//! that produced it; regenerate alongside perf-sensitive changes and compare
//! the relative movement, not absolute nanoseconds across machines.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use srlb_core::dispatch::{
    CandidateList, ConsistentHashDispatcher, Dispatcher, MaglevDispatcher, RandomDispatcher,
};
use srlb_core::flow_table::FlowTable;
use srlb_core::spec::{ExperimentSpec, PolicyKind};
use srlb_core::Runner;
use srlb_net::{
    AddressPlan, FlowKey, Packet, PacketBuilder, Protocol, SegmentRoutingHeader, ServerId, TcpFlags,
};
use srlb_sim::{
    Context, ExecMode, Network, Node, NodeId, RunUntil, SimDuration, SimRng, SimTime, TimerToken,
    Topology,
};

/// Default output file name, written to the workspace root (see
/// [`workspace_root`]).
pub const BENCH_MICRO_FILE: &str = "BENCH_micro.json";

/// The workspace root directory, resolved from this crate's manifest
/// location (`crates/bench` → two levels up) so the report lands next to
/// the committed baseline regardless of the invocation directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root")
        .to_path_buf()
}

/// Measures `routine`'s median per-iteration time in nanoseconds, using the
/// same batch-calibrated median-of-samples approach as the vendored
/// criterion stand-in (batches sized so one sample spans ≥ 50 µs, median of
/// 10 samples).
fn median_ns<O, R: FnMut() -> O>(mut routine: R) -> f64 {
    black_box(routine());
    let target = Duration::from_micros(50);
    let mut iters_per_sample: u64 = 1;
    loop {
        let start = Instant::now(); // srlb-lint: allow(ambient-time) -- wall-clock is the quantity being measured by this micro-bench harness
        for _ in 0..iters_per_sample {
            black_box(routine());
        }
        if start.elapsed() >= target || iters_per_sample >= 1 << 20 {
            break;
        }
        iters_per_sample = iters_per_sample.saturating_mul(4);
    }
    let samples = 10;
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now(); // srlb-lint: allow(ambient-time) -- wall-clock is the quantity being measured by this micro-bench harness
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            start.elapsed().as_nanos() as f64 / iters_per_sample as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    times[times.len() / 2]
}

fn flows(n: u16) -> Vec<FlowKey> {
    let plan = AddressPlan::default();
    (0..n)
        .map(|p| {
            FlowKey::new(
                plan.client_addr(0),
                plan.vip(0),
                1024 + p,
                80,
                Protocol::Tcp,
            )
        })
        .collect()
}

/// Runs every micro-bench and returns `name → median ns/iter` in a stable
/// (sorted) order.
pub fn run_all() -> BTreeMap<String, f64> {
    let plan = AddressPlan::default();
    let servers: Vec<_> = plan.server_addrs(12).collect();
    let keys = flows(1024);
    let mut rng = SimRng::new(1);
    let mut results = BTreeMap::new();
    let mut record = |name: &str, ns: f64| {
        results.insert(name.to_string(), ns);
    };

    // --- micro_lb: per-flow load-balancer operations -----------------------
    let mut out = CandidateList::new();

    let mut random = RandomDispatcher::power_of_two(servers.clone());
    let mut i = 0;
    record(
        "dispatch_random_two_choice",
        median_ns(|| {
            i = (i + 1) % keys.len();
            random.candidates_into(&keys[i], &mut rng, &mut out);
            out.as_slice().len()
        }),
    );

    let mut ring = ConsistentHashDispatcher::new(servers.clone(), 128, 2);
    let mut i = 0;
    record(
        "dispatch_consistent_hash",
        median_ns(|| {
            i = (i + 1) % keys.len();
            ring.candidates_into(&keys[i], &mut rng, &mut out);
            out.as_slice().len()
        }),
    );

    let mut maglev = MaglevDispatcher::new(servers.clone(), 65_537, 2);
    let mut i = 0;
    record(
        "dispatch_maglev",
        median_ns(|| {
            i = (i + 1) % keys.len();
            maglev.candidates_into(&keys[i], &mut rng, &mut out);
            out.as_slice().len()
        }),
    );

    // Resilient ECMP steering across a 4-instance LB tier: the per-packet
    // cost the multi-LB refactor adds to every VIP-bound send.  Target:
    // alloc-free and the same order as `dispatch_maglev`.
    let tier: Vec<srlb_sim::NodeId> = (1..=4).map(srlb_sim::NodeId).collect();
    let mut i = 0;
    record(
        "steer_ecmp_tier4",
        median_ns(|| {
            i = (i + 1) % keys.len();
            srlb_sim::ecmp_steer(keys[i].stable_hash(), &tier)
        }),
    );

    let mut table = FlowTable::with_default_timeout();
    let mut i = 0;
    record(
        "flow_table_learn_and_lookup",
        median_ns(|| {
            i = (i + 1) % keys.len();
            table.learn(keys[i], servers[i % servers.len()], SimTime::ZERO);
            table.lookup(&keys[i], SimTime::ZERO)
        }),
    );

    // The explicitly-sharded flow state over the full 1024-key working set:
    // the per-packet learn+lookup cost of the bounded-table subsystem in
    // its unbounded configuration.
    let mut sharded =
        srlb_core::FlowState::with_config(srlb_core::FlowStateConfig::new().with_shards(8));
    let mut i = 0;
    record(
        "flow_table_sharded_learn_and_lookup",
        median_ns(|| {
            i = (i + 1) % keys.len();
            sharded.learn(keys[i], servers[i % servers.len()], SimTime::ZERO);
            sharded.lookup(&keys[i], SimTime::ZERO)
        }),
    );

    // The eviction path: a table half the size of the cycling working set,
    // so (after warm-up) every learn is a miss that evicts the
    // least-recently-touched entry.
    let mut bounded = srlb_core::FlowState::with_config(
        srlb_core::FlowStateConfig::new()
            .with_shards(8)
            .with_capacity(512),
    );
    let mut i = 0;
    record(
        "flow_table_bounded_learn_evict",
        median_ns(|| {
            i = (i + 1) % keys.len();
            bounded.learn(keys[i], servers[i % servers.len()], SimTime::ZERO);
            bounded.len()
        }),
    );

    // --- micro_net: per-packet wire operations -----------------------------
    let route = vec![
        plan.server_addr(ServerId(3)),
        plan.server_addr(ServerId(7)),
        plan.vip(0),
    ];
    let srh = SegmentRoutingHeader::from_route(&route).expect("3-segment route is valid");
    let packet = PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
        .ports(49_152, 80)
        .flags(TcpFlags::SYN)
        .segment_routing(srh.clone())
        .build();
    let wire = packet.encode();
    let srh_bytes = srh.encode();

    record("srh_encode", median_ns(|| srh.encode()));
    record(
        "srh_decode",
        median_ns(|| SegmentRoutingHeader::decode(&srh_bytes).expect("bench SRH decodes")),
    );
    record("packet_encode", median_ns(|| packet.encode()));
    record(
        "packet_decode",
        median_ns(|| Packet::decode(&wire).expect("bench packet decodes")),
    );
    let key = packet.flow_key_forward();
    record("flow_key_stable_hash", median_ns(|| key.stable_hash()));

    // --- parallel engine: synchronisation primitive cost -------------------
    record("barrier_overhead_ns", barrier_overhead_ns());

    results
}

/// Per-round cost of the worker pool's sense-reversing barrier with two
/// parties, in nanoseconds — the synchronisation floor every conservative
/// window pays twice.  Thread spawn/join is amortised over the rounds; the
/// minimum across repeats is reported (interference only adds time).
fn barrier_overhead_ns() -> f64 {
    const ROUNDS: u64 = 4096;
    (0..5)
        .map(|_| {
            let start = Instant::now(); // srlb-lint: allow(ambient-time) -- wall-clock barrier cost is the quantity being measured
            srlb_sim::pool::barrier_rounds(2, ROUNDS);
            start.elapsed().as_nanos() as f64 / ROUNDS as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// The fixed end-to-end spec driven through every execution mode by
/// [`engine_events_per_sec`]: a paper-shaped cluster under a Poisson
/// workload, large enough that a run spans hundreds of thousands of
/// simulation events.
fn engine_spec() -> ExperimentSpec {
    ExperimentSpec::poisson_paper(0.7, PolicyKind::Static { threshold: 4 })
        .with_queries(10_000)
        .with_seed(7)
}

/// A trivial ping-pong node for the pure-engine-loop entries: callbacks do
/// nothing but bounce the message back, so the measured time is all engine
/// (queue, dispatch, loop structure).
struct Pinger {
    peer: Option<NodeId>,
    bounces: u64,
}

impl Node<u64> for Pinger {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        if let Some(peer) = self.peer {
            ctx.send(peer, 0);
        }
    }
    fn on_message(&mut self, msg: u64, from: NodeId, ctx: &mut Context<'_, u64>) {
        if msg < self.bounces {
            ctx.send(from, msg + 1);
        }
    }
    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut Context<'_, u64>) {}
}

/// Events per wall-clock second for four concurrent ping-pong pairs with
/// empty callbacks — the engine's loop overhead in isolation, without any
/// load-balancer or packet logic on top.
fn engine_loop_rate(batched: bool) -> f64 {
    let mut net: Network<u64> = Network::new(1, Topology::uniform(SimDuration::from_micros(5)));
    let ids: Vec<NodeId> = (0..8)
        .map(|_| {
            net.add_node(Pinger {
                peer: None,
                bounces: 1_000_000,
            })
        })
        .collect();
    for pair in ids.chunks(2) {
        let (a, b) = (pair[0], pair[1]);
        net.control::<Pinger, _>(a, move |p, ctx| {
            p.peer = Some(b);
            ctx.send(b, 0);
        })
        .expect("pinger present");
    }
    let start = Instant::now(); // srlb-lint: allow(ambient-time) -- wall-clock events/sec is the quantity this engine bench reports
    let stats = if batched {
        net.run_until(RunUntil::Drained)
    } else {
        net.run_until_stepwise(RunUntil::Drained)
    };
    stats.events_processed as f64 / start.elapsed().as_secs_f64()
}

/// Measures whole-engine throughput (simulation events per wall-clock
/// second), median of three runs per entry.
///
/// The `engine_loop_*` entries drive a trivial ping-pong workload where the
/// event loop is all that is measured; the `engine_*` entries drive the
/// full SRLB experiment runner under each execution mode of the sharded
/// event core.  All modes execute the identical event sequence — outcomes
/// are byte-identical by construction — so every pair compares nothing but
/// the engine loop: the reference one-event-at-a-time stepper, the batched
/// loop, and conservative-window sharding at 1, 2, 4 and 8 worker threads.
///
/// The stepwise loop intentionally trails the batched loop by a few percent:
/// its per-event time-bound check is already fused into the queue pop
/// (`SimCore::step_within`), but only the batched loop can amortise the
/// node-registry take/put across a same-timestamp burst and hoist the bound
/// check to once per time group.  Closing the rest would mean making the
/// reference stepper batch — at which point it no longer cross-checks
/// anything.
///
/// Sharded entries run under the default pool policy: on a host without at
/// least two available cores a multi-shard plan collapses to the single-core
/// batched engine (windows cannot beat serial without real parallelism), so
/// the recorded number reflects what that machine would actually get.
pub fn engine_events_per_sec() -> BTreeMap<String, f64> {
    let modes: [(&str, ExecMode); 6] = [
        ("engine_serial_step", ExecMode::SerialStep),
        ("engine_batched", ExecMode::Batched),
        ("engine_sharded_1", ExecMode::Sharded { threads: 1 }),
        ("engine_sharded_2", ExecMode::Sharded { threads: 2 }),
        ("engine_sharded_4", ExecMode::Sharded { threads: 4 }),
        ("engine_sharded_8", ExecMode::Sharded { threads: 8 }),
    ];
    let spec = engine_spec();
    // Rounds are interleaved (each round measures every entry once) so slow
    // drift in machine load hits all entries evenly instead of biasing
    // whichever mode happened to run last.  The *best* round is reported —
    // the max rate is the min-time statistic: external interference only
    // ever subtracts throughput, so the best observed rate is the least
    // contaminated estimate of each mode's capability.
    const ROUNDS: usize = 7;
    let mut samples: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for _ in 0..ROUNDS {
        for (name, batched) in [
            ("engine_loop_stepwise", false),
            ("engine_loop_batched", true),
        ] {
            samples
                .entry(name)
                .or_default()
                .push(black_box(engine_loop_rate(batched)));
        }
        for (name, exec) in modes {
            let runner = Runner::new(spec.clone())
                .expect("engine bench spec is valid")
                .with_exec(exec);
            let start = Instant::now(); // srlb-lint: allow(ambient-time) -- wall-clock events/sec is the quantity this engine bench reports
            let outcome = black_box(runner.run());
            samples
                .entry(name)
                .or_default()
                .push(outcome.events_processed as f64 / start.elapsed().as_secs_f64());
        }
    }
    samples
        .into_iter()
        .map(|(name, rates)| {
            let best = rates
                .into_iter()
                .max_by(|a, b| a.partial_cmp(b).expect("rates are finite"))
                .expect("at least one round ran");
            (name.to_string(), best)
        })
        .collect()
}

/// CI perf guard: drives a small fixed spec through the serial reference
/// loop and 2-way sharding (interleaved best-of rounds, like
/// [`engine_events_per_sec`]) and fails if sharding falls below
/// `tolerance × serial` throughput.  Under the default pool policy the
/// sharded run either uses real worker threads (multi-core hosts, e.g. CI
/// runners) or collapses to the batched single-core engine — in both cases
/// dropping well below serial indicates a regression in the window
/// protocol or the collapse heuristic, not machine noise, which the
/// tolerance absorbs.
///
/// # Errors
///
/// Returns a description of the failing comparison when the sharded rate is
/// below the tolerated fraction of the serial rate.
pub fn check_sharded_throughput() -> Result<String, String> {
    const TOLERANCE: f64 = 0.7;
    const ROUNDS: usize = 5;
    let spec = ExperimentSpec::poisson_paper(0.7, PolicyKind::Static { threshold: 4 })
        .with_queries(1_500)
        .with_seed(7);
    let mut best = [0f64; 2];
    for _ in 0..ROUNDS {
        for (slot, exec) in [
            (0, ExecMode::SerialStep),
            (1, ExecMode::Sharded { threads: 2 }),
        ] {
            let runner = Runner::new(spec.clone())
                .expect("guard spec is valid")
                .with_exec(exec);
            let start = Instant::now(); // srlb-lint: allow(ambient-time) -- wall-clock events/sec is the quantity this guard compares
            let outcome = black_box(runner.run());
            let rate = outcome.events_processed as f64 / start.elapsed().as_secs_f64();
            best[slot] = best[slot].max(rate);
        }
    }
    let [serial, sharded] = best;
    let summary = format!(
        "serial_step {serial:.0} ev/s vs sharded_2 {sharded:.0} ev/s \
         (ratio {:.2}, tolerance {TOLERANCE})",
        sharded / serial
    );
    if sharded >= TOLERANCE * serial {
        Ok(summary)
    } else {
        Err(format!("sharded throughput regressed: {summary}"))
    }
}

/// JSON document written to [`BENCH_MICRO_FILE`].
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct BenchReport {
    /// Schema version of this report.
    pub schema: u32,
    /// `bench name → median ns/iter`.
    pub median_ns: BTreeMap<String, f64>,
    /// `execution mode → simulation events per wall-clock second` for the
    /// fixed end-to-end engine spec (schema ≥ 2; see
    /// [`engine_events_per_sec`]).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub events_per_sec: BTreeMap<String, f64>,
}

/// Runs every micro-bench and writes the JSON report to `dir`, returning
/// the path written.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_bench_micro(dir: &Path) -> std::io::Result<PathBuf> {
    let report = BenchReport {
        schema: 2,
        median_ns: run_all(),
        events_per_sec: engine_events_per_sec(),
    };
    let json = serde_json::to_string(&report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let path = dir.join(BENCH_MICRO_FILE);
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{json}")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_ns_measures_something() {
        let mut x = 0u64;
        let ns = median_ns(|| {
            x = black_box(x.wrapping_add(1));
            x
        });
        assert!((0.0..1e6).contains(&ns), "implausible median: {ns}");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut median_ns = BTreeMap::new();
        median_ns.insert("op".to_string(), 42.5);
        let mut events_per_sec = BTreeMap::new();
        events_per_sec.insert("engine_batched".to_string(), 1.5e6);
        let report = BenchReport {
            schema: 2,
            median_ns,
            events_per_sec,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, 2);
        assert_eq!(back.median_ns.get("op"), Some(&42.5));
        assert_eq!(back.events_per_sec.get("engine_batched"), Some(&1.5e6));
    }

    #[test]
    fn schema_1_reports_without_throughput_still_parse() {
        let back: BenchReport =
            serde_json::from_str(r#"{"schema":1,"median_ns":{"op":1.0}}"#).unwrap();
        assert!(back.events_per_sec.is_empty());
    }
}
