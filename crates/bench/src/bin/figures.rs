//! Regenerates the paper's figures and runs committed experiment specs.
//!
//! ```text
//! cargo run -p srlb-bench --release --bin figures -- all             # every figure, paper scale
//! cargo run -p srlb-bench --release --bin figures -- fig2 --quick    # one figure, reduced scale
//! cargo run -p srlb-bench --release --bin figures -- all --jobs 4    # explicit worker count
//! cargo run -p srlb-bench --release --bin figures -- all --sim-threads 2  # shard each simulation
//! cargo run -p srlb-bench --release --bin figures -- bench-micro     # write BENCH_micro.json
//! cargo run -p srlb-bench --release --bin figures -- bench-macro     # write BENCH_macro.json
//! cargo run -p srlb-bench --release --bin figures -- bench-check     # sharded-vs-serial perf guard
//! cargo run -p srlb-bench --release --bin figures -- run examples/specs/poisson_rho089.json
//! cargo run -p srlb-bench --release --bin figures -- run <spec> --tiny  # scaled-down smoke run
//! cargo run -p srlb-bench --release --bin figures -- write-specs    # regenerate examples/specs/
//! ```
//!
//! Each figure's series is printed to stdout (policy labels, x/y columns)
//! and written as CSV under `target/figures/`, so the curves can be plotted
//! and compared against the paper's Figures 2–8 (plus fig9, a deferred
//! fault-injection figure with no paper counterpart).
//!
//! The `(policy, ρ)` sweep runs across `--jobs` worker threads (default:
//! the `SRLB_JOBS` environment variable, then the machine's available
//! parallelism).  Results are assembled in input order, so the output is
//! byte-identical whatever the worker count; `--jobs 1` forces the fully
//! serial, single-threaded schedule for constrained CI runners.
//!
//! Orthogonally, `--sim-threads N` shards every *individual* simulation
//! across `N` worker threads (the conservative-window parallel event core;
//! it sets the `SRLB_SIM_THREADS` environment variable picked up by the
//! runner).  Simulation outputs are byte-identical at every thread count,
//! so `--jobs` × `--sim-threads` is a pure throughput matrix.

use srlb_bench::output::fmt;
use srlb_bench::{
    default_jobs, fig2_mean_response, fig3_cdf_high_load, fig4_load_fairness, fig5_cdf_low_load,
    fig6_wiki_median, fig7_wiki_deciles, fig8_wiki_cdf, fig9_rackzone_hunting, write_bench_micro,
    write_csv, Scale,
};

const SEED: u64 = 42;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let tiny = args.iter().any(|a| a == "--tiny");
    let scale = if tiny {
        Scale::Tiny
    } else if quick {
        Scale::Quick
    } else {
        Scale::Paper
    };
    let (jobs, sim_threads, which) = parse_args(&args);
    let jobs = jobs.unwrap_or_else(default_jobs);
    if let Some(n) = sim_threads {
        // The runner reads the mode from the environment at construction,
        // so one early set covers every simulation this process runs.
        std::env::set_var(srlb_sim::ExecMode::ENV_VAR, n.to_string());
    }

    // `run <spec.json>` and `write-specs [dir]` take positional operands of
    // their own, so they are dispatched before figure-name validation.
    if which.first() == Some(&"run") {
        run_spec_command(&which[1..], scale);
        return;
    }
    if which.first() == Some(&"write-specs") {
        write_specs_command(&which[1..]);
        return;
    }

    const KNOWN: [&str; 13] = [
        "all",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "bench-micro",
        "bench-macro",
        "bench-check",
        "scenarios",
    ];
    if let Some(unknown) = which.iter().find(|name| !KNOWN.contains(name)) {
        eprintln!(
            "error: unknown command `{unknown}` (expected `run <spec.json>`, `write-specs` or \
             one of: {KNOWN:?})"
        );
        std::process::exit(2);
    }

    if which.contains(&"bench-micro") {
        run_bench_micro();
        return;
    }

    if which.contains(&"bench-check") {
        run_bench_check();
        return;
    }

    if which.contains(&"bench-macro") {
        run_bench_macro(scale);
        return;
    }

    if which.contains(&"scenarios") {
        run_scenarios_sweep(scale, jobs);
        return;
    }

    let all = which.is_empty() || which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    println!(
        "# SRLB figure harness (scale: {scale:?}, seed: {SEED}, jobs: {jobs}, sim: {:?})",
        srlb_sim::ExecMode::from_env()
    );

    if want("fig2") {
        run_fig2(scale, jobs);
    }
    if want("fig3") {
        run_poisson_cdf("fig3", 0.88, fig3_cdf_high_load(scale, SEED, jobs));
    }
    if want("fig4") {
        run_fig4(scale, jobs);
    }
    if want("fig5") {
        run_poisson_cdf("fig5", 0.61, fig5_cdf_low_load(scale, SEED, jobs));
    }
    if want("fig6") || want("fig7") {
        run_fig6_and_7(scale, jobs);
    }
    if want("fig8") {
        run_fig8(scale, jobs);
    }
    if want("fig9") {
        run_fig9(scale, jobs);
    }
}

/// Splits the command line into the optional `--jobs` worker count, the
/// optional `--sim-threads` per-simulation shard count (both accepting
/// `--flag 4` and `--flag=4`) and the positional figure names.  Only the
/// token actually consumed as a flag's value is removed from the
/// positionals; a malformed value aborts loudly instead of being silently
/// reinterpreted.
fn parse_args(args: &[String]) -> (Option<usize>, Option<usize>, Vec<&str>) {
    let mut jobs = None;
    let mut sim_threads = None;
    let mut which = Vec::new();
    let bad = |flag: &str, value: &str| -> ! {
        eprintln!("error: {flag} expects a positive integer, got `{value}`");
        std::process::exit(2);
    };
    let parse = |flag: &str, value: &str| -> usize {
        match value.parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => bad(flag, value),
        }
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if let Some(value) = arg.strip_prefix("--jobs=") {
            jobs = Some(parse("--jobs", value));
        } else if arg == "--jobs" {
            let Some(value) = args.get(i + 1) else {
                bad("--jobs", "<missing>");
            };
            jobs = Some(parse("--jobs", value));
            i += 1; // consume the value token
        } else if let Some(value) = arg.strip_prefix("--sim-threads=") {
            sim_threads = Some(parse("--sim-threads", value));
        } else if arg == "--sim-threads" {
            let Some(value) = args.get(i + 1) else {
                bad("--sim-threads", "<missing>");
            };
            sim_threads = Some(parse("--sim-threads", value));
            i += 1; // consume the value token
        } else if !arg.starts_with("--") {
            which.push(arg);
        }
        i += 1;
    }
    (jobs, sim_threads, which)
}

/// `figures -- run <spec.json> [--quick|--tiny]`: execute one committed
/// [`srlb_core::spec::ExperimentSpec`], print the summary and write a
/// machine-readable report next to the figure CSVs.
fn run_spec_command(operands: &[&str], scale: Scale) {
    let [path] = operands else {
        eprintln!("error: `run` expects exactly one spec file, got {operands:?}");
        std::process::exit(2);
    };
    let path = std::path::Path::new(path);
    println!(
        "# SRLB spec runner (spec: {}, scale: {scale:?})",
        path.display()
    );
    let report = match srlb_bench::run_spec_file(path, scale) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: could not run {}: {err}", path.display());
            std::process::exit(1);
        }
    };
    println!(
        "{:<22} {:<12} {:>7} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "spec", "policy", "sent", "done", "resets", "mean-ms", "p99-ms", "dur-s"
    );
    println!(
        "{:<22} {:<12} {:>7} {:>7} {:>7} {:>9} {:>9} {:>9.1}",
        report.name,
        report.label,
        report.sent,
        report.completed,
        report.resets,
        report
            .mean_response_ms
            .map_or("-".to_string(), |ms| format!("{ms:.1}")),
        report
            .p99_response_ms
            .map_or("-".to_string(), |ms| format!("{ms:.1}")),
        report.duration_seconds,
    );
    for phase in &report.phases {
        println!(
            "  phase {:<20} sent {:>6} done {:>6} resets {:>5} p99 {:>8.1} ms fairness {:>5.3}",
            phase.label,
            phase.sent,
            phase.completed,
            phase.resets,
            phase.p99_response_ms,
            phase.fairness,
        );
    }
    if let Some(plan) = &report.shard_plan {
        // Stdout only: the plan names the execution mode, which the
        // byte-diffed report JSON must stay blind to.
        println!("  shard plan: {plan}");
    }
    let dir = std::path::Path::new(srlb_bench::FIGURES_DIR);
    match srlb_bench::write_spec_report(dir, &report) {
        Ok(path) => println!("  -> wrote {}", path.display()),
        Err(err) => eprintln!("  !! could not write report: {err}"),
    }
}

/// `figures -- write-specs [dir]`: regenerate the canonical example specs
/// (default: `examples/specs/` at the workspace root).
fn write_specs_command(operands: &[&str]) {
    let dir = match operands {
        [] => srlb_bench::micro::workspace_root().join("examples/specs"),
        [dir] => std::path::PathBuf::from(dir),
        more => {
            eprintln!("error: `write-specs` expects at most one directory, got {more:?}");
            std::process::exit(2);
        }
    };
    match srlb_bench::write_example_specs(&dir) {
        Ok(paths) => {
            for path in paths {
                println!("  -> wrote {}", path.display());
            }
        }
        Err(err) => {
            eprintln!("error: could not write specs: {err}");
            std::process::exit(1);
        }
    }
}

/// `figures -- bench-macro [--quick|--tiny]`: the million-flow flow-state
/// macro-bench plus the load-aware policy ablation.  Full scale writes the
/// committed `BENCH_macro.json` at the workspace root; reduced scales
/// write under `target/figures/` with timing fields zeroed, so two runs
/// (any `--sim-threads`) are byte-identical — CI diffs them.
fn run_bench_macro(scale: Scale) {
    println!(
        "# SRLB macro-bench harness (scale: {scale:?}, seed: {SEED}, sim: {:?})",
        srlb_sim::ExecMode::from_env()
    );
    let report = srlb_bench::run_macro_bench(scale, SEED);
    let fs = &report.flow_scale;
    println!(
        "flow-scale: {} flows -> {} x {} slots ({} shards each), timeout {:.0} ms",
        fs.distinct_flows,
        fs.instances,
        fs.capacity_per_instance,
        fs.shards_per_instance,
        fs.idle_timeout_ns as f64 / 1e6,
    );
    println!(
        "  learns/s {:>12.0}   lookups/s {:>12.0}   resident {:>10} B",
        fs.learns_per_sec, fs.lookups_per_sec, fs.resident_bytes
    );
    println!(
        "  hits {:>8} misses {:>8} evicted(expired/idle/active) {}/{}/{} expired {:>8}",
        fs.lookup_hits,
        fs.lookup_misses,
        fs.evicted_expired,
        fs.evicted_idle,
        fs.evicted_active,
        fs.expired,
    );
    println!(
        "\n{:<12} {:>5} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "policy", "rho", "sent", "done", "mean-ms", "p95-ms", "p99-ms"
    );
    for cell in &report.ablation {
        println!(
            "{:<12} {:>5.2} {:>7} {:>7} {:>9.1} {:>9.1} {:>9.1}",
            cell.policy,
            cell.rho,
            cell.sent,
            cell.completed,
            cell.mean_response_ms,
            cell.p95_response_ms,
            cell.p99_response_ms,
        );
    }
    report_write(write_csv(
        "bench_macro_flow_scale",
        &[
            "distinct_flows",
            "capacity_per_instance",
            "lookup_hits",
            "lookup_misses",
            "evicted_expired",
            "evicted_idle",
            "evicted_active",
            "expired",
            "peak_occupancy",
            "resident_bytes",
        ],
        &[vec![
            fs.distinct_flows.to_string(),
            fs.capacity_per_instance.to_string(),
            fs.lookup_hits.to_string(),
            fs.lookup_misses.to_string(),
            fs.evicted_expired.to_string(),
            fs.evicted_idle.to_string(),
            fs.evicted_active.to_string(),
            fs.expired.to_string(),
            fs.peak_occupancy.to_string(),
            fs.resident_bytes.to_string(),
        ]],
    ));
    let rows: Vec<Vec<String>> = report
        .ablation
        .iter()
        .map(|c| {
            vec![
                c.policy.clone(),
                fmt(c.rho),
                c.sent.to_string(),
                c.completed.to_string(),
                fmt(c.mean_response_ms),
                fmt(c.p95_response_ms),
                fmt(c.p99_response_ms),
            ]
        })
        .collect();
    report_write(write_csv(
        "bench_macro_ablation",
        &[
            "policy",
            "rho",
            "sent",
            "completed",
            "mean_ms",
            "p95_ms",
            "p99_ms",
        ],
        &rows,
    ));
    let dir = if scale == Scale::Paper {
        srlb_bench::micro::workspace_root()
    } else {
        std::path::PathBuf::from(srlb_bench::FIGURES_DIR)
    };
    match srlb_bench::write_bench_macro(&dir, &report) {
        Ok(path) => println!("  -> wrote {}", path.display()),
        Err(err) => eprintln!("  !! could not write macro-bench report: {err}"),
    }
}

fn run_bench_micro() {
    println!("# SRLB micro-bench harness (medians, ns/iter)");
    match write_bench_micro(&srlb_bench::micro::workspace_root()) {
        Ok(path) => {
            let content = std::fs::read_to_string(&path).unwrap_or_default();
            println!("{}", content.trim_end());
            println!("  -> wrote {}", path.display());
        }
        Err(err) => eprintln!("  !! could not write bench report: {err}"),
    }
}

fn run_bench_check() {
    println!("# SRLB sharded-throughput guard");
    match srlb_bench::micro::check_sharded_throughput() {
        Ok(summary) => println!("  ok: {summary}"),
        Err(err) => {
            eprintln!("  !! {err}");
            std::process::exit(1);
        }
    }
}

fn run_scenarios_sweep(scale: Scale, jobs: usize) {
    println!(
        "# SRLB dynamic-cluster scenario sweep (scale: {scale:?}, seed: {SEED}, jobs: {jobs})"
    );
    let doc = srlb_bench::run_scenarios(scale, SEED, jobs);
    println!(
        "{:<16} {:<22} {:>6} {:>6} {:>7} {:>7} {:>8} {:>8}",
        "scenario", "dispatcher", "sent", "done", "broken", "orphans", "rehunts", "recon-ms"
    );
    for report in &doc.scenarios {
        println!(
            "{:<16} {:<22} {:>6} {:>6} {:>7} {:>7} {:>8} {:>8}",
            report.name,
            report.dispatcher,
            report.sent,
            report.completed,
            report.broken_established,
            report.orphaned,
            report.rehunts,
            report
                .reconstruction_ms
                .map_or("-".to_string(), |ms| format!("{ms:.1}")),
        );
    }
    println!("\n## single-server churn remapping probes (8192 flows, 12-server base)");
    for remap in &doc.remap {
        println!(
            "{:<16} {:<12} moved {:>6} ({:>6.3}) collateral {:>5} ({:>6.3})",
            remap.dispatcher,
            remap.op,
            remap.moved,
            remap.moved_fraction,
            remap.collateral,
            remap.collateral_fraction,
        );
    }
    println!("\n## ECMP reshuffle sweep (dispatcher x LB tier size, one instance withdrawn)");
    println!(
        "{:<16} {:>4} {:>6} {:>6} {:>7} {:>7} {:>8}",
        "dispatcher", "lbs", "sent", "done", "broken", "orphans", "rehunts"
    );
    for cell in &doc.ecmp_reshuffle {
        println!(
            "{:<16} {:>4} {:>6} {:>6} {:>7} {:>7} {:>8}",
            cell.dispatcher,
            cell.lb_count,
            cell.report.sent,
            cell.report.completed,
            cell.report.broken_established,
            cell.report.orphaned,
            cell.report.rehunts,
        );
    }
    println!("\n## fault-injection sweep (lossy failover, incast, saturated uplink)");
    println!(
        "{:<20} {:<22} {:>6} {:>6} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "scenario", "dispatcher", "sent", "done", "resets", "drops", "queue", "retx", "aborted"
    );
    for report in &doc.faults {
        println!(
            "{:<20} {:<22} {:>6} {:>6} {:>7} {:>7} {:>7} {:>7} {:>7}",
            report.name,
            report.dispatcher,
            report.sent,
            report.completed,
            report.resets,
            report.dropped_injected,
            report.dropped_queue,
            report.retransmits,
            report.aborted,
        );
    }
    match srlb_bench::write_bench_scenarios(&srlb_bench::micro::workspace_root(), &doc) {
        Ok(path) => println!("  -> wrote {}", path.display()),
        Err(err) => eprintln!("  !! could not write scenario report: {err}"),
    }
}

fn run_fig2(scale: Scale, jobs: usize) {
    println!("\n## Figure 2 — mean response time vs load factor rho");
    let series = fig2_mean_response(scale, SEED, jobs);
    let mut rows = Vec::new();
    println!("{:<8} {:>6} {:>12}", "policy", "rho", "mean (s)");
    for s in &series {
        for (rho, mean) in &s.points {
            println!("{:<8} {:>6.2} {:>12.4}", s.label, rho, mean);
            rows.push(vec![s.label.clone(), fmt(*rho), fmt(*mean)]);
        }
    }
    report_write(write_csv(
        "fig2_mean_response",
        &["policy", "rho", "mean_s"],
        &rows,
    ));
}

fn run_poisson_cdf(name: &str, rho: f64, series: Vec<srlb_bench::CdfSeries>) {
    println!(
        "\n## Figure {} — CDF of response time, rho = {rho}",
        &name[3..]
    );
    println!("{:<8} {:>12} {:>12}", "policy", "median (s)", "Q3 (s)");
    let mut rows = Vec::new();
    for s in &series {
        println!(
            "{:<8} {:>12.4} {:>12.4}",
            s.label, s.median_s, s.third_quartile_s
        );
        for (x, p) in &s.points {
            rows.push(vec![s.label.clone(), fmt(*x), fmt(*p)]);
        }
    }
    report_write(write_csv(name, &["policy", "response_s", "cdf"], &rows));
}

fn run_fig4(scale: Scale, jobs: usize) {
    println!("\n## Figure 4 — instantaneous server load (mean & fairness), rho = 0.88");
    let series = fig4_load_fairness(scale, SEED, jobs);
    let mut rows = Vec::new();
    for s in &series {
        let mean_of_means: f64 =
            s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len().max(1) as f64;
        let mean_fairness: f64 =
            s.points.iter().map(|p| p.2).sum::<f64>() / s.points.len().max(1) as f64;
        println!(
            "{:<8} time-average busy workers: {:>6.2}   time-average fairness: {:>5.3}",
            s.label, mean_of_means, mean_fairness
        );
        for (t, mean, fairness) in &s.points {
            rows.push(vec![s.label.clone(), fmt(*t), fmt(*mean), fmt(*fairness)]);
        }
    }
    report_write(write_csv(
        "fig4_load_fairness",
        &["policy", "time_s", "mean_busy", "fairness"],
        &rows,
    ));
}

fn run_fig6_and_7(scale: Scale, jobs: usize) {
    println!("\n## Figures 6 & 7 — Wikipedia replay: rate, median and deciles per bin");
    let series = fig6_wiki_median(scale, SEED, jobs);
    let mut rows6 = Vec::new();
    let mut rows7 = Vec::new();
    for s in &series {
        let overall_median: f64 = {
            let mut medians: Vec<f64> = s.bins.iter().map(|b| b.2).filter(|m| *m > 0.0).collect();
            medians.sort_by(|a, b| a.partial_cmp(b).unwrap());
            medians.get(medians.len() / 2).copied().unwrap_or(0.0)
        };
        println!(
            "{:<8} bins: {:>4}   mean wiki-page rate: {:>6.1}/s   typical median: {:>6.3} s",
            s.label,
            s.bins.len(),
            s.bins.iter().map(|b| b.1).sum::<f64>() / s.bins.len().max(1) as f64,
            overall_median
        );
        for (start, rate, median) in &s.bins {
            rows6.push(vec![s.label.clone(), fmt(*start), fmt(*rate), fmt(*median)]);
        }
        for (start, deciles) in &s.deciles {
            let mut row = vec![s.label.clone(), fmt(*start)];
            row.extend(deciles.iter().map(|d| fmt(*d)));
            rows7.push(row);
        }
    }
    report_write(write_csv(
        "fig6_wiki_median",
        &["policy", "bin_start_s", "wiki_rate_per_s", "median_s"],
        &rows6,
    ));
    report_write(write_csv(
        "fig7_wiki_deciles",
        &[
            "policy",
            "bin_start_s",
            "d1",
            "d2",
            "d3",
            "d4",
            "d5",
            "d6",
            "d7",
            "d8",
            "d9",
        ],
        &rows7,
    ));
    // Figure 7 uses the same runs; fig7_wiki_deciles exists for programmatic
    // use and the Criterion bench.
    let _ = fig7_wiki_deciles;
}

fn run_fig8(scale: Scale, jobs: usize) {
    println!("\n## Figure 8 — CDF of wiki-page load time over the whole replay");
    let result = fig8_wiki_cdf(scale, SEED, jobs);
    println!("{:<8} {:>12} {:>12}", "policy", "median (s)", "Q3 (s)");
    let mut rows = Vec::new();
    for s in &result.series {
        println!(
            "{:<8} {:>12.4} {:>12.4}",
            s.label, s.median_s, s.third_quartile_s
        );
        for (x, p) in &s.points {
            rows.push(vec![s.label.clone(), fmt(*x), fmt(*p)]);
        }
    }
    report_write(write_csv(
        "fig8_wiki_cdf",
        &["policy", "response_s", "cdf"],
        &rows,
    ));
}

fn run_fig9(scale: Scale, jobs: usize) {
    println!("\n## Figure 9 — hunting cost vs rack placement x LB tier spread (1% loss column)");
    let cells = fig9_rackzone_hunting(scale, SEED, jobs);
    println!(
        "{:<10} {:>4} {:>6} {:>6} {:>6} {:>9} {:>9} {:>8} {:>8} {:>7} {:>7}",
        "topology",
        "lbs",
        "lossy",
        "sent",
        "done",
        "mean-ms",
        "p99-ms",
        "hunts",
        "rehunts",
        "drops",
        "retx"
    );
    let mut rows = Vec::new();
    for c in &cells {
        println!(
            "{:<10} {:>4} {:>6} {:>6} {:>6} {:>9.1} {:>9.1} {:>8} {:>8} {:>7} {:>7}",
            c.topology,
            c.lb_count,
            c.lossy,
            c.sent,
            c.completed,
            c.mean_response_ms,
            c.p99_response_ms,
            c.passed_on,
            c.rehunts,
            c.dropped_injected,
            c.retransmits,
        );
        rows.push(vec![
            c.topology.clone(),
            c.lb_count.to_string(),
            c.lossy.to_string(),
            c.sent.to_string(),
            c.completed.to_string(),
            fmt(c.mean_response_ms),
            fmt(c.p99_response_ms),
            c.passed_on.to_string(),
            c.rehunts.to_string(),
            c.dropped_injected.to_string(),
            c.retransmits.to_string(),
            c.aborted.to_string(),
        ]);
    }
    report_write(write_csv(
        "fig9_rackzone_hunting",
        &[
            "topology",
            "lb_count",
            "lossy",
            "sent",
            "completed",
            "mean_ms",
            "p99_ms",
            "passed_on",
            "rehunts",
            "dropped_injected",
            "retransmits",
            "aborted",
        ],
        &rows,
    ));
}

fn report_write(result: std::io::Result<std::path::PathBuf>) {
    match result {
        Ok(path) => println!("  -> wrote {}", path.display()),
        Err(err) => eprintln!("  !! could not write CSV: {err}"),
    }
}
