//! Regenerates the paper's figures.
//!
//! ```text
//! cargo run -p srlb-bench --release --bin figures -- all          # every figure, paper scale
//! cargo run -p srlb-bench --release --bin figures -- fig2 --quick # one figure, reduced scale
//! ```
//!
//! Each figure's series is printed to stdout (policy labels, x/y columns)
//! and written as CSV under `target/figures/`, so the curves can be plotted
//! and compared against the paper's Figures 2–8.

use srlb_bench::output::fmt;
use srlb_bench::{
    fig2_mean_response, fig3_cdf_high_load, fig4_load_fairness, fig5_cdf_low_load,
    fig6_wiki_median, fig7_wiki_deciles, fig8_wiki_cdf, write_csv, Scale,
};

const SEED: u64 = 42;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = which.is_empty() || which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    println!("# SRLB figure harness (scale: {scale:?}, seed: {SEED})");

    if want("fig2") {
        run_fig2(scale);
    }
    if want("fig3") {
        run_poisson_cdf("fig3", 0.88, fig3_cdf_high_load(scale, SEED));
    }
    if want("fig4") {
        run_fig4(scale);
    }
    if want("fig5") {
        run_poisson_cdf("fig5", 0.61, fig5_cdf_low_load(scale, SEED));
    }
    if want("fig6") || want("fig7") {
        run_fig6_and_7(scale);
    }
    if want("fig8") {
        run_fig8(scale);
    }
}

fn run_fig2(scale: Scale) {
    println!("\n## Figure 2 — mean response time vs load factor rho");
    let series = fig2_mean_response(scale, SEED);
    let mut rows = Vec::new();
    println!("{:<8} {:>6} {:>12}", "policy", "rho", "mean (s)");
    for s in &series {
        for (rho, mean) in &s.points {
            println!("{:<8} {:>6.2} {:>12.4}", s.label, rho, mean);
            rows.push(vec![s.label.clone(), fmt(*rho), fmt(*mean)]);
        }
    }
    report_write(write_csv(
        "fig2_mean_response",
        &["policy", "rho", "mean_s"],
        &rows,
    ));
}

fn run_poisson_cdf(name: &str, rho: f64, series: Vec<srlb_bench::CdfSeries>) {
    println!(
        "\n## Figure {} — CDF of response time, rho = {rho}",
        &name[3..]
    );
    println!("{:<8} {:>12} {:>12}", "policy", "median (s)", "Q3 (s)");
    let mut rows = Vec::new();
    for s in &series {
        println!(
            "{:<8} {:>12.4} {:>12.4}",
            s.label, s.median_s, s.third_quartile_s
        );
        for (x, p) in &s.points {
            rows.push(vec![s.label.clone(), fmt(*x), fmt(*p)]);
        }
    }
    report_write(write_csv(name, &["policy", "response_s", "cdf"], &rows));
}

fn run_fig4(scale: Scale) {
    println!("\n## Figure 4 — instantaneous server load (mean & fairness), rho = 0.88");
    let series = fig4_load_fairness(scale, SEED);
    let mut rows = Vec::new();
    for s in &series {
        let mean_of_means: f64 =
            s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len().max(1) as f64;
        let mean_fairness: f64 =
            s.points.iter().map(|p| p.2).sum::<f64>() / s.points.len().max(1) as f64;
        println!(
            "{:<8} time-average busy workers: {:>6.2}   time-average fairness: {:>5.3}",
            s.label, mean_of_means, mean_fairness
        );
        for (t, mean, fairness) in &s.points {
            rows.push(vec![s.label.clone(), fmt(*t), fmt(*mean), fmt(*fairness)]);
        }
    }
    report_write(write_csv(
        "fig4_load_fairness",
        &["policy", "time_s", "mean_busy", "fairness"],
        &rows,
    ));
}

fn run_fig6_and_7(scale: Scale) {
    println!("\n## Figures 6 & 7 — Wikipedia replay: rate, median and deciles per bin");
    let series = fig6_wiki_median(scale, SEED);
    let mut rows6 = Vec::new();
    let mut rows7 = Vec::new();
    for s in &series {
        let overall_median: f64 = {
            let mut medians: Vec<f64> = s.bins.iter().map(|b| b.2).filter(|m| *m > 0.0).collect();
            medians.sort_by(|a, b| a.partial_cmp(b).unwrap());
            medians.get(medians.len() / 2).copied().unwrap_or(0.0)
        };
        println!(
            "{:<8} bins: {:>4}   mean wiki-page rate: {:>6.1}/s   typical median: {:>6.3} s",
            s.label,
            s.bins.len(),
            s.bins.iter().map(|b| b.1).sum::<f64>() / s.bins.len().max(1) as f64,
            overall_median
        );
        for (start, rate, median) in &s.bins {
            rows6.push(vec![s.label.clone(), fmt(*start), fmt(*rate), fmt(*median)]);
        }
        for (start, deciles) in &s.deciles {
            let mut row = vec![s.label.clone(), fmt(*start)];
            row.extend(deciles.iter().map(|d| fmt(*d)));
            rows7.push(row);
        }
    }
    report_write(write_csv(
        "fig6_wiki_median",
        &["policy", "bin_start_s", "wiki_rate_per_s", "median_s"],
        &rows6,
    ));
    report_write(write_csv(
        "fig7_wiki_deciles",
        &[
            "policy",
            "bin_start_s",
            "d1",
            "d2",
            "d3",
            "d4",
            "d5",
            "d6",
            "d7",
            "d8",
            "d9",
        ],
        &rows7,
    ));
    // Figure 7 uses the same runs; fig7_wiki_deciles exists for programmatic
    // use and the Criterion bench.
    let _ = fig7_wiki_deciles;
}

fn run_fig8(scale: Scale) {
    println!("\n## Figure 8 — CDF of wiki-page load time over the whole replay");
    let result = fig8_wiki_cdf(scale, SEED);
    println!("{:<8} {:>12} {:>12}", "policy", "median (s)", "Q3 (s)");
    let mut rows = Vec::new();
    for s in &result.series {
        println!(
            "{:<8} {:>12.4} {:>12.4}",
            s.label, s.median_s, s.third_quartile_s
        );
        for (x, p) in &s.points {
            rows.push(vec![s.label.clone(), fmt(*x), fmt(*p)]);
        }
    }
    report_write(write_csv(
        "fig8_wiki_cdf",
        &["policy", "response_s", "cdf"],
        &rows,
    ));
}

fn report_write(result: std::io::Result<std::path::PathBuf>) {
    match result {
        Ok(path) => println!("  -> wrote {}", path.display()),
        Err(err) => eprintln!("  !! could not write CSV: {err}"),
    }
}
