//! One function per figure of the paper's evaluation.
//!
//! Every figure function takes a `jobs` worker count: the underlying
//! `(policy, ρ)` / replay points are independent seeded simulations and run
//! through [`parallel_map`](crate::parallel::parallel_map), which returns
//! results in input order — so output is byte-identical whatever the worker
//! count, and `jobs = 1` is a fully serial run.

use srlb_core::dispatch::DispatcherConfig;
use srlb_core::experiment::ExperimentResult;
use srlb_core::runner::Runner;
use srlb_core::spec::{ExperimentSpec, FaultLink, FaultPlan, LossSpec, PolicyKind};
use srlb_metrics::{jain_fairness, Ewma, RequestClass};
use srlb_server::PolicyConfig;
use srlb_sim::TopologyModel;

use crate::parallel::parallel_map;

/// How large to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// The paper's full scale: 20 000 queries per Poisson point, 24 values of
    /// ρ, 24-hour Wikipedia replay.
    Paper,
    /// A reduced scale for quick command-line runs: fewer queries, fewer ρ
    /// points, a slice of the Wikipedia day.
    Quick,
    /// The smallest meaningful scale, used by the Criterion benches so each
    /// measured iteration stays in the tens-of-milliseconds range.
    Tiny,
}

impl Scale {
    /// Number of queries per Poisson experiment.
    pub fn poisson_queries(self) -> usize {
        match self {
            Scale::Paper => 20_000,
            Scale::Quick => 2_000,
            Scale::Tiny => 500,
        }
    }

    /// The ρ values swept in Figure 2.
    pub fn rho_values(self) -> Vec<f64> {
        match self {
            // 24 values in (0, 1), as in the paper.
            Scale::Paper => (1..=24).map(|i| i as f64 / 25.0).collect(),
            Scale::Quick => vec![0.2, 0.4, 0.6, 0.8, 0.88, 0.96],
            Scale::Tiny => vec![0.61, 0.88],
        }
    }

    /// Duration of the Wikipedia replay in hours.
    pub fn wiki_hours(self) -> f64 {
        match self {
            Scale::Paper => 24.0,
            Scale::Quick => 0.25,
            Scale::Tiny => 0.05,
        }
    }

    /// Width of the Wikipedia time bins in seconds (the paper uses 10-minute
    /// bins over 24 h; the reduced scales use shorter bins over their shorter
    /// slices so there are still plenty of points).
    pub fn wiki_bin_seconds(self) -> f64 {
        match self {
            Scale::Paper => 600.0,
            Scale::Quick => 60.0,
            Scale::Tiny => 30.0,
        }
    }
}

/// The policies compared in the Poisson figures, in the paper's order.
pub fn poisson_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::RoundRobin,
        PolicyKind::Static { threshold: 4 },
        PolicyKind::Static { threshold: 8 },
        PolicyKind::Static { threshold: 16 },
        PolicyKind::Dynamic,
    ]
}

/// Runs one paper-testbed Poisson point through the unified
/// [`Runner`](srlb_core::runner::Runner).
fn poisson_result(
    scale: Scale,
    seed: u64,
    rho: f64,
    policy: PolicyKind,
    record_load: bool,
) -> ExperimentResult {
    let mut spec = ExperimentSpec::poisson_paper(rho, policy)
        .with_queries(scale.poisson_queries())
        .with_seed(seed);
    if record_load {
        spec = spec.with_load_recording();
    }
    let outcome = Runner::new(spec)
        .expect("paper poisson spec is valid")
        .run();
    ExperimentResult::from_outcome(outcome, Some(rho))
}

/// One policy's mean-response-time curve for Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Series {
    /// Policy label (`"RR"`, `"SR4"`, …).
    pub label: String,
    /// `(rho, mean response time in seconds)` points.
    pub points: Vec<(f64, f64)>,
}

/// Figure 2: mean page load time as a function of the normalised request
/// rate ρ, for RR and the SRc/SRdyn policies.
///
/// The full `(policy, ρ)` cross product is swept across `jobs` workers;
/// each point is an independent seeded simulation and the series are
/// reassembled in the paper's policy order.
pub fn fig2_mean_response(scale: Scale, seed: u64, jobs: usize) -> Vec<Fig2Series> {
    let policies = poisson_policies();
    let rhos = scale.rho_values();
    let grid: Vec<(PolicyKind, f64)> = policies
        .iter()
        .flat_map(|&policy| rhos.iter().map(move |&rho| (policy, rho)))
        .collect();
    let means = parallel_map(&grid, jobs, |&(policy, rho)| {
        poisson_result(scale, seed, rho, policy, false).mean_response_seconds()
    });
    policies
        .iter()
        .enumerate()
        .map(|(p, policy)| Fig2Series {
            label: policy.label(),
            points: rhos
                .iter()
                .enumerate()
                .map(|(r, &rho)| (rho, means[p * rhos.len() + r]))
                .collect(),
        })
        .collect()
}

/// One policy's response-time CDF (Figures 3, 5 and 8).
#[derive(Debug, Clone, PartialEq)]
pub struct CdfSeries {
    /// Policy label.
    pub label: String,
    /// `(response time in seconds, cumulative fraction)` points.
    pub points: Vec<(f64, f64)>,
    /// Median response time in seconds.
    pub median_s: f64,
    /// Third quartile in seconds.
    pub third_quartile_s: f64,
}

fn cdf_series_for(
    result: &ExperimentResult,
    class: Option<RequestClass>,
    points: usize,
) -> CdfSeries {
    let cdf = result.cdf_seconds(class);
    CdfSeries {
        label: result.label.clone(),
        points: cdf.points(points),
        median_s: cdf.median().unwrap_or(0.0),
        third_quartile_s: cdf.third_quartile().unwrap_or(0.0),
    }
}

fn poisson_cdf(scale: Scale, seed: u64, rho: f64, jobs: usize) -> Vec<CdfSeries> {
    parallel_map(&poisson_policies(), jobs, |&policy| {
        cdf_series_for(&poisson_result(scale, seed, rho, policy, false), None, 200)
    })
}

/// Figure 3: CDF of page load time at high load (ρ = 0.88).
pub fn fig3_cdf_high_load(scale: Scale, seed: u64, jobs: usize) -> Vec<CdfSeries> {
    poisson_cdf(scale, seed, 0.88, jobs)
}

/// Figure 5: CDF of page load time at moderate load (ρ = 0.61).
pub fn fig5_cdf_low_load(scale: Scale, seed: u64, jobs: usize) -> Vec<CdfSeries> {
    poisson_cdf(scale, seed, 0.61, jobs)
}

/// One policy's instantaneous-load trajectory for Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Series {
    /// Policy label (`"RR"` or `"SR4"`).
    pub label: String,
    /// `(time in seconds, mean busy workers over servers, Jain fairness)`
    /// samples, smoothed with the paper's EWMA.
    pub points: Vec<(f64, f64, f64)>,
}

/// Figure 4: instantaneous server load (mean and Jain fairness over the 12
/// servers) during a run at ρ = 0.88, for RR and SR4, smoothed with an EWMA
/// of parameter `alpha = 1 - exp(-dt)`.
pub fn fig4_load_fairness(scale: Scale, seed: u64, jobs: usize) -> Vec<Fig4Series> {
    parallel_map(
        &[PolicyKind::RoundRobin, PolicyKind::Static { threshold: 4 }],
        jobs,
        |&policy| {
            let result = poisson_result(scale, seed, 0.88, policy, true);
            Fig4Series {
                label: result.label.clone(),
                points: load_grid(&result.load_series, result.duration_seconds, 1.0),
            }
        },
    )
}

/// Resamples per-server step-function load series on a regular grid and
/// returns `(t, mean, fairness)` with the paper's EWMA smoothing.
fn load_grid(series: &[Vec<(f64, usize)>], duration_s: f64, step_s: f64) -> Vec<(f64, f64, f64)> {
    let n = series.len();
    if n == 0 || duration_s <= 0.0 {
        return Vec::new();
    }
    let mut cursors = vec![0usize; n];
    let mut current = vec![0.0f64; n];
    let mut filters: Vec<Ewma> = (0..n).map(|_| Ewma::new()).collect();
    let mut out = Vec::new();
    let mut t = 0.0;
    while t <= duration_s {
        for (i, server) in series.iter().enumerate() {
            while cursors[i] < server.len() && server[cursors[i]].0 <= t {
                current[i] = server[cursors[i]].1 as f64;
                cursors[i] += 1;
            }
            filters[i].observe(t, current[i]);
        }
        let smoothed: Vec<f64> = filters.iter().map(|f| f.value().unwrap_or(0.0)).collect();
        let mean = smoothed.iter().sum::<f64>() / n as f64;
        out.push((t, mean, jain_fairness(&smoothed)));
        t += step_s;
    }
    out
}

/// One time-binned series of the Wikipedia replay (Figure 6).
#[derive(Debug, Clone, PartialEq)]
pub struct WikiBinSeries {
    /// Policy label.
    pub label: String,
    /// `(bin start in seconds, wiki-page queries per second, median wiki-page
    /// load time in seconds)` per bin.
    pub bins: Vec<(f64, f64, f64)>,
    /// `(bin start in seconds, deciles 1..=9 in seconds)` per bin (Figure 7).
    pub deciles: Vec<(f64, [f64; 9])>,
}

fn wikipedia_result(scale: Scale, seed: u64, policy: PolicyKind) -> ExperimentResult {
    let spec = ExperimentSpec::wikipedia_paper(policy)
        .with_hours(scale.wiki_hours())
        .with_seed(seed);
    let outcome = Runner::new(spec)
        .expect("paper wikipedia spec is valid")
        .run();
    ExperimentResult::from_outcome(outcome, None)
}

fn wiki_bins(result: &ExperimentResult, bin_seconds: f64) -> WikiBinSeries {
    let binned = result
        .collector
        .binned(bin_seconds, Some(RequestClass::WikiPage));
    let rates = result
        .collector
        .arrival_rate_bins(bin_seconds, Some(RequestClass::WikiPage));
    let rate_stats = rates.stats();
    let mut bins = Vec::new();
    let mut deciles = Vec::new();
    for (i, stat) in binned.stats().iter().enumerate() {
        let rate = rate_stats.get(i).map(|r| r.rate_per_second).unwrap_or(0.0);
        bins.push((stat.start_seconds, rate, stat.median.unwrap_or(0.0) / 1e3));
        if let Some(d) = stat.deciles {
            let mut seconds = [0.0; 9];
            for (j, v) in d.iter().enumerate() {
                seconds[j] = v / 1e3;
            }
            deciles.push((stat.start_seconds, seconds));
        }
    }
    WikiBinSeries {
        label: result.label.clone(),
        bins,
        deciles,
    }
}

/// Figure 6: wiki-page query rate and median load time per time bin over the
/// Wikipedia replay, for RR and SR4.
pub fn fig6_wiki_median(scale: Scale, seed: u64, jobs: usize) -> Vec<WikiBinSeries> {
    parallel_map(
        &[PolicyKind::RoundRobin, PolicyKind::Static { threshold: 4 }],
        jobs,
        |&policy| {
            wiki_bins(
                &wikipedia_result(scale, seed, policy),
                scale.wiki_bin_seconds(),
            )
        },
    )
}

/// Figure 7: deciles 1–9 of the wiki-page load time per time bin, for RR and
/// SR4 (same runs as Figure 6).
pub fn fig7_wiki_deciles(scale: Scale, seed: u64, jobs: usize) -> Vec<WikiBinSeries> {
    fig6_wiki_median(scale, seed, jobs)
}

/// The whole-day CDF comparison of Figure 8.
#[derive(Debug, Clone, PartialEq)]
pub struct WikiCdf {
    /// CDF of wiki-page load times per policy.
    pub series: Vec<CdfSeries>,
}

/// Figure 8: CDF of wiki-page load time over the whole replay, RR vs SR4
/// (the paper reports the median dropping from 0.25 s to 0.20 s and the
/// third quartile from 0.48 s to 0.28 s).
pub fn fig8_wiki_cdf(scale: Scale, seed: u64, jobs: usize) -> WikiCdf {
    let series = parallel_map(
        &[PolicyKind::RoundRobin, PolicyKind::Static { threshold: 4 }],
        jobs,
        |&policy| {
            let result = wikipedia_result(scale, seed, policy);
            cdf_series_for(&result, Some(RequestClass::WikiPage), 200)
        },
    );
    WikiCdf { series }
}

/// LB tier sizes swept by Figure 9.
pub const FIG9_LB_COUNTS: [usize; 3] = [1, 2, 4];

/// One cell of the Figure 9 sweep: Service Hunting cost under rack
/// placement × LB tier spread, measured fault-free and under 1 % injected
/// loss with retransmission.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Cell {
    /// Topology label (`"uniform"` or `"rackzone"`).
    pub topology: String,
    /// Load-balancer tier size (ECMP spread).
    pub lb_count: usize,
    /// Whether 1 % loss + retransmission was injected.
    pub lossy: bool,
    /// Requests sent.
    pub sent: u64,
    /// Requests completed.
    pub completed: u64,
    /// Mean response time in milliseconds.
    pub mean_response_ms: f64,
    /// 99th-percentile response time in milliseconds.
    pub p99_response_ms: f64,
    /// Flow-table misses recovered by re-hunting (tier-wide).
    pub rehunts: u64,
    /// Service Hunting hops: connections a candidate declined and passed on
    /// to the next server in the SR list (summed over servers).
    pub passed_on: u64,
    /// Messages dropped by the injected loss rule.
    pub dropped_injected: u64,
    /// Client retransmissions recovering the drops.
    pub retransmits: u64,
    /// Requests aborted after exhausting the retransmission budget.
    pub aborted: u64,
}

/// Figure 9 (deferred from the LB-tier PR): hunting cost as a function of
/// rack placement and LB tier spread, with a lossy column.
///
/// Sweeps {uniform 50 µs, rack-zone default} × LB tier size {1, 2, 4} ×
/// {fault-free, 1 % uniform loss}, all under consistent-hash dispatch
/// (`vnodes = 128, k = 2`) with the SR4 acceptance policy, so candidate
/// hunting crosses rack boundaries and its latency cost — and its
/// interaction with retransmission — is visible per cell.
pub fn fig9_rackzone_hunting(scale: Scale, seed: u64, jobs: usize) -> Vec<Fig9Cell> {
    let topologies = [
        ("uniform", TopologyModel::paper()),
        ("rackzone", TopologyModel::rack_zone_default()),
    ];
    let grid: Vec<(&str, TopologyModel, usize, bool)> = topologies
        .iter()
        .flat_map(|&(label, topology)| {
            FIG9_LB_COUNTS.iter().flat_map(move |&lb_count| {
                [false, true]
                    .iter()
                    .map(move |&lossy| (label, topology, lb_count, lossy))
            })
        })
        .collect();
    parallel_map(&grid, jobs, |&(label, topology, lb_count, lossy)| {
        let policy = PolicyKind::Explicit {
            dispatcher: DispatcherConfig::ConsistentHash { vnodes: 128, k: 2 },
            acceptance: PolicyConfig::Static { threshold: 4 },
        };
        let mut spec = ExperimentSpec::poisson_paper(0.88, policy)
            .with_queries(scale.poisson_queries())
            .with_seed(seed)
            .with_topology(topology)
            .with_lb_count(lb_count)
            .with_name(format!("fig9-{label}-lb{lb_count}"));
        if lossy {
            spec = spec.with_faults(FaultPlan {
                loss: vec![LossSpec {
                    link: FaultLink::default(),
                    probability: 0.01,
                }],
                recovery: Some(srlb_net::RetransmitPolicy::default()),
                ..FaultPlan::default()
            });
        }
        let outcome = Runner::new(spec).expect("fig9 spec is valid").run();
        let summary = outcome.collector.summary(None);
        Fig9Cell {
            topology: label.to_string(),
            lb_count,
            lossy,
            sent: outcome.collector.len() as u64,
            completed: outcome.collector.completed_count() as u64,
            mean_response_ms: summary.mean(),
            p99_response_ms: summary.percentile(99.0).unwrap_or(0.0),
            rehunts: outcome.lb_stats.rehunts,
            passed_on: outcome.server_stats.iter().map(|s| s.passed_on).sum(),
            dropped_injected: outcome.dropped_injected,
            retransmits: outcome.retransmits,
            aborted: outcome.aborted,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters_are_consistent() {
        assert_eq!(Scale::Paper.rho_values().len(), 24);
        assert_eq!(Scale::Paper.poisson_queries(), 20_000);
        assert_eq!(Scale::Paper.wiki_hours(), 24.0);
        assert!(Scale::Quick.poisson_queries() < Scale::Paper.poisson_queries());
        assert!(Scale::Quick.wiki_hours() < 1.0);
        assert!(Scale::Paper
            .rho_values()
            .iter()
            .all(|&r| r > 0.0 && r < 1.0));
    }

    #[test]
    fn load_grid_resamples_step_functions() {
        // Two servers: one constant at 4, one stepping 0 -> 8 at t = 5.
        let series = vec![vec![(0.0, 4)], vec![(0.0, 0), (5.0, 8)]];
        let grid = load_grid(&series, 10.0, 1.0);
        assert_eq!(grid.len(), 11);
        // At t = 0 the mean is (4 + 0) / 2 = 2 and fairness is 0.5.
        assert!((grid[0].1 - 2.0).abs() < 1e-9);
        assert!((grid[0].2 - 0.5).abs() < 1e-9);
        // Late in the run the smoothed loads approach 4 and 8.
        let last = grid.last().unwrap();
        assert!(last.1 > 5.0 && last.1 < 6.5);
        assert!(last.2 > 0.8);
    }

    #[test]
    fn load_grid_handles_empty_input() {
        assert!(load_grid(&[], 10.0, 1.0).is_empty());
        assert!(load_grid(&[vec![(0.0, 1)]], 0.0, 1.0).is_empty());
    }

    #[test]
    fn fig9_sweep_contrasts_topology_and_loss() {
        let serial = fig9_rackzone_hunting(Scale::Tiny, 7, 1);
        // {uniform, rackzone} x {1, 2, 4} LBs x {fault-free, lossy}.
        assert_eq!(serial.len(), 12);
        for cell in &serial {
            assert!(cell.sent > 0);
            assert!(cell.completed > 0);
            assert!(cell.mean_response_ms > 0.0);
            if cell.lossy {
                // The lossy column actually injects and recovers drops.
                assert!(cell.dropped_injected > 0, "lossy cell saw no drops");
                assert!(cell.retransmits > 0, "lossy cell never retransmitted");
            } else {
                assert_eq!(cell.dropped_injected, 0);
                assert_eq!(cell.retransmits, 0);
                assert_eq!(cell.aborted, 0);
            }
        }
        // Consistent-hash dispatch with SR4 acceptance actually hunts at
        // rho = 0.88, in every topology / tier-spread cell.
        assert!(serial.iter().all(|c| c.passed_on > 0));
        // Byte-identical whatever the worker count.
        let parallel = fig9_rackzone_hunting(Scale::Tiny, 7, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_sweep_output_matches_serial() {
        // Each (policy, rho) point is an independent seeded simulation and
        // results are reassembled by input index, so the figure data must be
        // identical whatever the worker count.
        let serial = fig2_mean_response(Scale::Tiny, 7, 1);
        let parallel = fig2_mean_response(Scale::Tiny, 7, 4);
        assert_eq!(serial, parallel);
    }
}
