//! # srlb-bench — the figure-regeneration harness
//!
//! One function per figure of the paper's evaluation section (Figures 2–8,
//! plus a deferred fault-injection figure, fig9),
//! shared between:
//!
//! * the `figures` binary (`cargo run -p srlb-bench --release --bin figures`),
//!   which runs the paper-scale experiments and prints/writes the series, and
//! * the Criterion benches (`cargo bench -p srlb-bench`), which run
//!   scaled-down versions of the same code so the whole harness is exercised
//!   quickly and regressions in experiment runtime are visible.
//!
//! Every function takes a [`Scale`] so the same code path serves both uses,
//! plus a `jobs` worker count: independent `(policy, ρ)` simulation points
//! run across scoped threads ([`parallel`]) with deterministic,
//! byte-identical output regardless of the worker count.  The [`micro`]
//! module additionally writes machine-readable micro-bench medians
//! (`BENCH_micro.json`) so PRs can diff the perf trajectory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod macrobench;
pub mod micro;
pub mod output;
pub mod parallel;
pub mod scenarios;
pub mod spec_run;

pub use figures::{
    fig2_mean_response, fig3_cdf_high_load, fig4_load_fairness, fig5_cdf_low_load,
    fig6_wiki_median, fig7_wiki_deciles, fig8_wiki_cdf, fig9_rackzone_hunting, CdfSeries,
    Fig2Series, Fig4Series, Fig9Cell, Scale, WikiBinSeries, WikiCdf, FIG9_LB_COUNTS,
};
pub use macrobench::{
    run_macro_bench, write_bench_macro, AblationCell, FlowScaleReport, MacroBenchReport,
    BENCH_MACRO_FILE,
};
pub use micro::{engine_events_per_sec, write_bench_micro, BenchReport, BENCH_MICRO_FILE};
pub use output::{write_csv, FIGURES_DIR};
pub use parallel::{default_jobs, parallel_map};
pub use scenarios::{
    run_scenarios, write_bench_scenarios, EcmpReshuffleReport, ScenariosDoc, BENCH_SCENARIOS_FILE,
    ECMP_RESHUFFLE_LB_COUNTS,
};
pub use spec_run::{
    example_specs, load_spec, run_spec_file, scale_spec, write_example_specs, write_spec_report,
    SpecRunReport,
};
