//! # srlb-metrics — measurement toolkit for the SRLB experiments
//!
//! Every quantity reported in the paper's evaluation section is computed by
//! this crate:
//!
//! * [`Summary`] — mean, standard deviation, arbitrary percentiles and the
//!   deciles 1–9 used in Figure 7,
//! * [`Cdf`] — empirical CDFs of response times (Figures 3, 5 and 8),
//! * [`jain_fairness`] — the fairness index of per-server loads used in
//!   Figure 4,
//! * [`Ewma`] — the exponential window moving average filter (with the
//!   paper's `alpha = 1 - exp(-dt)` parameterisation) used to smooth the
//!   instantaneous server loads of Figure 4,
//! * [`TimeBinner`] — the 10-minute binning of the Wikipedia replay
//!   (Figures 6 and 7),
//! * [`DisruptionCollector`] — per-phase disruption statistics (broken /
//!   rerouted connections, fairness) for dynamic-cluster scenario runs,
//! * [`Histogram`] — fixed-bucket latency histograms used by the benches,
//! * [`OccupancyGauge`] / [`EvictionBreakdown`] — occupancy and per-cause
//!   eviction accounting for the bounded flow-state tables,
//! * [`ResponseTimeCollector`] — the per-query sample store from which all
//!   of the above are derived.
//!
//! Values are plain `f64`s in caller-chosen units (the SRLB experiments use
//! milliseconds for response times and busy-thread counts for loads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cdf;
pub mod collector;
pub mod disruption;
pub mod ewma;
pub mod fairness;
pub mod histogram;
pub mod occupancy;
pub mod summary;
pub mod timebin;

pub use cdf::Cdf;
pub use collector::{RequestClass, RequestOutcome, RequestRecord, ResponseTimeCollector};
pub use disruption::{DisruptionCollector, PhaseStats};
pub use ewma::Ewma;
pub use fairness::jain_fairness;
pub use histogram::Histogram;
pub use occupancy::{EvictionBreakdown, EvictionCause, OccupancyGauge};
pub use summary::Summary;
pub use timebin::{BinStats, TimeBinner};
