//! Jain's fairness index.

/// Computes Jain's fairness index of a set of loads:
/// `(Σ xᵢ)² / (n · Σ xᵢ²)`.
///
/// The index is 1 when all loads are equal and `1/n` when a single element
/// carries all the load.  The paper plots this index over the 12 servers'
/// instantaneous loads in Figure 4 to show that SR4 spreads queries more
/// evenly than RR.
///
/// Returns 1.0 for an empty slice or when all loads are zero (an idle,
/// perfectly balanced system).
pub fn jain_fairness(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let sum: f64 = loads.iter().sum();
    let sum_sq: f64 = loads.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (loads.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_loads_are_perfectly_fair() {
        assert!((jain_fairness(&[3.0, 3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness(&[0.5; 12]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_loaded_server_gives_one_over_n() {
        let n = 12;
        let mut loads = vec![0.0; n];
        loads[0] = 10.0;
        assert!((jain_fairness(&loads) - 1.0 / n as f64).abs() < 1e-12);
    }

    #[test]
    fn index_is_bounded() {
        let cases: &[&[f64]] = &[
            &[1.0, 2.0, 3.0],
            &[10.0, 0.1, 5.0, 7.3],
            &[1.0],
            &[2.0, 2.0, 0.0],
        ];
        for loads in cases {
            let f = jain_fairness(loads);
            assert!(f > 0.0 && f <= 1.0 + 1e-12, "fairness {f} out of bounds");
            assert!(f >= 1.0 / loads.len() as f64 - 1e-12);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_fairness(&[5.0]), 1.0);
    }

    #[test]
    fn more_balanced_is_fairer() {
        let skewed = jain_fairness(&[10.0, 1.0, 1.0, 1.0]);
        let balanced = jain_fairness(&[4.0, 3.0, 3.0, 3.0]);
        assert!(balanced > skewed);
    }
}
