//! Per-query response-time collection.
//!
//! The collector is filled by the experiment's client node (one record per
//! query) and is the single source from which every figure's series is
//! derived: CDFs, mean-vs-load curves, time-binned medians and deciles.

use serde::{Deserialize, Serialize};

use crate::cdf::Cdf;
use crate::summary::Summary;
use crate::timebin::TimeBinner;

/// Classification of a request, used by the Wikipedia replay to separate
/// cheap static pages from CPU-intensive wiki pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestClass {
    /// A static page (served in about a millisecond in the paper).
    Static,
    /// A wiki page (triggers memcached/MySQL work, CPU-intensive).
    WikiPage,
    /// The synthetic CPU-bound PHP page of the Poisson experiments.
    Synthetic,
}

/// Outcome of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// The request completed and a response was received.
    Completed,
    /// The connection was reset (backlog overflow with
    /// `tcp_abort_on_overflow`, as configured in the paper's testbed).
    Reset,
    /// The request was still outstanding when the experiment ended.
    Unfinished,
    /// The client gave up after exhausting its retransmission budget
    /// (fault-injection runs only): every copy of the SYN or the request —
    /// or of the corresponding response — was lost in the network.
    Aborted,
}

/// One request's measurement record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Time the request was sent, in seconds since experiment start.
    pub sent_at_seconds: f64,
    /// Response time in milliseconds (`None` unless completed).
    pub response_time_ms: Option<f64>,
    /// Class of the request.
    pub class: RequestClass,
    /// Outcome.
    pub outcome: RequestOutcome,
    /// Which server ultimately served the request, if known.
    pub served_by: Option<u32>,
    /// How many times the request was retransmitted (fault-injection runs
    /// only; omitted from serialized records when zero so fault-free
    /// outputs are byte-identical to those of older versions).
    #[serde(default, skip_serializing_if = "is_zero_u32")]
    pub retransmits: u32,
}

/// Serde helper: skip serializing zero counters.
fn is_zero_u32(n: &u32) -> bool {
    *n == 0
}

/// Accumulates [`RequestRecord`]s and derives the statistics the paper
/// reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResponseTimeCollector {
    records: Vec<RequestRecord>,
}

impl ResponseTimeCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a record.
    pub fn push(&mut self, record: RequestRecord) {
        self.records.push(record);
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no records have been collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of completed requests.
    pub fn completed_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Completed)
            .count()
    }

    /// Number of reset (refused) requests.
    pub fn reset_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Reset)
            .count()
    }

    /// Number of requests aborted after exhausting the retransmission
    /// budget.
    pub fn aborted_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Aborted)
            .count()
    }

    /// Total retransmissions across all records.
    pub fn retransmit_total(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.retransmits)).sum()
    }

    /// Completed response times in milliseconds, optionally filtered by
    /// class.
    pub fn response_times_ms(&self, class: Option<RequestClass>) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| class.is_none_or(|c| r.class == c))
            .filter_map(|r| r.response_time_ms)
            .collect()
    }

    /// Mean completed response time in milliseconds (0.0 if none).
    pub fn mean_ms(&self) -> f64 {
        Summary::from_samples(self.response_times_ms(None)).mean()
    }

    /// Summary over completed response times (optionally per class).
    pub fn summary(&self, class: Option<RequestClass>) -> Summary {
        Summary::from_samples(self.response_times_ms(class))
    }

    /// CDF over completed response times (optionally per class).
    pub fn cdf(&self, class: Option<RequestClass>) -> Cdf {
        Cdf::from_samples(self.response_times_ms(class))
    }

    /// Response times binned by send time (optionally per class); `width` is
    /// the bin width in seconds (the paper uses 600 s).
    pub fn binned(&self, width_seconds: f64, class: Option<RequestClass>) -> TimeBinner {
        let mut binner = TimeBinner::new(width_seconds);
        for r in &self.records {
            if class.is_none_or(|c| r.class == c) {
                if let Some(rt) = r.response_time_ms {
                    binner.record(r.sent_at_seconds, rt);
                }
            }
        }
        binner
    }

    /// Request send times binned by wall clock (for the query-rate series of
    /// Figure 6), counting every request regardless of outcome.
    pub fn arrival_rate_bins(&self, width_seconds: f64, class: Option<RequestClass>) -> TimeBinner {
        let mut binner = TimeBinner::new(width_seconds);
        for r in &self.records {
            if class.is_none_or(|c| r.class == c) {
                binner.record(r.sent_at_seconds, 1.0);
            }
        }
        binner
    }

    /// Per-server completed-request counts, keyed by server id, over servers
    /// `0..n`.
    pub fn per_server_counts(&self, n: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n];
        for r in &self.records {
            if let Some(server) = r.served_by {
                if (server as usize) < n {
                    counts[server as usize] += 1;
                }
            }
        }
        counts
    }

    /// Merges another collector's records into this one.
    pub fn merge(&mut self, other: ResponseTimeCollector) {
        self.records.extend(other.records);
    }
}

impl Extend<RequestRecord> for ResponseTimeCollector {
    fn extend<T: IntoIterator<Item = RequestRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: f64, rt: Option<f64>, class: RequestClass, server: Option<u32>) -> RequestRecord {
        RequestRecord {
            sent_at_seconds: t,
            response_time_ms: rt,
            class,
            outcome: if rt.is_some() {
                RequestOutcome::Completed
            } else {
                RequestOutcome::Reset
            },
            served_by: server,
            retransmits: 0,
        }
    }

    #[test]
    fn counts_by_outcome() {
        let mut c = ResponseTimeCollector::new();
        c.push(record(0.0, Some(10.0), RequestClass::Synthetic, Some(0)));
        c.push(record(1.0, Some(20.0), RequestClass::Synthetic, Some(1)));
        c.push(record(2.0, None, RequestClass::Synthetic, None));
        assert_eq!(c.len(), 3);
        assert_eq!(c.completed_count(), 2);
        assert_eq!(c.reset_count(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.mean_ms(), 15.0);
    }

    #[test]
    fn filters_by_class() {
        let mut c = ResponseTimeCollector::new();
        c.push(record(0.0, Some(1.0), RequestClass::Static, Some(0)));
        c.push(record(0.0, Some(100.0), RequestClass::WikiPage, Some(0)));
        c.push(record(0.0, Some(200.0), RequestClass::WikiPage, Some(1)));
        assert_eq!(c.response_times_ms(Some(RequestClass::WikiPage)).len(), 2);
        assert_eq!(c.response_times_ms(Some(RequestClass::Static)).len(), 1);
        assert_eq!(c.response_times_ms(None).len(), 3);
        assert_eq!(c.summary(Some(RequestClass::WikiPage)).mean(), 150.0);
        assert_eq!(c.cdf(Some(RequestClass::WikiPage)).median(), Some(100.0));
    }

    #[test]
    fn binning_uses_send_time() {
        let mut c = ResponseTimeCollector::new();
        c.push(record(10.0, Some(5.0), RequestClass::Synthetic, Some(0)));
        c.push(record(610.0, Some(15.0), RequestClass::Synthetic, Some(0)));
        let bins = c.binned(600.0, None);
        assert_eq!(bins.bin_count(), 2);
        assert_eq!(bins.stats()[0].median, Some(5.0));
        assert_eq!(bins.stats()[1].median, Some(15.0));
        let rates = c.arrival_rate_bins(600.0, None);
        assert_eq!(rates.stats()[0].count, 1);
    }

    #[test]
    fn per_server_counts_ignore_out_of_range() {
        let mut c = ResponseTimeCollector::new();
        c.push(record(0.0, Some(1.0), RequestClass::Synthetic, Some(0)));
        c.push(record(0.0, Some(1.0), RequestClass::Synthetic, Some(0)));
        c.push(record(0.0, Some(1.0), RequestClass::Synthetic, Some(2)));
        c.push(record(0.0, Some(1.0), RequestClass::Synthetic, Some(99)));
        assert_eq!(c.per_server_counts(3), vec![2, 0, 1]);
    }

    #[test]
    fn merge_and_extend() {
        let mut a = ResponseTimeCollector::new();
        a.push(record(0.0, Some(1.0), RequestClass::Synthetic, None));
        let mut b = ResponseTimeCollector::new();
        b.push(record(1.0, Some(2.0), RequestClass::Synthetic, None));
        a.merge(b);
        assert_eq!(a.len(), 2);
        a.extend(vec![record(2.0, Some(3.0), RequestClass::Synthetic, None)]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let mut c = ResponseTimeCollector::new();
        c.push(record(0.5, Some(12.0), RequestClass::WikiPage, Some(3)));
        let json = serde_json::to_string(&c).unwrap();
        let back: ResponseTimeCollector = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn zero_retransmit_records_serialize_as_before() {
        let fault_free = record(0.5, Some(12.0), RequestClass::Synthetic, Some(3));
        let json = serde_json::to_string(&fault_free).unwrap();
        assert!(
            !json.contains("retransmits"),
            "fault-free records must stay byte-identical to older outputs: {json}"
        );
        let back: RequestRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fault_free);

        let mut retried = record(0.5, Some(30.0), RequestClass::Synthetic, Some(1));
        retried.retransmits = 2;
        let json = serde_json::to_string(&retried).unwrap();
        assert!(json.contains("\"retransmits\":2"));
        let back: RequestRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, retried);
        assert_eq!(
            serde_json::from_str::<RequestRecord>(&serde_json::to_string(&fault_free).unwrap())
                .unwrap()
                .retransmits,
            0
        );
    }

    #[test]
    fn aborted_counts_and_retransmit_totals() {
        let mut c = ResponseTimeCollector::new();
        let mut aborted = record(0.0, None, RequestClass::Synthetic, None);
        aborted.outcome = RequestOutcome::Aborted;
        aborted.retransmits = 5;
        c.push(aborted);
        let mut retried = record(1.0, Some(50.0), RequestClass::Synthetic, Some(0));
        retried.retransmits = 1;
        c.push(retried);
        c.push(record(2.0, Some(10.0), RequestClass::Synthetic, Some(1)));
        assert_eq!(c.aborted_count(), 1);
        assert_eq!(c.retransmit_total(), 6);
        assert_eq!(c.completed_count(), 2);
        assert_eq!(c.reset_count(), 0);
    }
}
