//! Empirical cumulative distribution functions.

use serde::{Deserialize, Serialize};

/// An empirical CDF built from a set of samples.
///
/// Used to reproduce the response-time CDFs of the paper's Figures 3, 5
/// and 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from an iterator of samples; non-finite values are
    /// ignored.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples less than or equal to `x`, in `[0, 1]`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The value below which a fraction `q` (in `[0, 1]`) of the samples
    /// fall (the `q`-quantile), or `None` for an empty CDF.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            q.is_finite() && (0.0..=1.0).contains(&q),
            "quantile must be within [0, 1]"
        );
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// Median of the distribution.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Third quartile (75th percentile), reported by the paper for Figure 8.
    pub fn third_quartile(&self) -> Option<f64> {
        self.quantile(0.75)
    }

    /// `n` evenly spaced `(value, cumulative_fraction)` points suitable for
    /// plotting the CDF curve.  Returns an empty vector for an empty CDF.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n > 0, "points requires at least one point");
        if self.sorted.is_empty() {
            return Vec::new();
        }
        let len = self.sorted.len();
        (1..=n)
            .map(|i| {
                let q = i as f64 / n as f64;
                let rank = ((q * len as f64).ceil() as usize).clamp(1, len);
                (self.sorted[rank - 1], q)
            })
            .collect()
    }

    /// The raw sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Cdf::from_samples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::from_samples(std::iter::empty());
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_below(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert!(cdf.points(10).is_empty());
    }

    #[test]
    fn fraction_below_is_monotone_and_bounded() {
        let cdf = Cdf::from_samples((1..=10).map(|x| x as f64));
        assert_eq!(cdf.fraction_below(0.0), 0.0);
        assert_eq!(cdf.fraction_below(5.0), 0.5);
        assert_eq!(cdf.fraction_below(10.0), 1.0);
        assert_eq!(cdf.fraction_below(100.0), 1.0);
        let mut prev = 0.0;
        for x in 0..20 {
            let f = cdf.fraction_below(x as f64);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn quantiles_match_expectations() {
        let cdf = Cdf::from_samples((1..=100).map(|x| x as f64));
        assert_eq!(cdf.median(), Some(50.0));
        assert_eq!(cdf.third_quartile(), Some(75.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
    }

    #[test]
    fn quantile_and_fraction_are_inverse_like() {
        let cdf = Cdf::from_samples((1..=1000).map(|x| x as f64 / 10.0));
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let v = cdf.quantile(q).unwrap();
            let back = cdf.fraction_below(v);
            assert!((back - q).abs() < 0.01, "q={q} v={v} back={back}");
        }
    }

    #[test]
    fn points_are_sorted_pairs() {
        let cdf = Cdf::from_samples((0..500).map(|x| (x % 37) as f64));
        let pts = cdf.points(100);
        assert_eq!(pts.len(), 100);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn collects_from_iterator() {
        let cdf: Cdf = vec![3.0, 1.0, 2.0].into_iter().collect();
        assert_eq!(cdf.samples(), &[1.0, 2.0, 3.0]);
        assert_eq!(cdf.count(), 3);
    }

    #[test]
    #[should_panic(expected = "quantile must be within")]
    fn out_of_range_quantile_panics() {
        Cdf::from_samples([1.0]).quantile(1.5);
    }
}
