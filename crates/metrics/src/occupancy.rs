//! Occupancy tracking and eviction accounting for bounded state tables.
//!
//! The flow-state subsystem of `srlb-core` bounds the per-LB flow table to a
//! hard capacity; when the bound is hit an entry must be evicted.  This module
//! provides the two small collectors that subsystem reports through:
//!
//! * [`OccupancyGauge`] — current and peak entry counts,
//! * [`EvictionBreakdown`] — a per-cause eviction tally ([`EvictionCause`]),
//!   so that "an active, established flow was dropped under memory pressure"
//!   is always a counted, visible event rather than a silent one.

use serde::{Deserialize, Serialize};

/// Why a bounded table evicted an entry.
///
/// Ordered from most to least benign: an [`Expired`](EvictionCause::Expired)
/// eviction merely front-runs the idle-timeout sweep, an
/// [`Idle`](EvictionCause::Idle) eviction drops an entry that was at least
/// halfway to expiry, and an [`Active`](EvictionCause::Active) eviction drops
/// an entry a live connection may still need — the case the paper's
/// consistency argument cares about, and the one that must never go uncounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionCause {
    /// The victim had already outlived the idle timeout and would have been
    /// removed by the next expiry sweep anyway.
    Expired,
    /// The victim was idle for at least half the idle timeout.
    Idle,
    /// The victim was recently active; dropping it can break an established
    /// connection's affinity.
    Active,
}

/// Per-cause eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictionBreakdown {
    /// Evictions of entries already past the idle timeout.
    pub expired: u64,
    /// Evictions of entries idle for at least half the timeout.
    pub idle: u64,
    /// Evictions of recently-active entries.
    pub active: u64,
}

impl EvictionBreakdown {
    /// Records one eviction with the given cause.
    pub fn record(&mut self, cause: EvictionCause) {
        match cause {
            EvictionCause::Expired => self.expired += 1,
            EvictionCause::Idle => self.idle += 1,
            EvictionCause::Active => self.active += 1,
        }
    }

    /// Total evictions across all causes.
    pub fn total(&self) -> u64 {
        self.expired + self.idle + self.active
    }

    /// Component-wise sum of two breakdowns.
    pub fn merge(&mut self, other: &EvictionBreakdown) {
        self.expired += other.expired;
        self.idle += other.idle;
        self.active += other.active;
    }
}

/// Tracks the current and peak number of occupied entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancyGauge {
    current: u64,
    peak: u64,
}

impl OccupancyGauge {
    /// Creates an empty gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current occupancy.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Highest occupancy ever observed.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Records `n` entries added.
    pub fn add(&mut self, n: u64) {
        self.current += n;
        if self.current > self.peak {
            self.peak = self.current;
        }
    }

    /// Records `n` entries removed.
    ///
    /// # Panics
    ///
    /// Panics if more entries are removed than are currently tracked; that is
    /// always an accounting bug in the caller.
    pub fn remove(&mut self, n: u64) {
        assert!(
            n <= self.current,
            "occupancy underflow: -{n} at {}",
            self.current
        );
        self.current -= n;
    }

    /// Drops all current entries (e.g. on a fail-over wipe) while keeping the
    /// recorded peak.
    pub fn clear(&mut self) {
        self.current = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_current_and_peak() {
        let mut g = OccupancyGauge::new();
        g.add(3);
        g.add(2);
        assert_eq!(g.current(), 5);
        assert_eq!(g.peak(), 5);
        g.remove(4);
        assert_eq!(g.current(), 1);
        assert_eq!(g.peak(), 5);
        g.add(1);
        assert_eq!(g.peak(), 5);
    }

    #[test]
    fn gauge_clear_keeps_peak() {
        let mut g = OccupancyGauge::new();
        g.add(7);
        g.clear();
        assert_eq!(g.current(), 0);
        assert_eq!(g.peak(), 7);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn gauge_underflow_panics() {
        let mut g = OccupancyGauge::new();
        g.add(1);
        g.remove(2);
    }

    #[test]
    fn breakdown_records_and_merges() {
        let mut a = EvictionBreakdown::default();
        a.record(EvictionCause::Expired);
        a.record(EvictionCause::Active);
        let mut b = EvictionBreakdown::default();
        b.record(EvictionCause::Idle);
        b.record(EvictionCause::Idle);
        a.merge(&b);
        assert_eq!(a.expired, 1);
        assert_eq!(a.idle, 2);
        assert_eq!(a.active, 1);
        assert_eq!(a.total(), 4);
    }
}
