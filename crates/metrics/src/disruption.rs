//! Disruption metrics for dynamic-cluster scenarios.
//!
//! A scenario run (server churn, load-balancer failover, capacity changes)
//! divides an experiment into *phases*: the intervals between consecutive
//! control events.  The [`DisruptionCollector`] slices the per-request
//! records by phase (a request belongs to the phase in which it was *sent*)
//! and reports, per phase, how many connections completed, were reset or
//! never finished, the response-time summary, and the Jain fairness of
//! per-server completions — so the disruption caused by each event is
//! directly attributable.

use serde::{Deserialize, Serialize};

use crate::collector::{RequestOutcome, RequestRecord};
use crate::fairness::jain_fairness;
use crate::summary::Summary;

/// Statistics for one phase of a scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Label of the event that opened this phase (`"start"` for the first).
    pub label: String,
    /// Start of the phase in seconds since the beginning of the run.
    pub start_seconds: f64,
    /// End of the phase (`None` for the final, open-ended phase).
    pub end_seconds: Option<f64>,
    /// Requests sent during the phase.
    pub sent: u64,
    /// Requests sent during the phase that completed.
    pub completed: u64,
    /// Requests sent during the phase whose connection was reset.
    pub resets: u64,
    /// Requests sent during the phase that never finished.
    pub unfinished: u64,
    /// Requests sent during the phase that the client aborted after
    /// exhausting its retransmission budget (fault-injection runs only;
    /// omitted from serialized stats when zero so fault-free outputs stay
    /// byte-identical to those of older versions).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub aborted: u64,
    /// Total retransmissions across requests sent during the phase
    /// (fault-injection runs only; omitted when zero, as above).
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub retransmits: u64,
    /// Mean response time of the phase's completed requests (ms).
    pub mean_response_ms: f64,
    /// 99th-percentile response time of the phase's completed requests (ms).
    pub p99_response_ms: f64,
    /// Jain fairness of per-server completion counts within the phase
    /// (1.0 = perfectly even; 0.0 when nothing completed).
    pub fairness: f64,
}

/// Serde helper: skip serializing zero counters.
fn is_zero_u64(n: &u64) -> bool {
    *n == 0
}

/// Slices request records into phases delimited by scenario control events.
#[derive(Debug, Clone, PartialEq)]
pub struct DisruptionCollector {
    /// `(label, start_seconds)` per phase, sorted by start time; the first
    /// phase starts at 0.
    boundaries: Vec<(String, f64)>,
    /// Number of backend servers (for per-server completion counting).
    servers: usize,
}

impl DisruptionCollector {
    /// Creates a collector for phases opened by the given `(label,
    /// start_seconds)` events over a cluster of `servers` backends.  A
    /// `"start"` phase at `t = 0` is prepended unless the first boundary
    /// already starts at 0.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries are not sorted by start time.
    pub fn new(events: Vec<(String, f64)>, servers: usize) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].1 <= w[1].1),
            "phase boundaries must be sorted by start time"
        );
        let mut boundaries = Vec::with_capacity(events.len() + 1);
        if events.first().is_none_or(|(_, t)| *t > 0.0) {
            boundaries.push(("start".to_string(), 0.0));
        }
        boundaries.extend(events);
        DisruptionCollector {
            boundaries,
            servers,
        }
    }

    /// Number of phases.
    pub fn phase_count(&self) -> usize {
        self.boundaries.len()
    }

    /// Index of the phase a request sent at `t` seconds belongs to.
    pub fn phase_of(&self, t: f64) -> usize {
        self.boundaries
            .partition_point(|(_, start)| *start <= t)
            .saturating_sub(1)
    }

    /// Computes the per-phase statistics over `records`.
    pub fn stats(&self, records: &[RequestRecord]) -> Vec<PhaseStats> {
        let n = self.phase_count();
        let mut sent = vec![0u64; n];
        let mut completed = vec![0u64; n];
        let mut resets = vec![0u64; n];
        let mut unfinished = vec![0u64; n];
        let mut aborted = vec![0u64; n];
        let mut retransmits = vec![0u64; n];
        let mut times: Vec<Vec<f64>> = vec![Vec::new(); n];
        let mut per_server: Vec<Vec<f64>> = vec![vec![0.0; self.servers]; n];
        for record in records {
            let phase = self.phase_of(record.sent_at_seconds);
            sent[phase] += 1;
            retransmits[phase] += u64::from(record.retransmits);
            match record.outcome {
                RequestOutcome::Completed => {
                    completed[phase] += 1;
                    if let Some(ms) = record.response_time_ms {
                        times[phase].push(ms);
                    }
                    if let Some(server) = record.served_by {
                        if (server as usize) < self.servers {
                            per_server[phase][server as usize] += 1.0;
                        }
                    }
                }
                RequestOutcome::Reset => resets[phase] += 1,
                RequestOutcome::Unfinished => unfinished[phase] += 1,
                RequestOutcome::Aborted => aborted[phase] += 1,
            }
        }
        (0..n)
            .map(|i| {
                let summary = Summary::from_samples(times[i].clone());
                PhaseStats {
                    label: self.boundaries[i].0.clone(),
                    start_seconds: self.boundaries[i].1,
                    end_seconds: self.boundaries.get(i + 1).map(|(_, t)| *t),
                    sent: sent[i],
                    completed: completed[i],
                    resets: resets[i],
                    unfinished: unfinished[i],
                    aborted: aborted[i],
                    retransmits: retransmits[i],
                    mean_response_ms: summary.mean(),
                    p99_response_ms: summary.percentile(99.0).unwrap_or(0.0),
                    // `jain_fairness` reports an all-zero vector as 1.0;
                    // an empty phase is "no data", not "perfectly fair".
                    fairness: if completed[i] == 0 {
                        0.0
                    } else {
                        jain_fairness(&per_server[i])
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::RequestClass;

    fn record(t: f64, outcome: RequestOutcome, server: Option<u32>) -> RequestRecord {
        RequestRecord {
            sent_at_seconds: t,
            response_time_ms: (outcome == RequestOutcome::Completed).then_some(10.0 * (t + 1.0)),
            class: RequestClass::Synthetic,
            outcome,
            served_by: server,
            retransmits: 0,
        }
    }

    #[test]
    fn prepends_a_start_phase() {
        let collector = DisruptionCollector::new(vec![("failover".into(), 5.0)], 2);
        assert_eq!(collector.phase_count(), 2);
        assert_eq!(collector.phase_of(0.0), 0);
        assert_eq!(collector.phase_of(4.999), 0);
        assert_eq!(collector.phase_of(5.0), 1);
        assert_eq!(collector.phase_of(100.0), 1);
    }

    #[test]
    fn explicit_zero_phase_is_not_duplicated() {
        let collector =
            DisruptionCollector::new(vec![("warmup".into(), 0.0), ("churn".into(), 2.0)], 1);
        assert_eq!(collector.phase_count(), 2);
        assert_eq!(collector.phase_of(1.0), 0);
    }

    #[test]
    fn slices_outcomes_and_times_by_send_phase() {
        let collector = DisruptionCollector::new(vec![("failover".into(), 10.0)], 2);
        let records = vec![
            record(1.0, RequestOutcome::Completed, Some(0)),
            record(2.0, RequestOutcome::Completed, Some(1)),
            record(3.0, RequestOutcome::Reset, None),
            // Sent pre-failover, but attributed to phase 0 by send time even
            // though it finished later.
            record(9.0, RequestOutcome::Unfinished, None),
            record(11.0, RequestOutcome::Completed, Some(0)),
            record(12.0, RequestOutcome::Reset, None),
        ];
        let stats = collector.stats(&records);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].label, "start");
        assert_eq!(stats[0].sent, 4);
        assert_eq!(stats[0].completed, 2);
        assert_eq!(stats[0].resets, 1);
        assert_eq!(stats[0].unfinished, 1);
        assert_eq!(stats[0].end_seconds, Some(10.0));
        // Both servers completed one request each: perfect fairness.
        assert!((stats[0].fairness - 1.0).abs() < 1e-9);
        assert!((stats[0].mean_response_ms - 25.0).abs() < 1e-9);

        assert_eq!(stats[1].label, "failover");
        assert_eq!(stats[1].sent, 2);
        assert_eq!(stats[1].completed, 1);
        assert_eq!(stats[1].resets, 1);
        assert_eq!(stats[1].end_seconds, None);
        // Only server 0 completed anything: fairness 1/2 over 2 servers.
        assert!((stats[1].fairness - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_phase_reports_zero_fairness() {
        let collector = DisruptionCollector::new(vec![("failover".into(), 10.0)], 4);
        // Everything sent after the failover is reset: nothing completes.
        let stats = collector.stats(&[
            record(1.0, RequestOutcome::Completed, Some(0)),
            record(11.0, RequestOutcome::Reset, None),
            record(12.0, RequestOutcome::Reset, None),
        ]);
        assert_eq!(stats[1].completed, 0);
        assert_eq!(stats[1].fairness, 0.0, "no completions is not 'fair'");
    }

    #[test]
    fn serde_roundtrip() {
        let collector = DisruptionCollector::new(vec![("e".into(), 1.0)], 1);
        let stats = collector.stats(&[record(0.5, RequestOutcome::Completed, Some(0))]);
        let json = serde_json::to_string(&stats[0]).unwrap();
        let back: PhaseStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats[0]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_boundaries_panic() {
        DisruptionCollector::new(vec![("b".into(), 5.0), ("a".into(), 1.0)], 1);
    }

    #[test]
    fn aborts_and_retransmits_are_sliced_by_phase_and_skipped_when_zero() {
        let collector = DisruptionCollector::new(vec![("failover".into(), 10.0)], 2);
        let mut retried = record(1.0, RequestOutcome::Completed, Some(0));
        retried.retransmits = 2;
        let mut gave_up = record(11.0, RequestOutcome::Aborted, None);
        gave_up.retransmits = 5;
        let stats = collector.stats(&[
            retried,
            record(2.0, RequestOutcome::Completed, Some(1)),
            gave_up,
        ]);
        assert_eq!(stats[0].retransmits, 2);
        assert_eq!(stats[0].aborted, 0);
        assert_eq!(stats[1].aborted, 1);
        assert_eq!(stats[1].retransmits, 5);
        assert_eq!(stats[1].sent, 1);

        // Fault-free phases serialize without the new fields.
        let clean = collector.stats(&[record(1.0, RequestOutcome::Completed, Some(0))]);
        let json = serde_json::to_string(&clean[0]).unwrap();
        assert!(!json.contains("aborted"), "{json}");
        assert!(!json.contains("retransmits"), "{json}");
        let json = serde_json::to_string(&stats[1]).unwrap();
        assert!(json.contains("\"aborted\":1"));
    }
}
