//! Time-binned statistics.
//!
//! The Wikipedia replay of the paper reports query rate, median response
//! time (Figure 6) and response-time deciles (Figure 7) in 10-minute bins
//! over a 24-hour trace; [`TimeBinner`] implements that aggregation.

use serde::{Deserialize, Serialize};

use crate::summary::Summary;

/// Aggregated statistics of one time bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinStats {
    /// Start of the bin, in seconds since the start of the measurement.
    pub start_seconds: f64,
    /// Width of the bin in seconds.
    pub width_seconds: f64,
    /// Number of samples in the bin.
    pub count: usize,
    /// Samples per second over the bin (the "query rate" of Figure 6).
    pub rate_per_second: f64,
    /// Mean of the samples.
    pub mean: f64,
    /// Median of the samples (`None` for an empty bin).
    pub median: Option<f64>,
    /// Deciles 1–9 of the samples (`None` for an empty bin).
    pub deciles: Option<[f64; 9]>,
}

/// Bins `(timestamp, value)` samples into fixed-width time bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeBinner {
    width_seconds: f64,
    bins: Vec<Vec<f64>>,
}

impl TimeBinner {
    /// Creates a binner with the given bin width in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `width_seconds` is not strictly positive and finite.
    pub fn new(width_seconds: f64) -> Self {
        assert!(
            width_seconds.is_finite() && width_seconds > 0.0,
            "bin width must be positive"
        );
        TimeBinner {
            width_seconds,
            bins: Vec::new(),
        }
    }

    /// The paper's 10-minute bins.
    pub fn ten_minutes() -> Self {
        Self::new(600.0)
    }

    /// Records a sample taken at `time_seconds`.
    ///
    /// Samples with negative or non-finite timestamps or non-finite values
    /// are ignored.
    pub fn record(&mut self, time_seconds: f64, value: f64) {
        if !time_seconds.is_finite() || time_seconds < 0.0 || !value.is_finite() {
            return;
        }
        let index = (time_seconds / self.width_seconds) as usize;
        if index >= self.bins.len() {
            self.bins.resize_with(index + 1, Vec::new);
        }
        self.bins[index].push(value);
    }

    /// Number of bins (including empty ones up to the latest sample).
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Bin width in seconds.
    pub fn width_seconds(&self) -> f64 {
        self.width_seconds
    }

    /// Aggregated statistics per bin, in time order.
    pub fn stats(&self) -> Vec<BinStats> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, samples)| {
                let summary = Summary::from_samples(samples.iter().copied());
                BinStats {
                    start_seconds: i as f64 * self.width_seconds,
                    width_seconds: self.width_seconds,
                    count: samples.len(),
                    rate_per_second: samples.len() as f64 / self.width_seconds,
                    mean: summary.mean(),
                    median: summary.median(),
                    deciles: summary.deciles(),
                }
            })
            .collect()
    }

    /// Total number of recorded samples.
    pub fn total_count(&self) -> usize {
        self.bins.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_by_timestamp() {
        let mut b = TimeBinner::new(10.0);
        b.record(0.0, 1.0);
        b.record(9.9, 2.0);
        b.record(10.0, 3.0);
        b.record(35.0, 4.0);
        assert_eq!(b.bin_count(), 4);
        let stats = b.stats();
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[1].count, 1);
        assert_eq!(stats[2].count, 0);
        assert_eq!(stats[3].count, 1);
        assert_eq!(b.total_count(), 4);
    }

    #[test]
    fn rate_is_count_over_width() {
        let mut b = TimeBinner::new(2.0);
        for i in 0..10 {
            b.record(0.1 * i as f64, 1.0);
        }
        let stats = b.stats();
        assert_eq!(stats[0].count, 10);
        assert!((stats[0].rate_per_second - 5.0).abs() < 1e-12);
    }

    #[test]
    fn median_and_deciles_per_bin() {
        let mut b = TimeBinner::new(60.0);
        for i in 1..=100 {
            b.record(30.0, i as f64);
        }
        let stats = b.stats();
        assert_eq!(stats[0].median, Some(50.0));
        let deciles = stats[0].deciles.unwrap();
        assert_eq!(deciles[0], 10.0);
        assert_eq!(deciles[8], 90.0);
        assert!((stats[0].mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn empty_bins_have_no_median() {
        let mut b = TimeBinner::new(1.0);
        b.record(5.5, 2.0);
        let stats = b.stats();
        assert_eq!(stats[2].count, 0);
        assert_eq!(stats[2].median, None);
        assert_eq!(stats[2].deciles, None);
        assert_eq!(stats[2].rate_per_second, 0.0);
    }

    #[test]
    fn invalid_samples_are_ignored() {
        let mut b = TimeBinner::new(1.0);
        b.record(-1.0, 2.0);
        b.record(f64::NAN, 2.0);
        b.record(1.0, f64::INFINITY);
        assert_eq!(b.total_count(), 0);
        assert_eq!(b.bin_count(), 0);
    }

    #[test]
    fn ten_minute_constructor() {
        let b = TimeBinner::ten_minutes();
        assert_eq!(b.width_seconds(), 600.0);
    }

    #[test]
    fn bin_starts_are_multiples_of_width() {
        let mut b = TimeBinner::new(600.0);
        b.record(86_399.0, 1.0); // last second of a 24-hour day
        let stats = b.stats();
        assert_eq!(stats.len(), 144);
        assert_eq!(stats[143].start_seconds, 143.0 * 600.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        TimeBinner::new(0.0);
    }
}
