//! Summary statistics: mean, standard deviation, percentiles and deciles.

use serde::{Deserialize, Serialize};

/// Summary statistics over a set of `f64` samples.
///
/// Percentiles are computed with the nearest-rank method over a sorted copy
/// of the samples, which matches how the paper reports medians, quartiles and
/// deciles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    sorted: Vec<f64>,
    sum: f64,
    sum_sq: f64,
}

impl Summary {
    /// Builds a summary from an iterator of samples.
    ///
    /// Non-finite samples are ignored.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let sum = sorted.iter().sum();
        let sum_sq = sorted.iter().map(|x| x * x).sum();
        Summary {
            sorted,
            sum,
            sum_sq,
        }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean, or 0.0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sum / self.sorted.len() as f64
        }
    }

    /// Population standard deviation, or 0.0 for fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        let n = self.sorted.len() as f64;
        if self.sorted.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        ((self.sum_sq / n) - mean * mean).max(0.0).sqrt()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Percentile in `[0, 100]` using the nearest-rank method, or `None` if
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or not finite.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!(
            p.is_finite() && (0.0..=100.0).contains(&p),
            "percentile must be within [0, 100]"
        );
        if self.sorted.is_empty() {
            return None;
        }
        if p == 0.0 {
            return self.min();
        }
        let n = self.sorted.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        let index = rank.clamp(1, n) - 1;
        Some(self.sorted[index])
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// The deciles 1 through 9 (10th, 20th, … 90th percentiles), as plotted
    /// in the paper's Figure 7.  Returns `None` if empty.
    pub fn deciles(&self) -> Option<[f64; 9]> {
        if self.sorted.is_empty() {
            return None;
        }
        let mut out = [0.0; 9];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self
                .percentile((i as f64 + 1.0) * 10.0)
                .expect("non-empty summary has percentiles");
        }
        Some(out)
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Summary::from_samples(iter)
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        let mut combined = std::mem::take(&mut self.sorted);
        combined.extend(iter.into_iter().filter(|x| x.is_finite()));
        *self = Summary::from_samples(combined);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_well_behaved() {
        let s = Summary::from_samples(std::iter::empty());
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.deciles(), None);
    }

    #[test]
    fn mean_and_std_of_known_set() {
        let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = Summary::from_samples((1..=100).map(|x| x as f64));
        assert_eq!(s.percentile(50.0), Some(50.0));
        assert_eq!(s.percentile(90.0), Some(90.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(1.0), Some(1.0));
        assert_eq!(s.median(), Some(50.0));
    }

    #[test]
    fn deciles_are_monotonic() {
        let s = Summary::from_samples((0..1000).map(|x| (x as f64).sqrt()));
        let d = s.deciles().unwrap();
        for w in d.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(d[4], s.median().unwrap());
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples([42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.median(), Some(42.0));
        assert_eq!(s.deciles(), Some([42.0; 9]));
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let s = Summary::from_samples([1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        s.extend([4.0, 5.0]);
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.samples(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "percentile must be within")]
    fn out_of_range_percentile_panics() {
        Summary::from_samples([1.0]).percentile(101.0);
    }
}
