//! Exponential window moving average with time-aware smoothing.
//!
//! The paper smooths the instantaneous per-server loads of Figure 4 with an
//! EWMA whose parameter is `alpha = 1 - exp(-dt)` where `dt` is the interval
//! in seconds between successive data points; this module implements exactly
//! that filter, plus a fixed-alpha variant.

use serde::{Deserialize, Serialize};

/// An exponential window moving average filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    /// Time constant in seconds used by the time-aware update
    /// (`alpha = 1 - exp(-dt / tau)`); the paper uses `tau = 1`.
    tau_seconds: f64,
    value: Option<f64>,
    last_time: Option<f64>,
}

impl Ewma {
    /// Creates a filter with the paper's parameterisation
    /// (`alpha = 1 - exp(-dt)`, i.e. a time constant of one second).
    pub fn new() -> Self {
        Self::with_time_constant(1.0)
    }

    /// Creates a filter with a custom time constant in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `tau_seconds` is not strictly positive and finite.
    pub fn with_time_constant(tau_seconds: f64) -> Self {
        assert!(
            tau_seconds.is_finite() && tau_seconds > 0.0,
            "time constant must be positive"
        );
        Ewma {
            tau_seconds,
            value: None,
            last_time: None,
        }
    }

    /// Current smoothed value, or `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Feeds an observation taken at `time_seconds`; returns the new
    /// smoothed value.
    ///
    /// The first observation initialises the filter.  Observations at
    /// non-increasing times are treated as `dt = 0` (no decay).
    pub fn observe(&mut self, time_seconds: f64, sample: f64) -> f64 {
        let new_value = match (self.value, self.last_time) {
            (Some(prev), Some(last)) => {
                let dt = (time_seconds - last).max(0.0);
                let alpha = 1.0 - (-dt / self.tau_seconds).exp();
                prev + alpha * (sample - prev)
            }
            _ => sample,
        };
        self.value = Some(new_value);
        self.last_time = Some(time_seconds);
        new_value
    }

    /// Resets the filter to its initial, empty state.
    pub fn reset(&mut self) {
        self.value = None;
        self.last_time = None;
    }
}

impl Default for Ewma {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_initialises() {
        let mut e = Ewma::new();
        assert_eq!(e.value(), None);
        assert_eq!(e.observe(0.0, 5.0), 5.0);
        assert_eq!(e.value(), Some(5.0));
    }

    #[test]
    fn converges_towards_constant_input() {
        let mut e = Ewma::new();
        e.observe(0.0, 0.0);
        let mut v = 0.0;
        for i in 1..100 {
            v = e.observe(i as f64 * 0.1, 10.0);
        }
        assert!(v > 9.9, "should converge to 10, got {v}");
        assert!(v <= 10.0);
    }

    #[test]
    fn larger_dt_moves_faster() {
        let mut slow = Ewma::new();
        slow.observe(0.0, 0.0);
        let after_small_dt = slow.observe(0.1, 10.0);

        let mut fast = Ewma::new();
        fast.observe(0.0, 0.0);
        let after_large_dt = fast.observe(2.0, 10.0);

        assert!(after_large_dt > after_small_dt);
    }

    #[test]
    fn zero_or_negative_dt_keeps_previous_value() {
        let mut e = Ewma::new();
        e.observe(1.0, 4.0);
        let v = e.observe(1.0, 100.0);
        assert_eq!(v, 4.0);
        let v = e.observe(0.5, 100.0);
        assert_eq!(v, 4.0);
    }

    #[test]
    fn custom_time_constant_slows_decay() {
        let mut fast = Ewma::with_time_constant(0.1);
        let mut slow = Ewma::with_time_constant(10.0);
        fast.observe(0.0, 0.0);
        slow.observe(0.0, 0.0);
        let f = fast.observe(1.0, 1.0);
        let s = slow.observe(1.0, 1.0);
        assert!(f > s);
    }

    #[test]
    fn reset_clears_state() {
        let mut e = Ewma::new();
        e.observe(0.0, 3.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.observe(5.0, 7.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_tau_panics() {
        Ewma::with_time_constant(0.0);
    }

    #[test]
    fn default_matches_new() {
        assert_eq!(Ewma::default(), Ewma::new());
    }
}
