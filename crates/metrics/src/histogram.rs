//! Fixed-bucket histograms.

use serde::{Deserialize, Serialize};

/// A histogram with uniformly sized buckets over `[0, max)` plus an overflow
/// bucket.
///
/// Used by the benches for compact latency distributions when retaining every
/// raw sample (as [`crate::Summary`] does) would be wasteful.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram covering `[0, max)` with `buckets` uniform
    /// buckets.
    ///
    /// # Panics
    ///
    /// Panics if `max` is not positive/finite or `buckets` is zero.
    pub fn new(max: f64, buckets: usize) -> Self {
        assert!(max.is_finite() && max > 0.0, "max must be positive");
        assert!(buckets > 0, "at least one bucket is required");
        Histogram {
            bucket_width: max / buckets as f64,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum: 0.0,
        }
    }

    /// Records a sample.  Negative or non-finite samples are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            return;
        }
        self.total += 1;
        self.sum += value;
        let index = (value / self.bucket_width) as usize;
        if index < self.counts.len() {
            self.counts[index] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (exact, not bucketed), or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Number of samples that exceeded the histogram range.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound of bucket `i`.
    pub fn bucket_upper_bound(&self, i: usize) -> f64 {
        self.bucket_width * (i as f64 + 1.0)
    }

    /// Approximate quantile (`q` in `[0, 1]`) computed from bucket upper
    /// bounds; `None` if the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            q.is_finite() && (0.0..=1.0).contains(&q),
            "quantile must be within [0, 1]"
        );
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bucket_upper_bound(i));
            }
        }
        Some(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(10.0, 10);
        h.record(0.5);
        h.record(1.5);
        h.record(1.7);
        h.record(9.99);
        h.record(10.1); // overflow
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[1], 2);
        assert_eq!(h.bucket_counts()[9], 1);
        assert_eq!(h.overflow_count(), 1);
    }

    #[test]
    fn ignores_invalid_samples() {
        let mut h = Histogram::new(1.0, 4);
        h.record(-1.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new(100.0, 5);
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.mean(), 2.5);
    }

    #[test]
    fn quantile_approximates_distribution() {
        let mut h = Histogram::new(100.0, 100);
        for i in 0..1000 {
            h.record((i % 100) as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() <= 1.0);
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 98.0);
        assert_eq!(h.quantile(1.0).unwrap(), 100.0);
    }

    #[test]
    fn quantile_of_all_overflow_is_infinite() {
        let mut h = Histogram::new(1.0, 2);
        h.record(5.0);
        assert_eq!(h.quantile(0.5), Some(f64::INFINITY));
    }

    #[test]
    fn bucket_upper_bounds() {
        let h = Histogram::new(10.0, 5);
        assert_eq!(h.bucket_upper_bound(0), 2.0);
        assert_eq!(h.bucket_upper_bound(4), 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_max_panics() {
        Histogram::new(0.0, 3);
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn zero_buckets_panics() {
        Histogram::new(1.0, 0);
    }
}
