//! Property-based tests over the metric primitives.

use proptest::prelude::*;
use srlb_metrics::{jain_fairness, Cdf, Ewma, Histogram, Summary, TimeBinner};

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..1.0e6f64, 1..200)
}

proptest! {
    #[test]
    fn summary_mean_is_within_min_max(samples in finite_samples()) {
        let s = Summary::from_samples(samples.iter().copied());
        let mean = s.mean();
        prop_assert!(mean >= s.min().unwrap() - 1e-9);
        prop_assert!(mean <= s.max().unwrap() + 1e-9);
    }

    #[test]
    fn summary_percentiles_are_monotone(samples in finite_samples()) {
        let s = Summary::from_samples(samples.iter().copied());
        let mut prev = s.min().unwrap();
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile(p).unwrap();
            prop_assert!(v >= prev - 1e-9);
            prev = v;
        }
    }

    #[test]
    fn summary_deciles_are_sorted_samples(samples in finite_samples()) {
        let s = Summary::from_samples(samples.iter().copied());
        if let Some(deciles) = s.deciles() {
            for d in deciles {
                prop_assert!(samples.iter().any(|&x| (x - d).abs() < 1e-9));
            }
        }
    }

    #[test]
    fn cdf_fraction_below_max_is_one(samples in finite_samples()) {
        let cdf = Cdf::from_samples(samples.iter().copied());
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((cdf.fraction_below(max) - 1.0).abs() < 1e-12);
        prop_assert_eq!(cdf.count(), samples.len());
    }

    #[test]
    fn cdf_quantile_is_a_sample(samples in finite_samples(), q in 0.0..=1.0f64) {
        let cdf = Cdf::from_samples(samples.iter().copied());
        let v = cdf.quantile(q).unwrap();
        prop_assert!(samples.iter().any(|&x| (x - v).abs() < 1e-9));
    }

    #[test]
    fn fairness_is_bounded(loads in prop::collection::vec(0.0..1.0e3f64, 1..64)) {
        let f = jain_fairness(&loads);
        prop_assert!(f <= 1.0 + 1e-9);
        prop_assert!(f >= 1.0 / loads.len() as f64 - 1e-9);
    }

    #[test]
    fn ewma_stays_within_observed_range(
        samples in prop::collection::vec(0.0..100.0f64, 1..100),
    ) {
        let mut ewma = Ewma::new();
        let lo = samples.iter().cloned().fold(f64::MAX, f64::min);
        let hi = samples.iter().cloned().fold(f64::MIN, f64::max);
        for (i, s) in samples.iter().enumerate() {
            let v = ewma.observe(i as f64 * 0.5, *s);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn histogram_conserves_sample_count(samples in prop::collection::vec(0.0..200.0f64, 0..300)) {
        let mut h = Histogram::new(100.0, 20);
        for &s in &samples {
            h.record(s);
        }
        let bucketed: u64 = h.bucket_counts().iter().sum::<u64>() + h.overflow_count();
        prop_assert_eq!(bucketed, samples.len() as u64);
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    #[test]
    fn timebinner_conserves_sample_count(
        samples in prop::collection::vec((0.0..86_400.0f64, 0.0..1.0e3f64), 0..300),
    ) {
        let mut b = TimeBinner::ten_minutes();
        for &(t, v) in &samples {
            b.record(t, v);
        }
        prop_assert_eq!(b.total_count(), samples.len());
        let from_stats: usize = b.stats().iter().map(|s| s.count).sum();
        prop_assert_eq!(from_stats, samples.len());
    }
}
