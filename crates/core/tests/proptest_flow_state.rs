//! Property-based equivalence between the sharded, bounded [`FlowState`]
//! and an unsharded reference model.
//!
//! The model is deliberately naive — a flat `Vec` with linear scans and a
//! min-sequence victim search — so its semantics are obvious by inspection:
//! LRU eviction picks the globally least-recently-touched entry, expiry
//! drops everything idle beyond the timeout, and every departure is counted
//! under exactly one cause.  The sharded table must match it entry for
//! entry and counter for counter at every shard count, and a bounded spec
//! must replay byte-identically across every execution mode.

use std::net::Ipv6Addr;

use proptest::prelude::*;
use srlb_core::flow_state::{FlowState, FlowStateConfig};
use srlb_core::spec::{ExperimentSpec, FlowTableSpec, PolicyKind};
use srlb_core::Runner;
use srlb_metrics::{EvictionBreakdown, EvictionCause};
use srlb_net::{AddressPlan, FlowKey, Protocol, ServerId};
use srlb_sim::{ExecMode, SimDuration, SimTime};

fn flow(client: u32, port: u16) -> FlowKey {
    let plan = AddressPlan::default();
    FlowKey::new(
        plan.client_addr(client),
        plan.vip(0),
        port.max(1),
        80,
        Protocol::Tcp,
    )
}

/// Unsharded reference: the exact published semantics of [`FlowState`],
/// written as linear scans over a flat entry list.
struct Model {
    capacity: Option<usize>,
    timeout: SimDuration,
    /// `(flow, server, last_active, touch_seq)` — `touch_seq` is unique.
    entries: Vec<(FlowKey, Ipv6Addr, SimTime, u64)>,
    seq: u64,
    inserted: u64,
    expired: u64,
    evictions: EvictionBreakdown,
    peak: u64,
}

impl Model {
    fn new(capacity: usize, timeout: SimDuration) -> Self {
        Model {
            capacity: Some(capacity),
            timeout,
            entries: Vec::new(),
            seq: 0,
            inserted: 0,
            expired: 0,
            evictions: EvictionBreakdown::default(),
            peak: 0,
        }
    }

    fn learn(&mut self, flow: FlowKey, server: Ipv6Addr, now: SimTime) {
        self.inserted += 1;
        self.seq += 1;
        let seq = self.seq;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == flow) {
            e.1 = server;
            e.2 = now;
            e.3 = seq;
            return;
        }
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap {
                self.evict_lru(now);
            }
        }
        self.entries.push((flow, server, now, seq));
        self.peak = self.peak.max(self.entries.len() as u64);
    }

    fn evict_lru(&mut self, now: SimTime) {
        // Touch sequences are unique, so the minimum is unambiguous.
        let Some(pos) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.3)
            .map(|(i, _)| i)
        else {
            return;
        };
        let idle = now.duration_since(self.entries[pos].2);
        let cause = if idle > self.timeout {
            EvictionCause::Expired
        } else if idle * 2 >= self.timeout {
            EvictionCause::Idle
        } else {
            EvictionCause::Active
        };
        self.evictions.record(cause);
        self.entries.remove(pos);
    }

    fn lookup(&mut self, flow: &FlowKey, now: SimTime) -> Option<Ipv6Addr> {
        let e = self.entries.iter_mut().find(|e| e.0 == *flow)?;
        self.seq += 1;
        e.2 = now;
        e.3 = self.seq;
        Some(e.1)
    }

    fn peek(&self, flow: &FlowKey) -> Option<Ipv6Addr> {
        self.entries.iter().find(|e| e.0 == *flow).map(|e| e.1)
    }

    fn remove(&mut self, flow: &FlowKey) -> Option<Ipv6Addr> {
        let pos = self.entries.iter().position(|e| e.0 == *flow)?;
        Some(self.entries.remove(pos).1)
    }

    fn expire_idle(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        let timeout = self.timeout;
        self.entries.retain(|e| now.duration_since(e.2) <= timeout);
        let removed = before - self.entries.len();
        self.expired += removed as u64;
        removed
    }
}

proptest! {
    /// The bounded sharded table matches the unsharded reference model —
    /// entries, lookup/remove results and all lifetime counters — at every
    /// shard count, under an arbitrary interleaving of learn / lookup /
    /// peek / remove / expire with monotonically advancing time.
    ///
    /// The closing accounting identity pins the headline guarantee: every
    /// entry that ever left a bounded table is attributed to exactly one of
    /// expiry, a counted eviction cause, or an explicit remove.  Nothing is
    /// dropped silently — in particular, every capacity eviction of an
    /// active established entry shows up in `evictions.active`.
    #[test]
    fn bounded_sharded_table_matches_unsharded_model(
        ops in prop::collection::vec(
            // (op selector, client, port, server, time advance in µs)
            (0u8..5, 0u32..8, 1u16..12, 0u32..12, 0u64..2_000_000),
            1..250,
        ),
        capacity in 2usize..12,
        timeout_s in 1u64..4,
    ) {
        let plan = AddressPlan::default();
        let timeout = SimDuration::from_secs(timeout_s);
        let mut model = Model::new(capacity, timeout);
        let mut tables: Vec<FlowState> = [1usize, 2, 4, 8]
            .iter()
            .map(|&shards| {
                FlowState::with_config(
                    FlowStateConfig::new()
                        .with_idle_timeout(timeout)
                        .with_capacity(capacity)
                        .with_shards(shards),
                )
            })
            .collect();
        let mut now = SimTime::ZERO;
        let mut fresh_learns = 0u64;
        let mut removed_ok = 0u64;
        for &(op, client, port, server, dt) in &ops {
            now += SimDuration::from_micros(dt);
            let f = flow(client, port);
            let addr = plan.server_addr(ServerId(server));
            match op {
                0 => {
                    if model.peek(&f).is_none() {
                        fresh_learns += 1;
                    }
                    model.learn(f, addr, now);
                    for table in &mut tables {
                        table.learn(f, addr, now);
                    }
                }
                1 => {
                    let expected = model.lookup(&f, now);
                    for table in &mut tables {
                        prop_assert_eq!(table.lookup(&f, now), expected);
                    }
                }
                2 => {
                    let expected = model.peek(&f);
                    for table in &tables {
                        prop_assert_eq!(table.peek(&f), expected);
                    }
                }
                3 => {
                    let expected = model.remove(&f);
                    if expected.is_some() {
                        removed_ok += 1;
                    }
                    for table in &mut tables {
                        prop_assert_eq!(table.remove(&f), expected);
                    }
                }
                _ => {
                    let expected = model.expire_idle(now);
                    for table in &mut tables {
                        prop_assert_eq!(table.expire_idle(now), expected);
                    }
                }
            }
            for table in &tables {
                prop_assert_eq!(table.len(), model.entries.len());
            }
        }
        for table in &tables {
            for &(f, addr, _, _) in &model.entries {
                prop_assert_eq!(table.peek(&f), Some(addr));
            }
            let stats = table.stats();
            prop_assert_eq!(stats.inserted, model.inserted);
            prop_assert_eq!(stats.expired, model.expired);
            prop_assert_eq!(stats.evictions, model.evictions);
            prop_assert_eq!(stats.peak_occupancy, model.peak);
            prop_assert!(stats.peak_occupancy <= capacity as u64);
            // Every departure is accounted for: distinct insertions equal
            // survivors plus expiries plus per-cause evictions plus removes.
            prop_assert_eq!(
                fresh_learns,
                table.len() as u64
                    + stats.expired
                    + stats.evictions.total()
                    + removed_ok
            );
        }
    }
}

/// A run under eviction pressure — a table far smaller than its flow count,
/// with a periodic expiry sweep — replays byte-identically in every
/// execution mode, per-cause flow counters included.
///
/// Each case replays the full run five times, so this test drives the
/// generation loop itself with a reduced case count (the [`proptest!`] shim
/// always runs 256) while still sweeping load, seed, capacity, shard count
/// and timeout.  The seed mixing matches the shim's, so cases reproduce the
/// same way.
#[test]
fn bounded_runs_replay_identically_across_exec_modes() {
    for case in 0..24u64 {
        let mut rng = TestRng::new(0x5352_4c42u64 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let rho = Strategy::generate(&(0.4f64..0.8), &mut rng);
        let seed = Strategy::generate(&(0u64..1_000), &mut rng);
        let capacity = Strategy::generate(&(8usize..48), &mut rng);
        let shards = Strategy::generate(&(0u32..4), &mut rng);
        let timeout_s = Strategy::generate(&(5.0f64..40.0), &mut rng);
        let spec = ExperimentSpec::poisson_paper(rho, PolicyKind::Static { threshold: 4 })
            .with_queries(120)
            .with_seed(seed)
            .with_flow_table(FlowTableSpec {
                idle_timeout_s: timeout_s,
                capacity: Some(capacity),
                shards: 1 << shards,
                sweep_interval_s: Some(timeout_s / 4.0),
            });
        let reference = Runner::new(spec.clone())
            .unwrap()
            .with_exec(ExecMode::SerialStep)
            .run();
        for exec in [
            ExecMode::Batched,
            ExecMode::Sharded { threads: 1 },
            ExecMode::Sharded { threads: 2 },
            ExecMode::Sharded { threads: 4 },
        ] {
            let outcome = Runner::new(spec.clone()).unwrap().with_exec(exec).run();
            assert_eq!(
                outcome.collector.records(),
                reference.collector.records(),
                "case {case}: {exec:?} diverged from the serial loop"
            );
            assert_eq!(outcome.lb_stats, reference.lb_stats, "case {case}");
            assert_eq!(outcome.per_lb_stats, reference.per_lb_stats, "case {case}");
            assert_eq!(
                outcome.events_processed, reference.events_processed,
                "case {case}"
            );
        }
    }
}
