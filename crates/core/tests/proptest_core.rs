//! Property-based tests for the load-balancer components: dispatcher
//! invariants (distinctness, membership, determinism) and flow-table
//! behaviour.

use std::net::Ipv6Addr;

use proptest::prelude::*;
use srlb_core::dispatch::{
    ConsistentHashDispatcher, Dispatcher, DispatcherConfig, MaglevDispatcher, RandomDispatcher,
};
use srlb_core::flow_table::FlowTable;
use srlb_net::{AddressPlan, FlowKey, Protocol, ServerId};
use srlb_sim::{SimDuration, SimRng, SimTime};

fn servers(n: u32) -> Vec<Ipv6Addr> {
    let plan = AddressPlan::default();
    (0..n).map(|i| plan.server_addr(ServerId(i))).collect()
}

fn flow(client: u32, port: u16) -> FlowKey {
    let plan = AddressPlan::default();
    FlowKey::new(
        plan.client_addr(client),
        plan.vip(0),
        port.max(1),
        80,
        Protocol::Tcp,
    )
}

proptest! {
    /// Every dispatcher returns exactly `min(k, n)` distinct candidates, all
    /// of which are members of the configured server set.
    #[test]
    fn dispatchers_return_distinct_members(
        n in 1u32..24,
        k in 1usize..6,
        client in 0u32..1000,
        port in 1u16..60000,
        seed in 0u64..1000,
    ) {
        let pool = servers(n);
        let configs = [
            DispatcherConfig::Random { k },
            DispatcherConfig::ConsistentHash { vnodes: 32, k },
            DispatcherConfig::Maglev { table_size: 251, k },
        ];
        let f = flow(client, port);
        let mut rng = SimRng::new(seed);
        for config in configs {
            let mut dispatcher = config.build(pool.clone());
            let candidates = dispatcher.candidates(&f, &mut rng);
            prop_assert_eq!(candidates.len(), k.min(n as usize));
            let unique: std::collections::HashSet<_> = candidates.iter().collect();
            prop_assert_eq!(unique.len(), candidates.len(), "candidates must be distinct");
            for c in &candidates {
                prop_assert!(pool.contains(c), "candidate {c} not in the server set");
            }
        }
    }

    /// Hash-based dispatchers are deterministic per flow: the same flow
    /// always maps to the same candidate list, independent of the RNG.
    #[test]
    fn hash_dispatchers_are_per_flow_deterministic(
        n in 2u32..24,
        client in 0u32..1000,
        port in 1u16..60000,
    ) {
        let pool = servers(n);
        let f = flow(client, port);
        let mut rng_a = SimRng::new(1);
        let mut rng_b = SimRng::new(999);

        let mut ring = ConsistentHashDispatcher::new(pool.clone(), 32, 2);
        prop_assert_eq!(ring.candidates(&f, &mut rng_a), ring.candidates(&f, &mut rng_b));

        let mut maglev = MaglevDispatcher::new(pool, 251, 2);
        prop_assert_eq!(maglev.candidates(&f, &mut rng_a), maglev.candidates(&f, &mut rng_b));
    }

    /// The random dispatcher with the same seed produces the same candidate
    /// sequence (experiment reproducibility).
    #[test]
    fn random_dispatcher_is_seed_deterministic(
        n in 2u32..24,
        seed in 0u64..1000,
        flows in prop::collection::vec((0u32..100, 1u16..60000), 1..50),
    ) {
        let pool = servers(n);
        let run = |seed: u64| {
            let mut d = RandomDispatcher::power_of_two(pool.clone());
            let mut rng = SimRng::new(seed);
            flows
                .iter()
                .map(|&(c, p)| d.candidates(&flow(c, p), &mut rng))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// The flow table behaves identically to a SipHash-keyed `HashMap`
    /// model under an arbitrary interleaving of learn / lookup / remove:
    /// the pass-through hasher over the pre-finalised key hash changes only
    /// *how* buckets are found, never what the map contains.
    #[test]
    fn flow_table_matches_siphash_model(
        ops in prop::collection::vec(
            // (op selector, client, port, server)
            (0u8..3, 0u32..20, 1u16..40, 0u32..12),
            1..200,
        ),
    ) {
        let plan = AddressPlan::default();
        let mut table = FlowTable::with_default_timeout();
        let mut model: std::collections::HashMap<FlowKey, Ipv6Addr> =
            std::collections::HashMap::new();
        for &(op, client, port, server) in &ops {
            let f = flow(client, port);
            let addr = plan.server_addr(ServerId(server));
            match op {
                0 => {
                    table.learn(f, addr, SimTime::ZERO);
                    model.insert(f, addr);
                }
                1 => {
                    prop_assert_eq!(
                        table.lookup(&f, SimTime::ZERO),
                        model.get(&f).copied()
                    );
                }
                _ => {
                    prop_assert_eq!(table.remove(&f), model.remove(&f));
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
        for (f, addr) in &model {
            prop_assert_eq!(table.peek(f), Some(*addr));
        }
    }

    /// The flow table returns exactly what was learned, expires only idle
    /// entries, and its size never exceeds the number of distinct flows.
    #[test]
    fn flow_table_learn_lookup_expire(
        entries in prop::collection::vec((0u32..50, 1u16..1000, 0u32..12, 0u64..100), 1..100),
        timeout_s in 1u64..100,
    ) {
        let plan = AddressPlan::default();
        let mut table = FlowTable::new(SimDuration::from_secs(timeout_s));
        let mut last_learned = std::collections::HashMap::new();
        let mut max_time = 0u64;
        for &(client, port, server, at) in &entries {
            let f = flow(client, port);
            let addr = plan.server_addr(ServerId(server));
            table.learn(f, addr, SimTime::from_secs_f64(at as f64));
            last_learned.insert(f, (addr, at));
            max_time = max_time.max(at);
        }
        prop_assert_eq!(table.len(), last_learned.len());
        // Lookups return the last-learned owner; performing them at the end
        // of the learning phase also refreshes every entry's activity stamp.
        for (f, (addr, _)) in &last_learned {
            prop_assert_eq!(table.peek(f), Some(*addr));
            prop_assert_eq!(
                table.lookup(f, SimTime::from_secs_f64(max_time as f64)),
                Some(*addr)
            );
        }
        // Expiring right after the refresh clears nothing; expiring beyond
        // the idle timeout clears everything.
        prop_assert_eq!(table.expire_idle(SimTime::from_secs_f64(max_time as f64)), 0);
        let removed = table.expire_idle(SimTime::from_secs_f64(
            (max_time + timeout_s + 1) as f64 + 1.0,
        ));
        prop_assert_eq!(removed, last_learned.len());
        prop_assert!(table.is_empty());
    }
}
