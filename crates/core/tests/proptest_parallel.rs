//! Property-based equivalence of the execution modes.
//!
//! The sharded event core's whole contract is that the execution mode is
//! invisible: the reference one-event-at-a-time loop, the same-timestamp
//! batched loop, and conservative-window sharding at any thread count must
//! produce **byte-identical** outcomes for every spec.  These tests throw
//! randomly generated small experiments — varying load, policy (including
//! the RNG-drawing random dispatcher), tier size, seed and mid-run churn —
//! at all five loops and compare the fully serialized `RunOutcome`s.

use proptest::prelude::*;
use srlb_core::spec::{ExperimentSpec, PolicyKind, ScenarioEvent};
use srlb_core::{RunOutcome, Runner};
use srlb_sim::ExecMode;

/// Serializes everything observable about an outcome.  `RunOutcome` derives
/// `Debug` all the way down (per-request records, per-LB and per-server
/// counters, phase stats, durations), so two equal strings mean the runs
/// were indistinguishable event for event.
fn fingerprint(outcome: &RunOutcome) -> String {
    format!("{outcome:?}")
}

fn policy(choice: u8) -> PolicyKind {
    match choice % 4 {
        0 => PolicyKind::RoundRobin,
        1 => PolicyKind::Static { threshold: 4 },
        2 => PolicyKind::Dynamic,
        // Two random candidates per flow: every SYN draws from the LB's
        // RNG, the sharpest detector of interleaving-dependent randomness.
        _ => PolicyKind::Explicit {
            dispatcher: srlb_core::DispatcherConfig::Random { k: 2 },
            acceptance: srlb_server::PolicyConfig::Static { threshold: 4 },
        },
    }
}

proptest! {
    /// Batched and sharded loops reproduce the serial reference loop
    /// byte for byte on random static specs.
    #[test]
    fn exec_modes_agree_on_random_specs(
        rho in 0.3f64..0.9,
        choice in 0u8..4,
        queries in 60usize..160,
        seed in 0u64..1_000,
        lb_count in 1usize..4,
    ) {
        let spec = ExperimentSpec::poisson_paper(rho, policy(choice))
            .with_queries(queries)
            .with_seed(seed)
            .with_lb_count(lb_count);
        let reference = fingerprint(
            &Runner::new(spec.clone()).unwrap().with_exec(ExecMode::SerialStep).run(),
        );
        for exec in [
            ExecMode::Batched,
            ExecMode::Sharded { threads: 1 },
            ExecMode::Sharded { threads: 2 },
            ExecMode::Sharded { threads: 4 },
        ] {
            let outcome = Runner::new(spec.clone()).unwrap().with_exec(exec).run();
            prop_assert_eq!(
                &fingerprint(&outcome),
                &reference,
                "{:?} diverged from the serial loop",
                exec
            );
        }
    }

    /// Mid-run control events (server churn, LB fail-over) land at segment
    /// boundaries identically in every mode.
    #[test]
    fn exec_modes_agree_under_churn(
        rho in 0.4f64..0.8,
        seed in 0u64..1_000,
        churn_at in 0.2f64..1.0,
        server in 0u32..4,
    ) {
        let mut spec = ExperimentSpec::poisson_paper(rho, PolicyKind::Dynamic)
            .with_queries(120)
            .with_seed(seed)
            .with_lb_count(2)
            .at(churn_at, ScenarioEvent::RemoveServer { server })
            .at(churn_at + 0.4, ScenarioEvent::AddServer { server })
            .at(churn_at + 0.6, ScenarioEvent::LbFailover);
        spec.cluster.recover_flows = true;
        let reference = fingerprint(
            &Runner::new(spec.clone()).unwrap().with_exec(ExecMode::SerialStep).run(),
        );
        for exec in [ExecMode::Batched, ExecMode::Sharded { threads: 3 }] {
            let outcome = Runner::new(spec.clone()).unwrap().with_exec(exec).run();
            prop_assert_eq!(
                &fingerprint(&outcome),
                &reference,
                "{:?} diverged from the serial loop under churn",
                exec
            );
        }
    }
}
